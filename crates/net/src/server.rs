//! The network edge: a TCP server fronting a [`RecoveryService`].
//!
//! ```text
//!  clients ──TCP──▶ accept (bounded pool) ──▶ per-connection thread
//!                      │                        Hello/auth → requests
//!                      └─ over the limit:       │ submit → service (load
//!                         typed Busy frame      │   shedding: Rejected →
//!                                               │   typed Error frames)
//!                                               └ watch → event stream
//! ```
//!
//! Design rules:
//!
//! * **Load shedding, not dropped sockets.** Every admission failure —
//!   full queue, oversized job, bad tenant, drain — crosses the wire as a
//!   typed [`Message::Error`] frame mirroring [`Rejected`], so a client
//!   can distinguish backpressure from network failure.
//! * **Deadlines everywhere.** Per-connection read and write timeouts
//!   bound how long a dead peer can hold a connection slot.
//! * **Graceful drain.** [`NetServer::shutdown`] stops admitting new
//!   submissions (they get [`ErrorKind::ShuttingDown`]) but lets
//!   in-flight jobs finish and their watchers collect results before the
//!   listener closes.

use crate::wire::{
    self, read_message, write_message, ErrorKind, Message, RecvError, WireEvent, WireJobError,
    WireOutcome, WireOutput, WireRecord, WireResult, WireStats,
};
use beer_core::trace::{Fingerprint, ProfileTrace, TraceAssembler};
use beer_service::{CodeEntry, JobEvent, JobId, JobRequest, RecoveryService, ServiceStats};
use std::collections::{HashMap, HashSet, VecDeque};
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration of a [`NetServer`].
#[derive(Clone, Debug)]
pub struct NetServerConfig {
    /// Concurrent connections; over the limit, new connections get a
    /// typed [`ErrorKind::Busy`] frame and a clean close (never a
    /// silently dropped socket).
    pub max_connections: usize,
    /// Per-connection read deadline: an idle or dead peer is disconnected
    /// after this long without a frame.
    pub read_timeout: Duration,
    /// Per-connection write deadline: a peer that stops draining its
    /// socket is disconnected once a write blocks this long.
    pub write_timeout: Duration,
    /// Frame size cap, enforced before allocation.
    pub max_frame_bytes: usize,
    /// Total size cap for one chunked trace upload.
    pub max_trace_bytes: u64,
    /// Uploaded traces retained for submit-by-fingerprint, shared across
    /// connections (FIFO eviction). Reconnecting clients re-attach to
    /// in-flight work without re-uploading while their trace is retained.
    pub upload_capacity: usize,
    /// Human-readable server identity sent in HelloAck.
    pub server_name: String,
}

impl Default for NetServerConfig {
    fn default() -> Self {
        NetServerConfig {
            max_connections: 128,
            read_timeout: Duration::from_secs(60),
            write_timeout: Duration::from_secs(10),
            max_frame_bytes: wire::DEFAULT_MAX_FRAME_BYTES,
            max_trace_bytes: 16 << 20,
            upload_capacity: 1024,
            server_name: "beer_net".to_string(),
        }
    }
}

impl NetServerConfig {
    /// The default configuration (see the field docs).
    pub fn new() -> Self {
        NetServerConfig::default()
    }

    /// Overrides the connection limit.
    pub fn with_max_connections(mut self, max: usize) -> Self {
        self.max_connections = max;
        self
    }

    /// Overrides the per-connection read deadline.
    pub fn with_read_timeout(mut self, timeout: Duration) -> Self {
        self.read_timeout = timeout;
        self
    }

    /// Overrides the per-connection write deadline.
    pub fn with_write_timeout(mut self, timeout: Duration) -> Self {
        self.write_timeout = timeout;
        self
    }

    /// Overrides the frame size cap.
    pub fn with_max_frame_bytes(mut self, max: usize) -> Self {
        self.max_frame_bytes = max;
        self
    }

    /// Overrides the server identity string.
    pub fn with_server_name(mut self, name: impl Into<String>) -> Self {
        self.server_name = name.into();
        self
    }
}

/// Uploaded traces shared across connections, keyed by fingerprint, with
/// FIFO eviction past the capacity bound.
struct Uploads {
    by_fingerprint: HashMap<Fingerprint, Arc<ProfileTrace>>,
    order: VecDeque<Fingerprint>,
    capacity: usize,
}

impl Uploads {
    fn insert(&mut self, fingerprint: Fingerprint, trace: ProfileTrace) {
        if self
            .by_fingerprint
            .insert(fingerprint, Arc::new(trace))
            .is_none()
        {
            self.order.push_back(fingerprint);
            while self.by_fingerprint.len() > self.capacity {
                if let Some(evicted) = self.order.pop_front() {
                    self.by_fingerprint.remove(&evicted);
                }
            }
        }
    }

    fn get(&self, fingerprint: Fingerprint) -> Option<Arc<ProfileTrace>> {
        self.by_fingerprint.get(&fingerprint).cloned()
    }
}

struct ServerInner {
    service: Arc<RecoveryService>,
    config: NetServerConfig,
    uploads: Mutex<Uploads>,
    /// Draining: submissions are refused, everything else still answers.
    draining: AtomicBool,
    /// Stopped: connection threads exit at the next frame boundary.
    stopped: AtomicBool,
    active_connections: AtomicUsize,
    /// Live sockets, for prompt unblock on shutdown.
    sockets: Mutex<HashMap<u64, TcpStream>>,
    next_socket_id: AtomicUsize,
}

impl ServerInner {
    fn register_socket(&self, stream: &TcpStream) -> u64 {
        let id = self.next_socket_id.fetch_add(1, Ordering::Relaxed) as u64;
        if let Ok(clone) = stream.try_clone() {
            self.sockets
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .insert(id, clone);
        }
        id
    }

    fn unregister_socket(&self, id: u64) {
        self.sockets
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .remove(&id);
    }
}

/// A TCP server exposing a [`RecoveryService`] over `beer-wire v1` (see
/// the module docs).
pub struct NetServer {
    inner: Arc<ServerInner>,
    local_addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    connection_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl NetServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// accepting connections for `service`.
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    pub fn bind(
        service: Arc<RecoveryService>,
        addr: impl ToSocketAddrs,
        config: NetServerConfig,
    ) -> io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let inner = Arc::new(ServerInner {
            service,
            uploads: Mutex::new(Uploads {
                by_fingerprint: HashMap::new(),
                order: VecDeque::new(),
                capacity: config.upload_capacity,
            }),
            config,
            draining: AtomicBool::new(false),
            stopped: AtomicBool::new(false),
            active_connections: AtomicUsize::new(0),
            sockets: Mutex::new(HashMap::new()),
            next_socket_id: AtomicUsize::new(0),
        });
        let connection_threads: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept_inner = Arc::clone(&inner);
        let accept_threads = Arc::clone(&connection_threads);
        let accept_thread = std::thread::Builder::new()
            .name("beer-net-accept".to_string())
            .spawn(move || accept_loop(&listener, &accept_inner, &accept_threads))
            .expect("spawn accept thread");
        Ok(NetServer {
            inner,
            local_addr,
            accept_thread: Some(accept_thread),
            connection_threads,
        })
    }

    /// The bound address (the actual port when bound with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Connections currently being served.
    pub fn active_connections(&self) -> usize {
        self.inner.active_connections.load(Ordering::Relaxed)
    }

    /// Stops admitting new submissions (they get
    /// [`ErrorKind::ShuttingDown`]) but keeps serving queries and event
    /// streams while in-flight jobs finish — for up to `drain`. Then
    /// closes the listener and every connection and joins the threads.
    /// The underlying [`RecoveryService`] is shared and stays up; shut it
    /// down separately.
    pub fn shutdown(mut self, drain: Duration) {
        self.shutdown_impl(drain);
    }

    fn shutdown_impl(&mut self, drain: Duration) {
        if self.accept_thread.is_none() {
            return;
        }
        self.inner.draining.store(true, Ordering::SeqCst);
        // Drain: wait for the service to go idle so watchers can collect
        // their terminal frames before the sockets close.
        let deadline = Instant::now() + drain;
        loop {
            let stats = self.inner.service.stats();
            if (stats.queued == 0 && stats.running == 0) || Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        self.inner.stopped.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a wake-up connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        // Unblock connection threads stuck in reads.
        for (_, socket) in self
            .inner
            .sockets
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .drain()
        {
            let _ = socket.shutdown(Shutdown::Both);
        }
        let handles: Vec<JoinHandle<()>> = self
            .connection_threads
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .drain(..)
            .collect();
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown_impl(Duration::from_secs(0));
    }
}

fn accept_loop(
    listener: &TcpListener,
    inner: &Arc<ServerInner>,
    threads: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            if inner.stopped.load(Ordering::SeqCst) {
                return;
            }
            // Transient accept failure (e.g. fd exhaustion): back off
            // briefly instead of spinning.
            std::thread::sleep(Duration::from_millis(10));
            continue;
        };
        if inner.stopped.load(Ordering::SeqCst) {
            return; // the wake-up connection
        }
        // Bounded pool: over the limit, the peer gets a typed Busy frame
        // and a clean close instead of a dropped socket.
        if inner.active_connections.load(Ordering::SeqCst) >= inner.config.max_connections {
            let mut stream = stream;
            let _ = stream.set_write_timeout(Some(inner.config.write_timeout));
            let _ = write_message(
                &mut stream,
                &Message::Error {
                    kind: ErrorKind::Busy,
                    detail: format!(
                        "connection limit of {} reached; retry later",
                        inner.config.max_connections
                    ),
                },
            );
            continue;
        }
        inner.active_connections.fetch_add(1, Ordering::SeqCst);
        let conn_inner = Arc::clone(inner);
        let handle = std::thread::Builder::new()
            .name("beer-net-conn".to_string())
            .spawn(move || {
                let socket_id = conn_inner.register_socket(&stream);
                serve_connection(stream, &conn_inner);
                conn_inner.unregister_socket(socket_id);
                conn_inner.active_connections.fetch_sub(1, Ordering::SeqCst);
            })
            .expect("spawn connection thread");
        let mut threads = threads.lock().unwrap_or_else(|p| p.into_inner());
        // Opportunistically reap finished threads so the vec stays small.
        let mut i = 0;
        while i < threads.len() {
            if threads[i].is_finished() {
                let _ = threads.swap_remove(i).join();
            } else {
                i += 1;
            }
        }
        threads.push(handle);
    }
}

/// Per-connection state after a successful Hello.
struct Connection {
    tenant: String,
    /// Job ids issued on this connection — the only ids it may watch or
    /// cancel (tenancy isolation at the wire edge).
    jobs: HashSet<u64>,
    /// In-progress chunked uploads.
    assemblies: HashMap<Fingerprint, TraceAssembler>,
    /// Uploads already refused with a typed error. Later chunks of a
    /// refused upload are dropped *silently*: the sender streams its
    /// chunks before reading the refusal, and answering each one would
    /// desynchronize its request/response pairing.
    rejected_uploads: HashSet<Fingerprint>,
}

/// Concurrent in-progress uploads one connection may hold.
const MAX_CONCURRENT_UPLOADS: usize = 4;
/// Refused-upload fingerprints remembered per connection.
const MAX_REJECTED_UPLOADS: usize = 1024;
/// Entries one registry query answer may carry (a larger registry
/// answer would outgrow the peer's frame cap anyway).
const MAX_QUERY_ENTRIES: usize = 256;

impl Connection {
    /// Bounds the refusal memory. Clearing drops the silent-absorb
    /// guarantee for any *still-streaming* refused upload (its remaining
    /// chunks would each earn an error frame again), but only a client
    /// cycling through >1024 refused uploads on one connection can reach
    /// this, and bounded memory wins over its framing.
    fn bound_rejected_uploads(&mut self) {
        if self.rejected_uploads.len() > MAX_REJECTED_UPLOADS {
            self.rejected_uploads.clear();
        }
    }
}

fn send(stream: &mut TcpStream, message: &Message) -> bool {
    write_message(stream, message).is_ok()
}

fn send_error(stream: &mut TcpStream, kind: ErrorKind, detail: impl Into<String>) -> bool {
    send(
        stream,
        &Message::Error {
            kind,
            detail: detail.into(),
        },
    )
}

fn serve_connection(mut stream: TcpStream, inner: &ServerInner) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(inner.config.read_timeout));
    let _ = stream.set_write_timeout(Some(inner.config.write_timeout));

    // First frame must be a Hello that negotiates and authenticates.
    let mut conn = match read_message(&mut stream, inner.config.max_frame_bytes) {
        Ok(Message::Hello {
            min_version,
            max_version,
            tenant,
            token,
        }) => {
            let Some(version) = wire::negotiate(min_version, max_version) else {
                send_error(
                    &mut stream,
                    ErrorKind::UnsupportedVersion {
                        min: wire::WIRE_VERSION,
                        max: wire::WIRE_VERSION,
                    },
                    format!(
                        "no common version: client speaks {min_version}..={max_version}, \
                         server speaks {0}..={0}",
                        wire::WIRE_VERSION
                    ),
                );
                return;
            };
            if !inner.service.authenticate(&tenant, &token) {
                send_error(
                    &mut stream,
                    ErrorKind::AuthFailed,
                    format!("tenant {tenant:?} refused"),
                );
                return;
            }
            if !send(
                &mut stream,
                &Message::HelloAck {
                    version,
                    server: inner.config.server_name.clone(),
                },
            ) {
                return;
            }
            Connection {
                tenant,
                jobs: HashSet::new(),
                assemblies: HashMap::new(),
                rejected_uploads: HashSet::new(),
            }
        }
        Ok(_) => {
            send_error(
                &mut stream,
                ErrorKind::BadRequest,
                "first frame must be Hello",
            );
            return;
        }
        Err(RecvError::Frame(e)) => {
            send_error(&mut stream, ErrorKind::BadRequest, e.to_string());
            return;
        }
        Err(_) => return,
    };

    loop {
        if inner.stopped.load(Ordering::SeqCst) {
            let _ = send(&mut stream, &Message::Bye);
            return;
        }
        let message = match read_message(&mut stream, inner.config.max_frame_bytes) {
            Ok(message) => message,
            Err(RecvError::Frame(e)) => {
                // A peer sending garbage gets one typed diagnosis, then
                // the connection closes (framing may be unrecoverable).
                send_error(&mut stream, ErrorKind::BadRequest, e.to_string());
                return;
            }
            Err(_) => return, // closed, timed out, or transport failure
        };
        let keep_going = handle_message(&mut stream, inner, &mut conn, message);
        if !keep_going {
            return;
        }
    }
}

/// Handles one request frame; returns false when the connection is done.
fn handle_message(
    stream: &mut TcpStream,
    inner: &ServerInner,
    conn: &mut Connection,
    message: Message,
) -> bool {
    match message {
        Message::TraceBegin {
            fingerprint,
            total_chunks,
            total_bytes,
        } => {
            // Bound what one connection may buffer: a restarted upload
            // for a known fingerprint replaces its assembly, but brand-new
            // concurrent assemblies are capped (every other buffer in the
            // stack is bounded; this must be too).
            if !conn.assemblies.contains_key(&fingerprint)
                && conn.assemblies.len() >= MAX_CONCURRENT_UPLOADS
            {
                conn.rejected_uploads.insert(fingerprint);
                conn.bound_rejected_uploads();
                return send_error(
                    stream,
                    ErrorKind::BadChunk,
                    format!(
                        "too many concurrent uploads on one connection                          (limit {MAX_CONCURRENT_UPLOADS}); finish one first"
                    ),
                );
            }
            match TraceAssembler::new(
                fingerprint,
                total_chunks,
                total_bytes,
                inner.config.max_trace_bytes,
            ) {
                Ok(assembler) => {
                    // A restarted upload for the same fingerprint replaces
                    // the stale assembly (and clears any earlier refusal).
                    conn.rejected_uploads.remove(&fingerprint);
                    conn.assemblies.insert(fingerprint, assembler);
                    true
                }
                Err(e) => {
                    conn.rejected_uploads.insert(fingerprint);
                    conn.bound_rejected_uploads();
                    send_error(stream, ErrorKind::BadChunk, e.to_string())
                }
            }
        }
        Message::TraceChunk {
            fingerprint,
            index,
            data,
        } => {
            let Some(assembler) = conn.assemblies.get_mut(&fingerprint) else {
                // One refusal per upload: the begin/first-bad-chunk error
                // already went out, so the rest of an already-refused
                // stream is absorbed without a reply.
                if conn.rejected_uploads.contains(&fingerprint) {
                    return true;
                }
                return send_error(
                    stream,
                    ErrorKind::BadChunk,
                    format!("no upload in progress for {fingerprint} (send TraceBegin first)"),
                );
            };
            match assembler.accept(index, data) {
                Ok(None) => true,
                Ok(Some(trace)) => {
                    conn.assemblies.remove(&fingerprint);
                    inner
                        .uploads
                        .lock()
                        .unwrap_or_else(|p| p.into_inner())
                        .insert(fingerprint, trace);
                    send(stream, &Message::TraceAck { fingerprint })
                }
                Err(e) => {
                    conn.assemblies.remove(&fingerprint);
                    conn.rejected_uploads.insert(fingerprint);
                    conn.bound_rejected_uploads();
                    send_error(stream, ErrorKind::BadChunk, e.to_string())
                }
            }
        }
        Message::Submit {
            fingerprint,
            priority,
            deadline_ms,
        } => {
            if inner.draining.load(Ordering::SeqCst) {
                return send_error(
                    stream,
                    ErrorKind::ShuttingDown,
                    "server is draining; no new submissions",
                );
            }
            let trace = inner
                .uploads
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .get(fingerprint);
            let Some(trace) = trace else {
                return send_error(
                    stream,
                    ErrorKind::UnknownFingerprint { fingerprint },
                    "upload the trace before submitting it",
                );
            };
            // The upload cache's Arc is shared into the job: the dedup
            // hot path (many submissions of one profile) never copies
            // the trace.
            let mut request = JobRequest::shared_trace(&conn.tenant, trace).with_priority(priority);
            if let Some(ms) = deadline_ms {
                request = request.with_deadline(Duration::from_millis(ms));
            }
            // Load shedding: service backpressure crosses the wire as a
            // typed error frame, never a dropped socket.
            match inner.service.submit(request) {
                Ok(JobId(job)) => {
                    conn.jobs.insert(job);
                    send(stream, &Message::SubmitAck { job })
                }
                Err(rejected) => send_error(
                    stream,
                    ErrorKind::from_rejected(&rejected),
                    rejected.to_string(),
                ),
            }
        }
        Message::Watch { job } => {
            if !conn.jobs.contains(&job) {
                return send_error(
                    stream,
                    ErrorKind::UnknownJob { job },
                    "not a job submitted on this connection",
                );
            }
            watch_job(stream, inner, JobId(job))
        }
        Message::Cancel { job } => {
            if !conn.jobs.contains(&job) {
                return send_error(
                    stream,
                    ErrorKind::UnknownJob { job },
                    "not a job submitted on this connection",
                );
            }
            let cancelled = inner.service.cancel(JobId(job));
            send(stream, &Message::CancelAck { job, cancelled })
        }
        Message::QueryFingerprint { fingerprint } => {
            let record = inner
                .service
                .lookup_fingerprint(fingerprint)
                .map(|r| WireRecord {
                    tenant: r.tenant,
                    outcome: WireOutcome::from_outcome(&r.outcome),
                });
            send(
                stream,
                &Message::FingerprintInfo {
                    fingerprint,
                    record,
                },
            )
        }
        Message::QueryDims { n, k } => {
            let entries = inner.service.lookup_dims(n as usize, k as usize);
            // Capped: an unbounded answer would outgrow the peer's frame
            // cap and desynchronize the stream. lookup_dims orders by
            // hash, so the cap returns a stable prefix.
            send(
                stream,
                &Message::DimsInfo {
                    entries: entries
                        .iter()
                        .take(MAX_QUERY_ENTRIES)
                        .map(wire_entry)
                        .collect(),
                },
            )
        }
        Message::QueryHash { hash } => {
            let entries = inner.service.lookup_hash(hash);
            send(
                stream,
                &Message::HashInfo {
                    entries: entries
                        .iter()
                        .take(MAX_QUERY_ENTRIES)
                        .map(wire_entry)
                        .collect(),
                },
            )
        }
        Message::QueryStats => {
            let stats: ServiceStats = inner.service.stats();
            send(stream, &Message::StatsInfo(WireStats::from(stats)))
        }
        Message::Bye => {
            let _ = send(stream, &Message::Bye);
            false
        }
        // Server-to-client frames arriving at the server are protocol
        // violations.
        Message::Hello { .. }
        | Message::HelloAck { .. }
        | Message::TraceAck { .. }
        | Message::SubmitAck { .. }
        | Message::Event { .. }
        | Message::Done { .. }
        | Message::CancelAck { .. }
        | Message::FingerprintInfo { .. }
        | Message::DimsInfo { .. }
        | Message::HashInfo { .. }
        | Message::StatsInfo(_)
        | Message::Error { .. } => {
            send_error(stream, ErrorKind::BadRequest, "unexpected frame direction")
        }
    }
}

fn wire_entry(entry: &CodeEntry) -> wire::WireCodeEntry {
    wire::WireCodeEntry {
        hash: entry.hash,
        code: entry.code.clone(),
        fingerprints: entry.fingerprints.clone(),
    }
}

/// Streams a job's events to the peer until the job is terminal, then
/// sends the Done frame. Returns false when the connection should close.
fn watch_job(stream: &mut TcpStream, inner: &ServerInner, id: JobId) -> bool {
    // Subscribe before checking the result so no terminal event can slip
    // between the check and the subscription.
    let events = inner.service.subscribe(id);
    if let Some(result) = inner.service.result(id) {
        return send_done(stream, id, &result);
    }
    let Some(events) = events else {
        // Evicted or never known; result() above also found nothing.
        return send_error(
            stream,
            ErrorKind::UnknownJob { job: id.0 },
            "job expired from the retention window",
        );
    };
    let mut last_liveness = Instant::now();
    loop {
        // A watch writes only when events arrive, so a vanished peer
        // would otherwise hold its slot for the whole job. A periodic
        // zero-consume peek detects a closed peer (FIN/RST) promptly; a
        // silent partition stays undetectable until the next write, as
        // with any TCP stream without keepalive.
        if last_liveness.elapsed() >= Duration::from_secs(2) {
            last_liveness = Instant::now();
            if peer_closed(stream) {
                return false;
            }
        }
        match events.recv_timeout(Duration::from_millis(50)) {
            Ok(event) => {
                if let Some(wire_event) = wire_event(&event) {
                    if !send(
                        stream,
                        &Message::Event {
                            job: id.0,
                            event: wire_event,
                        },
                    ) {
                        // The peer is gone; the job keeps running (a
                        // reconnecting client re-attaches by fingerprint).
                        return false;
                    }
                }
            }
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {}
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
                // The job's event fan-out is gone: it was evicted from
                // the retention window (or the service stopped). One
                // final result check, then a typed answer either way —
                // never a poll loop against a channel that returns
                // Disconnected instantly.
                if let Some(result) = inner.service.result(id) {
                    return send_done(stream, id, &result);
                }
                return send_error(
                    stream,
                    ErrorKind::UnknownJob { job: id.0 },
                    "job expired from the retention window before its result was read",
                );
            }
        }
        if let Some(result) = inner.service.result(id) {
            return send_done(stream, id, &result);
        }
        if inner.stopped.load(Ordering::SeqCst) {
            let _ = send(stream, &Message::Bye);
            return false;
        }
    }
}

/// True if the peer has closed (or reset) the connection — a 1-byte
/// `peek` under a tiny read deadline returns `Ok(0)` on FIN and a hard
/// error on RST, while an alive-but-quiet peer times out. The original
/// read deadline is restored afterwards.
fn peer_closed(stream: &mut TcpStream) -> bool {
    let original = stream.read_timeout().ok().flatten();
    if stream
        .set_read_timeout(Some(Duration::from_millis(1)))
        .is_err()
    {
        return false;
    }
    let mut probe = [0u8; 1];
    let closed = match stream.peek(&mut probe) {
        Ok(0) => true,
        Ok(_) => false, // pipelined bytes: not our business mid-watch
        Err(e) => !matches!(
            e.kind(),
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut | io::ErrorKind::Interrupted
        ),
    };
    let _ = stream.set_read_timeout(original);
    closed
}

fn send_done(stream: &mut TcpStream, id: JobId, result: &beer_service::JobResult) -> bool {
    let wire_result: WireResult = match result {
        Ok(output) => Ok(WireOutput {
            outcome: WireOutcome::from_outcome(&output.outcome),
            from_cache: output.from_cache,
            coalesced_into: output.coalesced_into.map(|JobId(j)| j),
        }),
        Err(e) => Err(WireJobError::from_error(e)),
    };
    send(
        stream,
        &Message::Done {
            job: id.0,
            result: wire_result,
        },
    )
}

/// Maps a service event to its wire twin (session progress flattens to a
/// rendered detail line).
fn wire_event(event: &JobEvent) -> Option<WireEvent> {
    Some(match event {
        JobEvent::Submitted { tenant, .. } => WireEvent::Submitted {
            tenant: tenant.clone(),
        },
        JobEvent::StateChanged { state, .. } => WireEvent::State { state: *state },
        JobEvent::Coalesced { primary, .. } => WireEvent::Coalesced { primary: primary.0 },
        JobEvent::CacheHit { .. } => WireEvent::CacheHit,
        JobEvent::Requeued { .. } => WireEvent::Requeued,
        JobEvent::Progress { event, .. } => WireEvent::Progress {
            detail: format!("{event:?}"),
        },
    })
}
