//! The network edge: an event-driven TCP server fronting a
//! [`RecoveryService`].
//!
//! ```text
//!  clients ──TCP──▶ listener ─┐
//!                             ▼            one reactor thread (epoll)
//!                   ┌──────────────────────────────────────────────┐
//!                   │ accept → slab slot (over limit: typed Busy)  │
//!                   │ per-connection state machine:                │
//!                   │   handshake ─▶ ready ─▶ watching ─▶ ready…   │
//!                   │ pooled read buffers → incremental decode     │
//!                   │ pooled write queue  → vectored flush         │
//!                   └──────────▲───────────────────────────────────┘
//!                              │ eventfd wake
//!                   service workers ── JobEvent fanout notify hook
//! ```
//!
//! Design rules:
//!
//! * **One thread, any number of connections.** Every socket is
//!   nonblocking and multiplexed by a single reactor thread over epoll
//!   ([`crate::reactor`]); server thread count is O(service workers +
//!   1), never O(connections). A thousand idle watchers cost a thousand
//!   fds and nothing else.
//! * **Events push, nothing polls.** A watching connection is woken
//!   through the service's fanout notify hook
//!   ([`RecoveryService::subscribe_notified`]) and an eventfd, not a
//!   50 ms poll loop; a peer hangup is an `EPOLLRDHUP` readiness event,
//!   not a periodic liveness probe.
//! * **Load shedding, not dropped sockets.** Every admission failure —
//!   full queue, oversized job, bad tenant, drain — crosses the wire as a
//!   typed [`Message::Error`] frame mirroring
//!   [`Rejected`](beer_service::Rejected), so a client can distinguish
//!   backpressure from network failure. A peer that stops draining its
//!   socket overflows its bounded write queue and gets a typed
//!   [`ErrorKind::Busy`] before the disconnect.
//! * **Buffers are pooled.** Frames encode via
//!   [`Message::encode_into`] into buffers from a reactor-owned
//!   [`BufPool`] — the hot frames (Event, SubmitAck, cache-hit Done)
//!   allocate nothing in steady state — and partial writes resume from
//!   a queue of whole frames flushed with `write_vectored`.
//! * **Graceful drain.** [`NetServer::shutdown`] stops admitting new
//!   submissions (they get [`ErrorKind::ShuttingDown`]), waits on the
//!   service's idle condvar, then waits for watchers to collect their
//!   terminal frames and write queues to flush — condvar wakeups
//!   throughout, no sleep loops.

use crate::client::{Client, ClientConfig, ClientError};
use crate::reactor::{BufPool, Event, Poller, Waker, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use crate::ring::Ring;
use crate::wire::{
    self, ErrorKind, Message, WireError, WireEvent, WireJobError, WireOutcome, WireOutput,
    WireRecord, WireResult, WireStats,
};
use beer_core::trace::{Fingerprint, ProfileTrace, TraceAssembler};
use beer_obs::TraceId;
use beer_service::{
    CodeEntry, JobEvent, JobId, JobRequest, Priority, RecoveryService, ServiceObs, ServiceStats,
};
use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{self, IoSlice, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Cluster-mode settings: the node's identity on the hash [`Ring`] and
/// how it reaches peers when proxying misrouted submissions (see
/// `beer_cluster` and DESIGN.md §"Cluster architecture").
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// This node's ring member name. A submit whose fingerprint this
    /// member does not own is forwarded to the owner (trace in hand) or
    /// redirected with a typed [`ErrorKind::WrongNode`] (v3 peers).
    pub member: String,
    /// Tenant that node-to-node forwarded submissions authenticate as
    /// on the owning peer.
    pub peer_tenant: String,
    /// Auth token for `peer_tenant` (empty for open services).
    pub peer_token: String,
    /// Forwarder threads relaying misrouted submissions to their
    /// owners. Each proxied job occupies one forwarder for its
    /// lifetime, so this bounds concurrent cross-node proxying.
    pub forwarders: usize,
}

impl ClusterConfig {
    /// Cluster settings for the named ring member, with the default
    /// peer tenant (`"cluster"`, empty token) and 2 forwarders.
    pub fn new(member: impl Into<String>) -> Self {
        ClusterConfig {
            member: member.into(),
            peer_tenant: "cluster".to_string(),
            peer_token: String::new(),
            forwarders: 2,
        }
    }

    /// Overrides the tenant/token used for node-to-node forwarding.
    pub fn with_peer_auth(mut self, tenant: impl Into<String>, token: impl Into<String>) -> Self {
        self.peer_tenant = tenant.into();
        self.peer_token = token.into();
        self
    }

    /// Overrides the forwarder thread count (minimum 1).
    pub fn with_forwarders(mut self, forwarders: usize) -> Self {
        self.forwarders = forwarders.max(1);
        self
    }
}

/// Configuration of a [`NetServer`].
#[derive(Clone, Debug)]
pub struct NetServerConfig {
    /// Concurrent connections; over the limit, new connections get a
    /// typed [`ErrorKind::Busy`] frame and a clean close (never a
    /// silently dropped socket).
    pub max_connections: usize,
    /// Per-connection read deadline: an idle peer with nothing in
    /// flight (no watch, no pending writes) is disconnected after this
    /// long without a frame.
    pub read_timeout: Duration,
    /// Per-connection write deadline: a peer that stops draining its
    /// socket is disconnected once its write queue has been blocked
    /// this long.
    pub write_timeout: Duration,
    /// Frame size cap, enforced before allocation.
    pub max_frame_bytes: usize,
    /// Total size cap for one chunked trace upload.
    pub max_trace_bytes: u64,
    /// Uploaded traces retained for submit-by-fingerprint, shared across
    /// connections (FIFO eviction). Reconnecting clients re-attach to
    /// in-flight work without re-uploading while their trace is retained.
    pub upload_capacity: usize,
    /// Bound on one connection's queued-but-unflushed reply bytes. Past
    /// it the queue is dropped, a typed [`ErrorKind::Busy`] goes out,
    /// and the connection closes — a slow reader can stall only itself.
    pub max_write_buffer: usize,
    /// Entries one registry query answer may carry (a larger answer
    /// would outgrow the peer's frame cap anyway). An answer carrying
    /// exactly this many entries may be truncated; truncations are
    /// counted in [`ServiceStats::truncated_answers`].
    pub max_query_entries: usize,
    /// Human-readable server identity sent in HelloAck.
    pub server_name: String,
    /// Cluster mode: when set, submits for fingerprints this node does
    /// not own on the current [`Ring`] are forwarded or redirected.
    pub cluster: Option<ClusterConfig>,
}

impl Default for NetServerConfig {
    fn default() -> Self {
        NetServerConfig {
            max_connections: 128,
            read_timeout: Duration::from_secs(60),
            write_timeout: Duration::from_secs(10),
            max_frame_bytes: wire::DEFAULT_MAX_FRAME_BYTES,
            max_trace_bytes: 16 << 20,
            upload_capacity: 1024,
            max_write_buffer: 1 << 20,
            max_query_entries: 256,
            server_name: "beer_net".to_string(),
            cluster: None,
        }
    }
}

impl NetServerConfig {
    /// The default configuration (see the field docs).
    pub fn new() -> Self {
        NetServerConfig::default()
    }

    /// Overrides the connection limit.
    pub fn with_max_connections(mut self, max: usize) -> Self {
        self.max_connections = max;
        self
    }

    /// Overrides the per-connection read deadline.
    pub fn with_read_timeout(mut self, timeout: Duration) -> Self {
        self.read_timeout = timeout;
        self
    }

    /// Overrides the per-connection write deadline.
    pub fn with_write_timeout(mut self, timeout: Duration) -> Self {
        self.write_timeout = timeout;
        self
    }

    /// Overrides the frame size cap.
    pub fn with_max_frame_bytes(mut self, max: usize) -> Self {
        self.max_frame_bytes = max;
        self
    }

    /// Overrides the per-connection write queue bound.
    pub fn with_max_write_buffer(mut self, max: usize) -> Self {
        self.max_write_buffer = max;
        self
    }

    /// Overrides the registry query answer cap.
    pub fn with_max_query_entries(mut self, max: usize) -> Self {
        self.max_query_entries = max;
        self
    }

    /// Overrides the server identity string.
    pub fn with_server_name(mut self, name: impl Into<String>) -> Self {
        self.server_name = name.into();
        self
    }

    /// Enables cluster mode (see [`ClusterConfig`]).
    pub fn with_cluster(mut self, cluster: ClusterConfig) -> Self {
        self.cluster = Some(cluster);
        self
    }
}

/// Uploaded traces shared across connections, keyed by fingerprint, with
/// FIFO eviction past the capacity bound.
struct Uploads {
    by_fingerprint: HashMap<Fingerprint, Arc<ProfileTrace>>,
    order: VecDeque<Fingerprint>,
    capacity: usize,
}

impl Uploads {
    fn insert(&mut self, fingerprint: Fingerprint, trace: ProfileTrace) {
        if self
            .by_fingerprint
            .insert(fingerprint, Arc::new(trace))
            .is_none()
        {
            self.order.push_back(fingerprint);
            while self.by_fingerprint.len() > self.capacity {
                if let Some(evicted) = self.order.pop_front() {
                    self.by_fingerprint.remove(&evicted);
                }
            }
        }
    }

    fn get(&self, fingerprint: Fingerprint) -> Option<Arc<ProfileTrace>> {
        self.by_fingerprint.get(&fingerprint).cloned()
    }
}

/// `(active watches, unflushed reply bytes)` published by the reactor
/// while draining; `GAUGE_UNPUBLISHED` until the first publish so a
/// drain cannot succeed against a stale zero.
type DrainGauge = (usize, usize);
const GAUGE_UNPUBLISHED: DrainGauge = (usize::MAX, usize::MAX);

/// The reactor's doorbell: an eventfd plus the tokens of watching
/// connections whose job gained events. Kept in its own `Arc`, apart
/// from [`Shared`], because notify hooks capturing it are stored inside
/// the service's fanout — if they captured [`Shared`] (which holds the
/// service `Arc`) that would be a reference cycle keeping the service
/// alive after shutdown.
struct WakeHub {
    /// Wakes the reactor out of `epoll_wait` from any thread.
    waker: Waker,
    /// Tokens of watching connections whose job gained events.
    watch_wakeups: Mutex<Vec<u64>>,
    /// Progress of proxied (forwarded) submissions, posted by forwarder
    /// threads and drained by the reactor, which relays them to the
    /// originating connection.
    forward_updates: Mutex<Vec<ForwardUpdate>>,
}

/// State shared between the reactor thread and the [`NetServer`] handle.
struct Shared {
    service: Arc<RecoveryService>,
    config: NetServerConfig,
    uploads: Mutex<Uploads>,
    /// Draining: submissions are refused, everything else still answers.
    draining: AtomicBool,
    /// Stopped: the reactor closes everything and exits.
    stopped: AtomicBool,
    active_connections: AtomicUsize,
    wake: Arc<WakeHub>,
    drain_gauge: Mutex<DrainGauge>,
    drain_cv: Condvar,
    /// The cluster hash ring (cluster mode only; epoch-numbered, swapped
    /// whole by [`NetServer::set_ring`]).
    ring: Mutex<Option<Arc<Ring>>>,
    /// A new ring is waiting to be pushed to v3 peers as `RingChanged`.
    ring_push: AtomicBool,
    /// Forwarding work queue (cluster mode only).
    forward: Option<Arc<ForwardHub>>,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

// ---------------------------------------------------------------------------
// Cluster forwarding
// ---------------------------------------------------------------------------

/// Forward tasks one reactor may queue before answering typed Busy.
const MAX_PENDING_FORWARDS: usize = 1024;
/// Pooled idle peer clients kept per owner address.
const MAX_POOLED_PEER_CLIENTS: usize = 4;
/// Events buffered for a proxied job before its Watch arrives.
const MAX_BUFFERED_FORWARD_EVENTS: usize = 256;

/// A misrouted submission handed to the forwarder pool: proxy it to the
/// owning node and relay the answer back to connection `token`.
struct ForwardTask {
    token: u64,
    trace: Arc<ProfileTrace>,
    priority: Priority,
    deadline_ms: Option<u64>,
    owner_name: String,
    owner_addr: String,
    epoch: u64,
    /// The job's trace id, minted at the forward decision so the origin
    /// node's flight recorder and the owner's job share one id.
    trace_id: Option<u128>,
}

/// What a forwarder learned about a proxied job, relayed to the
/// originating connection by the reactor.
enum ForwardOutcome {
    /// The owner accepted: `job` is the *owner's* job id, which the
    /// proxying node surfaces verbatim (ids are connection-scoped, so
    /// there is no collision with locally issued ids... they live in
    /// the same per-connection namespace, tracked in `Conn::forwarded`).
    Ack {
        job: u64,
    },
    Event {
        job: u64,
        event: WireEvent,
    },
    Done {
        job: u64,
        result: WireResult,
    },
    /// The owner refused with a typed error (queue full, wrong node
    /// after a ring change, ...): relayed verbatim.
    Refused {
        kind: ErrorKind,
        detail: String,
    },
    /// The owner was unreachable or the proxy transport failed.
    Failed {
        owner: String,
        detail: String,
    },
}

struct ForwardUpdate {
    token: u64,
    outcome: ForwardOutcome,
}

/// The forwarding work queue shared by the reactor (producer) and the
/// forwarder threads (consumers). Holds the [`WakeHub`] — never
/// [`Shared`] — so detached forwarder threads cannot pin the service
/// alive after shutdown (same rule as the watch notify hooks).
struct ForwardHub {
    cluster: ClusterConfig,
    wake: Arc<WakeHub>,
    tasks: Mutex<VecDeque<ForwardTask>>,
    task_cv: Condvar,
    stopped: AtomicBool,
    /// Idle peer clients pooled per owner address: the steady-state
    /// cross-node path reuses connections instead of re-dialing.
    idle: Mutex<HashMap<String, Vec<Client>>>,
    /// The service's observability surface (a standalone Arc — holding
    /// it does not pin the service alive, preserving the no-`Shared`
    /// rule above): forward round-trips land in `net_forward_rtt_ns`.
    obs: Arc<ServiceObs>,
}

impl ForwardHub {
    fn new(cluster: ClusterConfig, wake: Arc<WakeHub>, obs: Arc<ServiceObs>) -> ForwardHub {
        ForwardHub {
            cluster,
            wake,
            tasks: Mutex::new(VecDeque::new()),
            task_cv: Condvar::new(),
            stopped: AtomicBool::new(false),
            idle: Mutex::new(HashMap::new()),
            obs,
        }
    }

    /// Queues a task for the forwarder pool; `false` when the queue is
    /// at its bound (the caller answers typed Busy).
    fn submit(&self, task: ForwardTask) -> bool {
        let mut tasks = lock(&self.tasks);
        if tasks.len() >= MAX_PENDING_FORWARDS {
            return false;
        }
        tasks.push_back(task);
        drop(tasks);
        self.task_cv.notify_one();
        true
    }

    fn stop(&self) {
        self.stopped.store(true, Ordering::SeqCst);
        self.task_cv.notify_all();
    }

    fn post(&self, token: u64, outcome: ForwardOutcome) {
        lock(&self.wake.forward_updates).push(ForwardUpdate { token, outcome });
        self.wake.waker.wake();
    }

    fn take_client(&self, addr: &str) -> Result<Client, ClientError> {
        if let Some(client) = lock(&self.idle).get_mut(addr).and_then(Vec::pop) {
            return Ok(client);
        }
        Client::connect_with(
            addr,
            self.cluster.peer_tenant.clone(),
            self.cluster.peer_token.clone(),
            ClientConfig::new().with_reconnect(2, Duration::from_millis(10)),
        )
    }

    fn put_client(&self, addr: String, client: Client) {
        let mut idle = lock(&self.idle);
        let pool = idle.entry(addr).or_default();
        if pool.len() < MAX_POOLED_PEER_CLIENTS {
            pool.push(client);
        }
    }

    /// One forwarder thread: pop tasks, proxy each to its owner over
    /// beer-wire, post progress back through the [`WakeHub`].
    fn run(self: &Arc<ForwardHub>) {
        loop {
            let task = {
                let mut tasks = lock(&self.tasks);
                loop {
                    if let Some(task) = tasks.pop_front() {
                        break Some(task);
                    }
                    if self.stopped.load(Ordering::SeqCst) {
                        break None;
                    }
                    tasks = self.task_cv.wait(tasks).unwrap_or_else(|p| p.into_inner());
                }
            };
            let Some(task) = task else { return };
            self.proxy(task);
        }
    }

    fn proxy(&self, task: ForwardTask) {
        let mut client = match self.take_client(&task.owner_addr) {
            Ok(client) => client,
            Err(e) => {
                self.post(
                    task.token,
                    ForwardOutcome::Failed {
                        owner: task.owner_addr.clone(),
                        detail: format!("owner {} unreachable: {e}", task.owner_name),
                    },
                );
                return;
            }
        };
        let deadline = task.deadline_ms.map(Duration::from_millis);
        let rtt_start = Instant::now();
        let submitted = client.submit_forwarded(
            &task.trace,
            task.priority,
            deadline,
            task.epoch,
            task.trace_id,
        );
        // The forward round-trip is submit-to-ack (or typed refusal) —
        // the owner's solve time is its own series, not this one.
        if self.obs.enabled() {
            self.obs
                .registry()
                .histogram("net_forward_rtt_ns")
                .record_duration(rtt_start.elapsed());
        }
        let job = match submitted {
            Ok(job) => job,
            Err(ClientError::Refused { kind, detail }) => {
                self.post(task.token, ForwardOutcome::Refused { kind, detail });
                return;
            }
            Err(e) => {
                self.post(
                    task.token,
                    ForwardOutcome::Failed {
                        owner: task.owner_addr.clone(),
                        detail: format!("forwarding to {} failed: {e}", task.owner_name),
                    },
                );
                return;
            }
        };
        self.post(task.token, ForwardOutcome::Ack { job: job.id });
        let waited = client.wait_with(job, |event| {
            self.post(
                task.token,
                ForwardOutcome::Event {
                    job: job.id,
                    event: event.clone(),
                },
            );
        });
        match waited {
            Ok(result) => {
                self.post(
                    task.token,
                    ForwardOutcome::Done {
                        job: job.id,
                        result,
                    },
                );
                self.put_client(task.owner_addr, client);
            }
            Err(e) => {
                // The ack is already out, so the originating client is
                // owed a terminal answer for this job id: a typed job
                // error, not a dangling watch.
                self.post(
                    task.token,
                    ForwardOutcome::Done {
                        job: job.id,
                        result: Err(WireJobError::Recovery {
                            message: format!("proxied job lost on owner {}: {e}", task.owner_name),
                        }),
                    },
                );
            }
        }
    }
}

/// A TCP server exposing a [`RecoveryService`] over `beer-wire v1` (see
/// the module docs).
pub struct NetServer {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    reactor_thread: Option<JoinHandle<()>>,
}

impl NetServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// reactor thread accepting connections for `service`.
    ///
    /// # Errors
    ///
    /// Propagates bind and epoll-setup errors.
    pub fn bind(
        service: Arc<RecoveryService>,
        addr: impl ToSocketAddrs,
        config: NetServerConfig,
    ) -> io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let poller = Poller::new()?;
        let wake = Arc::new(WakeHub {
            waker: Waker::new()?,
            watch_wakeups: Mutex::new(Vec::new()),
            forward_updates: Mutex::new(Vec::new()),
        });
        poller.add(listener.as_raw_fd(), TOKEN_LISTENER, EPOLLIN)?;
        poller.add(wake.waker.fd(), TOKEN_WAKER, EPOLLIN)?;
        let forward = config.cluster.clone().map(|cluster| {
            let hub = Arc::new(ForwardHub::new(
                cluster,
                Arc::clone(&wake),
                Arc::clone(service.obs()),
            ));
            // Detached: a forwarder blocked on a long remote job must not
            // stall shutdown; it holds only the hub and the wake hub, so
            // it cannot pin the service (or this server) alive.
            for i in 0..hub.cluster.forwarders.max(1) {
                let hub = Arc::clone(&hub);
                let _ = std::thread::Builder::new()
                    .name(format!("beer-net-forwarder-{i}"))
                    .spawn(move || hub.run());
            }
            hub
        });
        let shared = Arc::new(Shared {
            service,
            uploads: Mutex::new(Uploads {
                by_fingerprint: HashMap::new(),
                order: VecDeque::new(),
                capacity: config.upload_capacity,
            }),
            config,
            draining: AtomicBool::new(false),
            stopped: AtomicBool::new(false),
            active_connections: AtomicUsize::new(0),
            wake,
            drain_gauge: Mutex::new(GAUGE_UNPUBLISHED),
            drain_cv: Condvar::new(),
            ring: Mutex::new(None),
            ring_push: AtomicBool::new(false),
            forward,
        });
        let reactor = Reactor {
            shared: Arc::clone(&shared),
            listener,
            poller,
            pool: BufPool::new(1024, 64 << 10),
            conns: Vec::new(),
            gens: Vec::new(),
            free: Vec::new(),
        };
        let reactor_thread = std::thread::Builder::new()
            .name("beer-net-reactor".to_string())
            .spawn(move || reactor.run())
            .expect("spawn reactor thread");
        Ok(NetServer {
            shared,
            local_addr,
            reactor_thread: Some(reactor_thread),
        })
    }

    /// The bound address (the actual port when bound with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Connections currently being served.
    pub fn active_connections(&self) -> usize {
        self.shared.active_connections.load(Ordering::SeqCst)
    }

    /// Installs (or replaces) the cluster hash ring. Takes effect for
    /// the next frame on every connection; v3 peers are additionally
    /// pushed a `RingChanged` frame. Rings carry an epoch so clients
    /// can recognize staleness; installing an older epoch is allowed
    /// (the server trusts its operator) but clients will not adopt it.
    pub fn set_ring(&self, ring: Ring) {
        *lock(&self.shared.ring) = Some(Arc::new(ring));
        self.shared.ring_push.store(true, Ordering::SeqCst);
        self.shared.wake.waker.wake();
    }

    /// The currently installed cluster ring, if any.
    pub fn ring(&self) -> Option<Arc<Ring>> {
        lock(&self.shared.ring).clone()
    }

    /// Stops admitting new submissions (they get
    /// [`ErrorKind::ShuttingDown`]) but keeps serving queries and event
    /// streams while in-flight jobs finish — for up to `drain`. Then
    /// closes the listener and every connection and joins the reactor.
    /// The underlying [`RecoveryService`] is shared and stays up; shut it
    /// down separately.
    ///
    /// The whole drain is event-driven: a condvar wait on the service
    /// going idle, then a condvar wait on the reactor reporting zero
    /// active watches and zero unflushed bytes. No sleep loops.
    pub fn shutdown(mut self, drain: Duration) {
        self.shutdown_impl(drain);
    }

    fn shutdown_impl(&mut self, drain: Duration) {
        if self.reactor_thread.is_none() {
            return;
        }
        let deadline = Instant::now() + drain;
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.wake.waker.wake();
        let _ = self
            .shared
            .service
            .wait_idle(deadline.saturating_duration_since(Instant::now()));
        // Wait for watchers to collect their terminal frames and for
        // write queues to flush, as reported by the reactor.
        {
            let mut gauge = lock(&self.shared.drain_gauge);
            while *gauge != (0, 0) {
                let Some(remaining) = deadline
                    .checked_duration_since(Instant::now())
                    .filter(|d| !d.is_zero())
                else {
                    break;
                };
                let (g, _) = self
                    .shared
                    .drain_cv
                    .wait_timeout(gauge, remaining)
                    .unwrap_or_else(|p| p.into_inner());
                gauge = g;
            }
        }
        if let Some(hub) = &self.shared.forward {
            hub.stop();
        }
        self.shared.stopped.store(true, Ordering::SeqCst);
        self.shared.wake.waker.wake();
        if let Some(handle) = self.reactor_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown_impl(Duration::from_secs(0));
    }
}

// ---------------------------------------------------------------------------
// Reactor
// ---------------------------------------------------------------------------

const TOKEN_LISTENER: u64 = u64::MAX;
const TOKEN_WAKER: u64 = u64::MAX - 1;

/// Read-budget per connection per readiness event, for fairness.
const READ_BUDGET: usize = 256 << 10;
/// Frames gathered into one `write_vectored` call.
const WRITE_BATCH: usize = 64;
/// Concurrent in-progress uploads one connection may hold.
const MAX_CONCURRENT_UPLOADS: usize = 4;
/// Refused-upload fingerprints remembered per connection.
const MAX_REJECTED_UPLOADS: usize = 1024;

fn conn_token(generation: u32, idx: usize) -> u64 {
    ((generation as u64) << 32) | idx as u64
}

/// What a connection is doing, beyond request/response.
struct WatchState {
    id: JobId,
    rx: mpsc::Receiver<JobEvent>,
}

/// A job this connection submitted that is being proxied to its owning
/// cluster node. Events and the result stream in from a forwarder
/// thread; until the client Watches, they buffer here (events bounded,
/// oldest dropped — they are advisory; the result is what matters).
#[derive(Default)]
struct ForwardedJob {
    events: VecDeque<WireEvent>,
    result: Option<WireResult>,
    watching: bool,
}

/// One connection's state machine: `authed == false` is the handshake
/// state (only Hello is legal), `watch.is_some()` is the streaming state
/// (incoming frames buffer unparsed until the watch ends).
struct Conn {
    stream: TcpStream,
    token: u64,
    authed: bool,
    /// Protocol version negotiated at Hello (0 before the handshake).
    /// Gates v2-only frames: a v1 peer sending a paginated query gets a
    /// typed BadRequest, not a silent downgrade.
    version: u16,
    tenant: String,
    /// Job ids issued on this connection — the only ids it may watch or
    /// cancel (tenancy isolation at the wire edge).
    jobs: HashSet<u64>,
    /// Jobs proxied to their owning cluster node on this connection's
    /// behalf, keyed by the owner's job id.
    forwarded: HashMap<u64, ForwardedJob>,
    /// In-progress chunked uploads.
    assemblies: HashMap<Fingerprint, TraceAssembler>,
    /// Uploads already refused with a typed error. Later chunks of a
    /// refused upload are dropped *silently*: the sender streams its
    /// chunks before reading the refusal, and answering each one would
    /// desynchronize its request/response pairing.
    rejected_uploads: HashSet<Fingerprint>,
    /// Pooled read buffer: raw bytes in, frames decoded incrementally
    /// from `rpos` without per-frame allocation.
    rbuf: Vec<u8>,
    rpos: usize,
    /// Pooled write queue: whole encoded frames, flushed with
    /// `write_vectored`; `out_offset` is the written prefix of the
    /// front frame, `out_bytes` the unwritten total.
    outbox: VecDeque<Vec<u8>>,
    out_offset: usize,
    out_bytes: usize,
    watch: Option<WatchState>,
    /// Currently registered epoll interest bits.
    interest: u32,
    last_activity: Instant,
    /// When the write queue first failed to flush (slow peer).
    blocked_since: Option<Instant>,
    /// The peer sent FIN: no more requests will arrive.
    peer_eof: bool,
    /// Close once the outbox flushes (typed refusal already queued).
    close_after_flush: bool,
    /// The write queue overflowed: only the final Busy frame remains.
    overflowed: bool,
    /// Transport failure: close immediately, flush nothing.
    dead: bool,
}

impl Conn {
    fn new(stream: TcpStream, token: u64, rbuf: Vec<u8>) -> Conn {
        Conn {
            stream,
            token,
            authed: false,
            version: 0,
            tenant: String::new(),
            jobs: HashSet::new(),
            forwarded: HashMap::new(),
            assemblies: HashMap::new(),
            rejected_uploads: HashSet::new(),
            rbuf,
            rpos: 0,
            outbox: VecDeque::new(),
            out_offset: 0,
            out_bytes: 0,
            watch: None,
            interest: EPOLLIN | EPOLLRDHUP,
            last_activity: Instant::now(),
            blocked_since: None,
            peer_eof: false,
            close_after_flush: false,
            overflowed: false,
            dead: false,
        }
    }

    /// Bounds the refusal memory. Clearing drops the silent-absorb
    /// guarantee for any *still-streaming* refused upload (its remaining
    /// chunks would each earn an error frame again), but only a client
    /// cycling through >1024 refused uploads on one connection can reach
    /// this, and bounded memory wins over its framing.
    fn bound_rejected_uploads(&mut self) {
        if self.rejected_uploads.len() > MAX_REJECTED_UPLOADS {
            self.rejected_uploads.clear();
        }
    }

    /// Encodes `message` into a pooled buffer and queues it. Past the
    /// write-queue bound the queue is dropped (keeping a half-written
    /// front frame so the stream stays framed), one typed Busy goes out,
    /// and the connection is marked to close: a peer that stops reading
    /// stalls only itself.
    fn queue(&mut self, pool: &mut BufPool, config: &NetServerConfig, message: &Message) {
        if self.dead || self.overflowed {
            return;
        }
        let mut buf = pool.take();
        message.encode_into(&mut buf);
        if self.out_bytes + buf.len() > config.max_write_buffer {
            pool.put(buf);
            let keep = usize::from(self.out_offset > 0);
            while self.outbox.len() > keep {
                let dropped = self.outbox.pop_back().expect("len > keep");
                self.out_bytes -= dropped.len();
                pool.put(dropped);
            }
            self.overflowed = true;
            self.watch = None;
            self.close_after_flush = true;
            let mut busy = pool.take();
            Message::Error {
                kind: ErrorKind::Busy,
                detail: format!(
                    "write queue overflowed {} bytes: the peer is not draining its socket",
                    config.max_write_buffer
                ),
            }
            .encode_into(&mut busy);
            self.out_bytes += busy.len();
            self.outbox.push_back(busy);
            return;
        }
        self.out_bytes += buf.len();
        self.outbox.push_back(buf);
    }

    fn queue_error(
        &mut self,
        pool: &mut BufPool,
        config: &NetServerConfig,
        kind: ErrorKind,
        detail: impl Into<String>,
    ) {
        self.queue(
            pool,
            config,
            &Message::Error {
                kind,
                detail: detail.into(),
            },
        );
    }

    /// Vectored flush of as many queued frames as the socket takes;
    /// fully written frames return their buffers to the pool.
    fn flush(&mut self, pool: &mut BufPool) -> io::Result<()> {
        while !self.outbox.is_empty() {
            let mut slices: Vec<IoSlice<'_>> =
                Vec::with_capacity(self.outbox.len().min(WRITE_BATCH));
            let mut iter = self.outbox.iter();
            let front = iter.next().expect("outbox nonempty");
            slices.push(IoSlice::new(&front[self.out_offset..]));
            for frame in iter.take(WRITE_BATCH - 1) {
                slices.push(IoSlice::new(frame));
            }
            let mut n = match self.stream.write_vectored(&slices) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if self.blocked_since.is_none() {
                        self.blocked_since = Some(Instant::now());
                    }
                    return Ok(());
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            self.out_bytes -= n;
            while n > 0 {
                let front_remaining =
                    self.outbox.front().expect("bytes imply frames").len() - self.out_offset;
                if n >= front_remaining {
                    n -= front_remaining;
                    self.out_offset = 0;
                    pool.put(self.outbox.pop_front().expect("front exists"));
                } else {
                    self.out_offset += n;
                    n = 0;
                }
            }
        }
        self.blocked_since = None;
        Ok(())
    }

    /// Reads available bytes into the pooled buffer, up to the fairness
    /// budget and the buffer cap (a frame-and-a-bit; a larger declared
    /// frame is refused as [`WireError::FrameTooLarge`] before then).
    fn fill(&mut self, config: &NetServerConfig) -> io::Result<()> {
        let cap = config.max_frame_bytes + 4 + (64 << 10);
        let mut budget = READ_BUDGET;
        while budget > 0 && !self.peer_eof && self.rbuf.len() < cap {
            let old = self.rbuf.len();
            let want = (cap - old).min(16 << 10).min(budget);
            self.rbuf.resize(old + want, 0);
            match self.stream.read(&mut self.rbuf[old..]) {
                Ok(0) => {
                    self.rbuf.truncate(old);
                    self.peer_eof = true;
                }
                Ok(n) => {
                    self.rbuf.truncate(old + n);
                    self.last_activity = Instant::now();
                    budget -= n;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.rbuf.truncate(old);
                    break;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {
                    self.rbuf.truncate(old);
                }
                Err(e) => {
                    self.rbuf.truncate(old);
                    return Err(e);
                }
            }
        }
        Ok(())
    }

    /// The epoll interest this connection's state wants right now.
    fn desired_interest(&self, config: &NetServerConfig) -> u32 {
        let mut bits = EPOLLRDHUP;
        let cap = config.max_frame_bytes + 4 + (64 << 10);
        if !self.peer_eof && self.rbuf.len() < cap {
            bits |= EPOLLIN;
        }
        if !self.outbox.is_empty() {
            bits |= EPOLLOUT;
        }
        bits
    }
}

struct Reactor {
    shared: Arc<Shared>,
    listener: TcpListener,
    poller: Poller,
    pool: BufPool,
    conns: Vec<Option<Conn>>,
    /// Per-slot generation, bumped on close so a stale token (an event
    /// or watch wakeup for a recycled slot) is recognizably stale.
    gens: Vec<u32>,
    free: Vec<usize>,
}

impl Reactor {
    fn run(mut self) {
        let mut events: Vec<Event> = Vec::new();
        let mut last_sweep = Instant::now();
        let obs = Arc::clone(self.shared.service.obs());
        // Time spent servicing each non-empty readiness batch — the
        // reactor's "how long was the loop busy" series. Idle 500 ms
        // timeout wakeups are not ticks; recording them would drown the
        // signal in timer noise.
        let tick_histogram = obs
            .enabled()
            .then(|| obs.registry().histogram("net_reactor_tick_ns"));
        loop {
            events.clear();
            let _ = self
                .poller
                .wait(&mut events, Some(Duration::from_millis(500)));
            if self.shared.stopped.load(Ordering::SeqCst) {
                self.close_all();
                return;
            }
            let tick_start = (!events.is_empty()).then(Instant::now);
            for ev in events.drain(..) {
                match ev.token {
                    TOKEN_WAKER => self.shared.wake.waker.drain(),
                    TOKEN_LISTENER => self.accept_ready(),
                    token => self.conn_ready(token, ev),
                }
            }
            let woken: Vec<u64> = std::mem::take(&mut *lock(&self.shared.wake.watch_wakeups));
            for token in woken {
                self.watch_ready(token);
            }
            let updates: Vec<ForwardUpdate> =
                std::mem::take(&mut *lock(&self.shared.wake.forward_updates));
            for update in updates {
                self.apply_forward_update(update);
            }
            if self.shared.ring_push.swap(false, Ordering::SeqCst) {
                self.broadcast_ring();
            }
            if let (Some(histogram), Some(start)) = (&tick_histogram, tick_start) {
                histogram.record_duration(start.elapsed());
            }
            if last_sweep.elapsed() >= Duration::from_secs(1) {
                last_sweep = Instant::now();
                self.sweep_timeouts();
            }
            if self.shared.draining.load(Ordering::SeqCst) {
                self.publish_drain_gauge();
            }
        }
    }

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => self.admit(stream),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // Transient accept failure (e.g. fd exhaustion): the next
                // readiness event retries.
                Err(_) => return,
            }
        }
    }

    fn admit(&mut self, stream: TcpStream) {
        // Bounded slab: over the limit, the peer gets a typed Busy frame
        // and a clean close instead of a dropped socket.
        if self.shared.active_connections.load(Ordering::SeqCst)
            >= self.shared.config.max_connections
        {
            let mut frame = self.pool.take();
            Message::Error {
                kind: ErrorKind::Busy,
                detail: format!(
                    "connection limit of {} reached; retry later",
                    self.shared.config.max_connections
                ),
            }
            .encode_into(&mut frame);
            let _ = stream.set_nonblocking(true);
            let _ = (&stream).write(&frame);
            self.pool.put(frame);
            return;
        }
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        let idx = self.free.pop().unwrap_or_else(|| {
            self.conns.push(None);
            self.gens.push(0);
            self.conns.len() - 1
        });
        let token = conn_token(self.gens[idx], idx);
        let conn = Conn::new(stream, token, self.pool.take());
        if self
            .poller
            .add(conn.stream.as_raw_fd(), token, conn.interest)
            .is_err()
        {
            self.free.push(idx);
            return;
        }
        self.conns[idx] = Some(conn);
        self.shared
            .active_connections
            .fetch_add(1, Ordering::SeqCst);
    }

    /// Resolves a token to its live slot index, refusing stale tokens.
    fn resolve(&self, token: u64) -> Option<usize> {
        let idx = (token & u32::MAX as u64) as usize;
        (idx < self.conns.len()
            && conn_token(self.gens[idx], idx) == token
            && self.conns[idx].is_some())
        .then_some(idx)
    }

    fn conn_ready(&mut self, token: u64, ev: Event) {
        let Some(idx) = self.resolve(token) else {
            return;
        };
        {
            let conn = self.conns[idx].as_mut().expect("resolved");
            if ev.writable() && conn.flush(&mut self.pool).is_err() {
                conn.dead = true;
            }
            if !conn.dead
                && (ev.readable() || ev.closed())
                && conn.fill(&self.shared.config).is_err()
            {
                conn.dead = true;
            }
        }
        self.drive(idx);
        self.finish(idx);
    }

    fn watch_ready(&mut self, token: u64) {
        let Some(idx) = self.resolve(token) else {
            return;
        };
        self.drive(idx);
        self.finish(idx);
    }

    /// Relays one forwarder-thread update to its originating connection.
    /// A stale token (the peer hung up while its job was proxied) drops
    /// the update; the owner finishes the job regardless.
    fn apply_forward_update(&mut self, update: ForwardUpdate) {
        let Some(idx) = self.resolve(update.token) else {
            return;
        };
        let shared = Arc::clone(&self.shared);
        let config = &shared.config;
        let pool = &mut self.pool;
        let conn = self.conns[idx].as_mut().expect("resolved");
        match update.outcome {
            ForwardOutcome::Ack { job } => {
                conn.forwarded.insert(job, ForwardedJob::default());
                conn.queue(pool, config, &Message::SubmitAck { job });
            }
            ForwardOutcome::Event { job, event } => {
                if let Some(fwd) = conn.forwarded.get_mut(&job) {
                    if fwd.watching {
                        conn.queue(pool, config, &Message::Event { job, event });
                    } else {
                        if fwd.events.len() >= MAX_BUFFERED_FORWARD_EVENTS {
                            fwd.events.pop_front();
                        }
                        fwd.events.push_back(event);
                    }
                }
            }
            ForwardOutcome::Done { job, result } => {
                if let Some(fwd) = conn.forwarded.get_mut(&job) {
                    if fwd.watching {
                        conn.forwarded.remove(&job);
                        conn.queue(pool, config, &Message::Done { job, result });
                    } else {
                        fwd.result = Some(result);
                    }
                }
            }
            ForwardOutcome::Refused { kind, detail } => {
                shared.service.note_forward_error();
                conn.queue_error(pool, config, kind, detail);
            }
            ForwardOutcome::Failed { owner, detail } => {
                shared.service.note_forward_error();
                conn.queue_error(pool, config, ErrorKind::WrongNode { owner }, detail);
            }
        }
        self.finish(idx);
    }

    /// Pushes the freshly installed ring to every authed v3 peer.
    fn broadcast_ring(&mut self) {
        let Some(ring) = lock(&self.shared.ring).clone() else {
            return;
        };
        let config = self.shared.config.clone();
        for idx in 0..self.conns.len() {
            let queued = match self.conns[idx].as_mut() {
                Some(conn) if conn.authed && conn.version >= 3 && !conn.dead => {
                    conn.queue(
                        &mut self.pool,
                        &config,
                        &Message::RingChanged {
                            ring: (*ring).clone(),
                        },
                    );
                    true
                }
                _ => false,
            };
            if queued {
                self.finish(idx);
            }
        }
    }

    /// Advances the connection's state machine: pumps an active watch,
    /// then decodes and handles buffered frames until it blocks on input,
    /// enters a watch, or is marked to close.
    fn drive(&mut self, idx: usize) {
        let shared = Arc::clone(&self.shared);
        let pool = &mut self.pool;
        let Some(conn) = self.conns[idx].as_mut() else {
            return;
        };
        loop {
            if conn.dead {
                break;
            }
            if conn.watch.is_some() {
                pump_watch(conn, pool, &shared);
                if conn.watch.is_some() {
                    break; // still streaming: buffer input, do not parse
                }
            }
            if conn.close_after_flush {
                break;
            }
            let avail = conn.rbuf.len() - conn.rpos;
            if avail < 4 {
                break;
            }
            let declared = u32::from_be_bytes(
                conn.rbuf[conn.rpos..conn.rpos + 4]
                    .try_into()
                    .expect("4 bytes"),
            ) as usize;
            if declared > shared.config.max_frame_bytes {
                // Refused before any buffering, mirroring read_message.
                let e = WireError::FrameTooLarge {
                    len: declared as u64,
                    limit: shared.config.max_frame_bytes as u64,
                };
                conn.queue_error(pool, &shared.config, ErrorKind::BadRequest, e.to_string());
                conn.close_after_flush = true;
                break;
            }
            if avail < 4 + declared {
                break;
            }
            let decoded = Message::decode_body(&conn.rbuf[conn.rpos + 4..conn.rpos + 4 + declared]);
            conn.rpos += 4 + declared;
            match decoded {
                Ok(message) => handle_frame(conn, pool, &shared, message),
                Err(e) => {
                    // A peer sending garbage gets one typed diagnosis,
                    // then the connection closes (framing may be
                    // unrecoverable).
                    conn.queue_error(pool, &shared.config, ErrorKind::BadRequest, e.to_string());
                    conn.close_after_flush = true;
                    break;
                }
            }
        }
        // Compact the consumed prefix once per drive, not per frame.
        if conn.rpos > 0 {
            conn.rbuf.drain(..conn.rpos);
            conn.rpos = 0;
        }
    }

    /// Flushes queued replies, closes the connection if its state says
    /// so, and otherwise re-arms epoll interest to match.
    fn finish(&mut self, idx: usize) {
        let Some(conn) = self.conns[idx].as_mut() else {
            return;
        };
        if !conn.dead && conn.flush(&mut self.pool).is_err() {
            conn.dead = true;
        }
        let flushed = conn.outbox.is_empty();
        let close = conn.dead
            || (conn.close_after_flush && flushed)
            // A watcher that hung up releases its slot now; the job
            // keeps running (a reconnecting client re-attaches by
            // fingerprint).
            || (conn.peer_eof && conn.watch.is_some())
            // Clean EOF: no more requests can arrive, replies are out.
            // Any unparsed leftover is a frame that can never complete.
            || (conn.peer_eof && conn.watch.is_none() && flushed);
        if close {
            self.close_conn(idx);
            return;
        }
        let desired = conn.desired_interest(&self.shared.config);
        if desired != conn.interest
            && self
                .poller
                .modify(conn.stream.as_raw_fd(), conn.token, desired)
                .is_ok()
        {
            conn.interest = desired;
        }
    }

    fn close_conn(&mut self, idx: usize) {
        let Some(mut conn) = self.conns[idx].take() else {
            return;
        };
        let _ = self.poller.delete(conn.stream.as_raw_fd());
        self.pool.put(std::mem::take(&mut conn.rbuf));
        for frame in conn.outbox.drain(..) {
            self.pool.put(frame);
        }
        // Dropping conn.watch drops the receiver; the fanout prunes the
        // subscriber (and its notify hook) on the next publish.
        self.gens[idx] = self.gens[idx].wrapping_add(1);
        self.free.push(idx);
        self.shared
            .active_connections
            .fetch_sub(1, Ordering::SeqCst);
    }

    /// Disconnects idle peers (nothing in flight, no frame for the read
    /// deadline) and stalled writers (queue blocked past the write
    /// deadline). Watching connections are exempt from the idle deadline:
    /// a watch legitimately carries no traffic while its job runs.
    fn sweep_timeouts(&mut self) {
        for idx in 0..self.conns.len() {
            let Some(conn) = self.conns[idx].as_ref() else {
                continue;
            };
            let stalled = conn
                .blocked_since
                .is_some_and(|since| since.elapsed() >= self.shared.config.write_timeout);
            let idle = conn.watch.is_none()
                // A forwarded job legitimately carries no local traffic
                // while the owning node solves it.
                && conn.forwarded.is_empty()
                && conn.outbox.is_empty()
                && conn.last_activity.elapsed() >= self.shared.config.read_timeout;
            if stalled || idle {
                self.close_conn(idx);
            }
        }
    }

    fn publish_drain_gauge(&self) {
        let watches = self
            .conns
            .iter()
            .flatten()
            .filter(|c| c.watch.is_some() || c.forwarded.values().any(|f| f.watching))
            .count();
        let unflushed: usize = self.conns.iter().flatten().map(|c| c.out_bytes).sum();
        *lock(&self.shared.drain_gauge) = (watches, unflushed);
        self.shared.drain_cv.notify_all();
    }

    /// Stop: best-effort Bye to every peer, then close everything.
    fn close_all(&mut self) {
        let pool = &mut self.pool;
        for slot in self.conns.iter_mut() {
            if let Some(conn) = slot.as_mut() {
                conn.queue(pool, &self.shared.config, &Message::Bye);
                let _ = conn.flush(pool);
            }
        }
        for idx in 0..self.conns.len() {
            if self.conns[idx].is_some() {
                self.close_conn(idx);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Frame handling
// ---------------------------------------------------------------------------

/// Handles one decoded request frame, queueing any reply.
fn handle_frame(conn: &mut Conn, pool: &mut BufPool, shared: &Arc<Shared>, message: Message) {
    let config = &shared.config;
    conn.last_activity = Instant::now();
    // Handshake state: the first frame must be a Hello that negotiates
    // and authenticates.
    if !conn.authed {
        match message {
            Message::Hello {
                min_version,
                max_version,
                tenant,
                token,
            } => {
                let Some(version) = wire::negotiate(min_version, max_version) else {
                    conn.queue_error(
                        pool,
                        config,
                        ErrorKind::UnsupportedVersion {
                            min: wire::WIRE_MIN_VERSION,
                            max: wire::WIRE_VERSION,
                        },
                        format!(
                            "no common version: client speaks {min_version}..={max_version}, \
                             server speaks {}..={}",
                            wire::WIRE_MIN_VERSION,
                            wire::WIRE_VERSION
                        ),
                    );
                    conn.close_after_flush = true;
                    return;
                };
                if !shared.service.authenticate(&tenant, &token) {
                    conn.queue_error(
                        pool,
                        config,
                        ErrorKind::AuthFailed,
                        format!("tenant {tenant:?} refused"),
                    );
                    conn.close_after_flush = true;
                    return;
                }
                // v3 peers learn the cluster ring in the handshake; the
                // ring rides HelloAck as bare trailing bytes, so a
                // ringless v3 ack is byte-identical to v2's.
                let ring = if version >= 3 {
                    lock(&shared.ring).clone().map(|r| (*r).clone())
                } else {
                    None
                };
                conn.queue(
                    pool,
                    config,
                    &Message::HelloAck {
                        version,
                        server: config.server_name.clone(),
                        ring,
                    },
                );
                conn.tenant = tenant;
                conn.authed = true;
                conn.version = version;
            }
            _ => {
                conn.queue_error(
                    pool,
                    config,
                    ErrorKind::BadRequest,
                    "first frame must be Hello",
                );
                conn.close_after_flush = true;
            }
        }
        return;
    }
    match message {
        Message::TraceBegin {
            fingerprint,
            total_chunks,
            total_bytes,
        } => {
            // Bound what one connection may buffer: a restarted upload
            // for a known fingerprint replaces its assembly, but brand-new
            // concurrent assemblies are capped (every other buffer in the
            // stack is bounded; this must be too).
            if !conn.assemblies.contains_key(&fingerprint)
                && conn.assemblies.len() >= MAX_CONCURRENT_UPLOADS
            {
                conn.rejected_uploads.insert(fingerprint);
                conn.bound_rejected_uploads();
                conn.queue_error(
                    pool,
                    config,
                    ErrorKind::BadChunk,
                    format!(
                        "too many concurrent uploads on one connection \
                         (limit {MAX_CONCURRENT_UPLOADS}); finish one first"
                    ),
                );
                return;
            }
            match TraceAssembler::new(
                fingerprint,
                total_chunks,
                total_bytes,
                config.max_trace_bytes,
            ) {
                Ok(assembler) => {
                    // A restarted upload for the same fingerprint replaces
                    // the stale assembly (and clears any earlier refusal).
                    conn.rejected_uploads.remove(&fingerprint);
                    conn.assemblies.insert(fingerprint, assembler);
                }
                Err(e) => {
                    conn.rejected_uploads.insert(fingerprint);
                    conn.bound_rejected_uploads();
                    conn.queue_error(pool, config, ErrorKind::BadChunk, e.to_string());
                }
            }
        }
        Message::TraceChunk {
            fingerprint,
            index,
            data,
        } => {
            let Some(assembler) = conn.assemblies.get_mut(&fingerprint) else {
                // One refusal per upload: the begin/first-bad-chunk error
                // already went out, so the rest of an already-refused
                // stream is absorbed without a reply.
                if !conn.rejected_uploads.contains(&fingerprint) {
                    conn.queue_error(
                        pool,
                        config,
                        ErrorKind::BadChunk,
                        format!("no upload in progress for {fingerprint} (send TraceBegin first)"),
                    );
                }
                return;
            };
            match assembler.accept(index, data) {
                Ok(None) => {}
                Ok(Some(trace)) => {
                    conn.assemblies.remove(&fingerprint);
                    lock(&shared.uploads).insert(fingerprint, trace);
                    conn.queue(pool, config, &Message::TraceAck { fingerprint });
                }
                Err(e) => {
                    conn.assemblies.remove(&fingerprint);
                    conn.rejected_uploads.insert(fingerprint);
                    conn.bound_rejected_uploads();
                    conn.queue_error(pool, config, ErrorKind::BadChunk, e.to_string());
                }
            }
        }
        Message::Submit {
            fingerprint,
            priority,
            deadline_ms,
            trace_id,
        } => {
            // The v4 tag from a pre-v4 peer is a protocol violation —
            // negotiation already settled what this connection speaks.
            if trace_id.is_some() && conn.version < 4 {
                conn.queue_error(
                    pool,
                    config,
                    ErrorKind::BadRequest,
                    "trace ids need protocol v4",
                );
                return;
            }
            if shared.draining.load(Ordering::SeqCst) {
                conn.queue_error(
                    pool,
                    config,
                    ErrorKind::ShuttingDown,
                    "server is draining; no new submissions",
                );
                return;
            }
            // Cluster routing: a fingerprint this node does not own is
            // proxied to its owner (trace in hand) or redirected with a
            // typed WrongNode so a ring-aware client can re-dial.
            if let (Some(cluster), Some(ring)) = (&config.cluster, lock(&shared.ring).clone()) {
                let owner = ring.owner(fingerprint);
                if owner.name != cluster.member {
                    let owner_name = owner.name.clone();
                    let owner_addr = owner.addr.clone();
                    match lock(&shared.uploads).get(fingerprint) {
                        Some(trace) => {
                            // Mint here if the client did not: the id
                            // must exist before the hop so both nodes'
                            // flight recorders stitch to one trace.
                            let trace_id = trace_id.unwrap_or_else(|| TraceId::mint().0);
                            let obs = shared.service.obs();
                            obs.flight(
                                "forward",
                                Some(TraceId(trace_id)),
                                format!("{fingerprint} to {owner_name} at {owner_addr}"),
                            );
                            let hub = shared.forward.as_ref().expect("cluster implies hub");
                            let queued = hub.submit(ForwardTask {
                                token: conn.token,
                                trace,
                                priority,
                                deadline_ms,
                                owner_name,
                                owner_addr,
                                epoch: ring.epoch(),
                                trace_id: Some(trace_id),
                            });
                            if queued {
                                // The ack (or a typed failure) arrives
                                // asynchronously from the forwarder pool.
                                shared.service.note_forwarded_job();
                            } else {
                                conn.queue_error(
                                    pool,
                                    config,
                                    ErrorKind::Busy,
                                    "forwarding queue is full; retry later",
                                );
                            }
                        }
                        None if conn.version >= 3 => {
                            conn.queue_error(
                                pool,
                                config,
                                ErrorKind::WrongNode {
                                    owner: owner_addr.clone(),
                                },
                                format!(
                                    "fingerprint {fingerprint} is owned by \
                                     {owner_name} at {owner_addr}"
                                ),
                            );
                        }
                        None => {
                            // v1/v2 peers know no redirects: ask for the
                            // trace; once uploaded, the forward path above
                            // takes it from there.
                            conn.queue_error(
                                pool,
                                config,
                                ErrorKind::UnknownFingerprint { fingerprint },
                                "upload the trace before submitting it",
                            );
                        }
                    }
                    return;
                }
            }
            submit_local(
                conn,
                pool,
                shared,
                fingerprint,
                priority,
                deadline_ms,
                trace_id,
            );
        }
        Message::SubmitForwarded {
            fingerprint,
            priority,
            deadline_ms,
            epoch,
            trace_id,
        } => {
            if trace_id.is_some() && conn.version < 4 {
                conn.queue_error(
                    pool,
                    config,
                    ErrorKind::BadRequest,
                    "trace ids need protocol v4",
                );
                return;
            }
            // The cluster's loop guard: an already-forwarded submit is
            // never forwarded again. A node that does not own the
            // fingerprint answers a typed WrongNode (counted as a
            // forward error) — the sender's ring was stale.
            let Some(cluster) = &config.cluster else {
                conn.queue_error(
                    pool,
                    config,
                    ErrorKind::BadRequest,
                    "not a cluster node: forwarded submits are not accepted",
                );
                return;
            };
            if conn.version < 3 {
                conn.queue_error(
                    pool,
                    config,
                    ErrorKind::BadRequest,
                    "forwarded submits need protocol v3",
                );
                return;
            }
            if shared.draining.load(Ordering::SeqCst) {
                conn.queue_error(
                    pool,
                    config,
                    ErrorKind::ShuttingDown,
                    "server is draining; no new submissions",
                );
                return;
            }
            let ring = lock(&shared.ring).clone();
            let owned = ring
                .as_ref()
                .is_some_and(|r| r.owns(&cluster.member, fingerprint));
            if !owned {
                shared.service.note_forward_error();
                let (owner, local_epoch) = ring
                    .as_ref()
                    .map(|r| (r.owner(fingerprint).addr.clone(), r.epoch()))
                    .unwrap_or_default();
                conn.queue_error(
                    pool,
                    config,
                    ErrorKind::WrongNode { owner },
                    format!(
                        "already-forwarded submit for a fingerprint this node \
                         does not own (sender epoch {epoch}, local epoch {local_epoch})"
                    ),
                );
                return;
            }
            submit_local(
                conn,
                pool,
                shared,
                fingerprint,
                priority,
                deadline_ms,
                trace_id,
            );
        }
        Message::Watch { job } => {
            if conn.jobs.contains(&job) {
                start_watch(conn, pool, shared, JobId(job));
            } else if conn.forwarded.contains_key(&job) {
                start_forward_watch(conn, pool, config, job);
            } else {
                conn.queue_error(
                    pool,
                    config,
                    ErrorKind::UnknownJob { job },
                    "not a job submitted on this connection",
                );
            }
        }
        Message::Cancel { job } => {
            if conn.forwarded.contains_key(&job) {
                // Remote cancellation is not proxied: the owner solves
                // on (dedup makes the work reusable anyway). Honest
                // answer: not cancelled.
                conn.queue(
                    pool,
                    config,
                    &Message::CancelAck {
                        job,
                        cancelled: false,
                    },
                );
                return;
            }
            if !conn.jobs.contains(&job) {
                conn.queue_error(
                    pool,
                    config,
                    ErrorKind::UnknownJob { job },
                    "not a job submitted on this connection",
                );
                return;
            }
            let cancelled = shared.service.cancel(JobId(job));
            conn.queue(pool, config, &Message::CancelAck { job, cancelled });
        }
        Message::QueryFingerprint { fingerprint } => {
            let record = shared
                .service
                .lookup_fingerprint(fingerprint)
                .map(|r| WireRecord {
                    tenant: r.tenant,
                    outcome: WireOutcome::from_outcome(&r.outcome),
                });
            conn.queue(
                pool,
                config,
                &Message::FingerprintInfo {
                    fingerprint,
                    record,
                },
            );
        }
        Message::QueryDims { n, k } => {
            let entries = shared.service.lookup_dims(n as usize, k as usize);
            // Capped: an unbounded answer would outgrow the peer's frame
            // cap and desynchronize the stream. lookup_dims orders by
            // hash, so the cap returns a stable prefix; truncations are
            // counted so operators can tell.
            if entries.len() > config.max_query_entries {
                shared.service.note_truncated_answer();
            }
            conn.queue(
                pool,
                config,
                &Message::DimsInfo {
                    entries: entries
                        .iter()
                        .take(config.max_query_entries)
                        .map(wire_entry)
                        .collect(),
                },
            );
        }
        Message::QueryHash { hash } => {
            let entries = shared.service.lookup_hash(hash);
            if entries.len() > config.max_query_entries {
                shared.service.note_truncated_answer();
            }
            conn.queue(
                pool,
                config,
                &Message::HashInfo {
                    entries: entries
                        .iter()
                        .take(config.max_query_entries)
                        .map(wire_entry)
                        .collect(),
                },
            );
        }
        Message::QueryDimsPage {
            n,
            k,
            cursor,
            limit,
        } => {
            if conn.version < 2 {
                conn.queue_error(
                    pool,
                    config,
                    ErrorKind::BadRequest,
                    "paginated queries need protocol v2",
                );
                return;
            }
            let after = match cursor.as_deref().map(|c| parse_dims_cursor(c, n, k)) {
                None => None,
                Some(Ok(position)) => Some(position),
                Some(Err(why)) => {
                    conn.queue_error(pool, config, ErrorKind::BadRequest, why);
                    return;
                }
            };
            let (entries, next) = shared.service.lookup_dims_page(
                n as usize,
                k as usize,
                after,
                page_limit(config, limit),
            );
            conn.queue(
                pool,
                config,
                &Message::DimsPage {
                    entries: entries.iter().map(wire_entry).collect(),
                    next_cursor: next.map(|position| mint_dims_cursor(n, k, position)),
                },
            );
        }
        Message::QueryHashPage {
            hash,
            cursor,
            limit,
        } => {
            if conn.version < 2 {
                conn.queue_error(
                    pool,
                    config,
                    ErrorKind::BadRequest,
                    "paginated queries need protocol v2",
                );
                return;
            }
            let after = match cursor.as_deref().map(|c| parse_hash_cursor(c, hash)) {
                None => None,
                Some(Ok(idx)) => Some(idx),
                Some(Err(why)) => {
                    conn.queue_error(pool, config, ErrorKind::BadRequest, why);
                    return;
                }
            };
            let (entries, next) =
                shared
                    .service
                    .lookup_hash_page(hash, after, page_limit(config, limit));
            conn.queue(
                pool,
                config,
                &Message::HashPage {
                    entries: entries.iter().map(wire_entry).collect(),
                    next_cursor: next.map(|idx| mint_hash_cursor(hash, idx)),
                },
            );
        }
        Message::QueryStats => {
            let stats: ServiceStats = shared.service.stats();
            let wire_stats = WireStats::from(stats);
            // v3 peers get the full gauge set; the legacy StatsInfo
            // layout is frozen at its 14 v1 counters.
            let answer = if conn.version >= 3 {
                Message::StatsInfoV3(wire_stats)
            } else {
                Message::StatsInfo(wire_stats)
            };
            conn.queue(pool, config, &answer);
        }
        Message::QueryMetrics { tail } => {
            if conn.version < 4 {
                conn.queue_error(
                    pool,
                    config,
                    ErrorKind::BadRequest,
                    "metrics queries need protocol v4",
                );
                return;
            }
            let text = shared.service.metrics_text(tail as usize);
            conn.queue(pool, config, &Message::MetricsInfo { text });
        }
        Message::Bye => {
            conn.queue(pool, config, &Message::Bye);
            conn.close_after_flush = true;
        }
        // Server-to-client frames arriving at the server are protocol
        // violations.
        Message::Hello { .. }
        | Message::HelloAck { .. }
        | Message::TraceAck { .. }
        | Message::SubmitAck { .. }
        | Message::Event { .. }
        | Message::Done { .. }
        | Message::CancelAck { .. }
        | Message::FingerprintInfo { .. }
        | Message::DimsInfo { .. }
        | Message::HashInfo { .. }
        | Message::DimsPage { .. }
        | Message::HashPage { .. }
        | Message::StatsInfo(_)
        | Message::StatsInfoV3(_)
        | Message::MetricsInfo { .. }
        | Message::RingChanged { .. }
        | Message::Error { .. } => {
            conn.queue_error(
                pool,
                config,
                ErrorKind::BadRequest,
                "unexpected frame direction",
            );
        }
    }
}

/// The local submit path shared by `Submit` (owned fingerprints) and
/// `SubmitForwarded` (ownership already verified): uploads lookup →
/// service submit → typed ack or refusal.
fn submit_local(
    conn: &mut Conn,
    pool: &mut BufPool,
    shared: &Arc<Shared>,
    fingerprint: Fingerprint,
    priority: Priority,
    deadline_ms: Option<u64>,
    trace_id: Option<u128>,
) {
    let config = &shared.config;
    let Some(trace) = lock(&shared.uploads).get(fingerprint) else {
        conn.queue_error(
            pool,
            config,
            ErrorKind::UnknownFingerprint { fingerprint },
            "upload the trace before submitting it",
        );
        return;
    };
    // The upload cache's Arc is shared into the job: the dedup
    // hot path (many submissions of one profile) never copies
    // the trace.
    let mut request = JobRequest::shared_trace(&conn.tenant, trace).with_priority(priority);
    if let Some(ms) = deadline_ms {
        request = request.with_deadline(Duration::from_millis(ms));
    }
    // A wire-carried id (v4 client mint, or a forwarding peer passing
    // the origin's id through) wins; otherwise the service mints one
    // at admission.
    if let Some(trace_id) = trace_id {
        request = request.with_trace_id(TraceId(trace_id));
    }
    // Load shedding: service backpressure crosses the wire as a
    // typed error frame, never a dropped socket.
    match shared.service.submit(request) {
        Ok(JobId(job)) => {
            conn.jobs.insert(job);
            conn.queue(pool, config, &Message::SubmitAck { job });
        }
        Err(rejected) => {
            conn.queue_error(
                pool,
                config,
                ErrorKind::from_rejected(&rejected),
                rejected.to_string(),
            );
        }
    }
}

/// Begins streaming a proxied job's events: flushes whatever the
/// forwarder already relayed, then marks the entry live so further
/// updates stream straight through.
fn start_forward_watch(conn: &mut Conn, pool: &mut BufPool, config: &NetServerConfig, job: u64) {
    let Some(fwd) = conn.forwarded.get_mut(&job) else {
        return;
    };
    fwd.watching = true;
    let events: Vec<WireEvent> = fwd.events.drain(..).collect();
    let result = fwd.result.take();
    for event in events {
        conn.queue(pool, config, &Message::Event { job, event });
        if conn.overflowed {
            return;
        }
    }
    if let Some(result) = result {
        conn.forwarded.remove(&job);
        conn.queue(pool, config, &Message::Done { job, result });
    }
}

/// Begins streaming a job's events: subscribes with a notify hook that
/// wakes this connection through the reactor, then (only then) checks
/// for an already-terminal result so no terminal event can slip between
/// the check and the subscription.
fn start_watch(conn: &mut Conn, pool: &mut BufPool, shared: &Arc<Shared>, id: JobId) {
    let token = conn.token;
    // The hook captures the WakeHub, not Shared: hooks outlive the watch
    // inside the fanout, and must not pin the service (see WakeHub).
    let hook_wake = Arc::clone(&shared.wake);
    let rx = shared.service.subscribe_notified(
        id,
        Arc::new(move || {
            lock(&hook_wake.watch_wakeups).push(token);
            hook_wake.waker.wake();
        }),
    );
    if let Some(result) = shared.service.result(id) {
        queue_done(conn, pool, &shared.config, id, &result);
        return;
    }
    let Some(rx) = rx else {
        // Evicted or never known; result() above also found nothing.
        conn.queue_error(
            pool,
            &shared.config,
            ErrorKind::UnknownJob { job: id.0 },
            "job expired from the retention window",
        );
        return;
    };
    conn.watch = Some(WatchState { id, rx });
    // The caller's drive loop pumps immediately, catching events (or a
    // terminal result) that landed while we subscribed.
}

/// Drains ready events for an active watch into the write queue and ends
/// the watch with the Done frame once the job is terminal.
fn pump_watch(conn: &mut Conn, pool: &mut BufPool, shared: &Arc<Shared>) {
    let Some(id) = conn.watch.as_ref().map(|w| w.id) else {
        return;
    };
    loop {
        let received = match conn.watch.as_mut() {
            Some(watch) => watch.rx.try_recv(),
            None => return,
        };
        match received {
            Ok(event) => {
                if let Some(wire_event) = wire_event(&event) {
                    let frame = Message::Event {
                        job: id.0,
                        event: wire_event,
                    };
                    conn.queue(pool, &shared.config, &frame);
                    if conn.overflowed {
                        return; // queue() already tore the watch down
                    }
                }
            }
            Err(mpsc::TryRecvError::Empty) => break,
            Err(mpsc::TryRecvError::Disconnected) => {
                // The job's event fan-out is gone: it was evicted from
                // the retention window (or the service stopped). One
                // final result check, then a typed answer either way.
                conn.watch = None;
                match shared.service.result(id) {
                    Some(result) => queue_done(conn, pool, &shared.config, id, &result),
                    None => conn.queue_error(
                        pool,
                        &shared.config,
                        ErrorKind::UnknownJob { job: id.0 },
                        "job expired from the retention window before its result was read",
                    ),
                }
                return;
            }
        }
    }
    // Result is set before the terminal event publishes (same lock), so
    // when the last notify fired this check concludes the watch.
    if let Some(result) = shared.service.result(id) {
        conn.watch = None;
        queue_done(conn, pool, &shared.config, id, &result);
    }
}

fn queue_done(
    conn: &mut Conn,
    pool: &mut BufPool,
    config: &NetServerConfig,
    id: JobId,
    result: &beer_service::JobResult,
) {
    let wire_result: WireResult = match result {
        Ok(output) => Ok(WireOutput {
            outcome: WireOutcome::from_outcome(&output.outcome),
            from_cache: output.from_cache,
            coalesced_into: output.coalesced_into.map(|JobId(j)| j),
        }),
        Err(e) => Err(WireJobError::from_error(e)),
    };
    conn.queue(
        pool,
        config,
        &Message::Done {
            job: id.0,
            result: wire_result,
        },
    );
}

// ---------------------------------------------------------------------------
// Pagination cursors
// ---------------------------------------------------------------------------
//
// A cursor is opaque to the client but self-validating to the server:
// `kind ‖ query params ‖ position ‖ FNV-1a checksum`. Embedding the query
// params binds a cursor to the query that minted it, and the checksum
// turns random or bit-rotted bytes into a typed BadRequest instead of a
// silently wrong page. The position is the registry's stable resume
// point — dims runs are append-only and hash buckets never reorder, so a
// cursor stays valid across compactions and concurrent appends.

const CURSOR_DIMS: u8 = 1;
const CURSOR_HASH: u8 = 2;

fn fnv1a(bytes: &[u8]) -> u32 {
    let mut hash: u32 = 0x811c_9dc5;
    for &b in bytes {
        hash ^= u32::from(b);
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

fn mint_dims_cursor(n: u32, k: u32, (hash, idx): (u64, u32)) -> Vec<u8> {
    let mut c = Vec::with_capacity(25);
    c.push(CURSOR_DIMS);
    c.extend_from_slice(&n.to_be_bytes());
    c.extend_from_slice(&k.to_be_bytes());
    c.extend_from_slice(&hash.to_be_bytes());
    c.extend_from_slice(&idx.to_be_bytes());
    let sum = fnv1a(&c);
    c.extend_from_slice(&sum.to_be_bytes());
    c
}

fn parse_dims_cursor(c: &[u8], n: u32, k: u32) -> Result<(u64, u32), &'static str> {
    if c.len() != 25 {
        return Err("malformed dims cursor");
    }
    if fnv1a(&c[..21]) != u32::from_be_bytes(c[21..25].try_into().unwrap()) {
        return Err("dims cursor checksum mismatch");
    }
    if c[0] != CURSOR_DIMS
        || u32::from_be_bytes(c[1..5].try_into().unwrap()) != n
        || u32::from_be_bytes(c[5..9].try_into().unwrap()) != k
    {
        return Err("cursor does not belong to this query");
    }
    Ok((
        u64::from_be_bytes(c[9..17].try_into().unwrap()),
        u32::from_be_bytes(c[17..21].try_into().unwrap()),
    ))
}

fn mint_hash_cursor(hash: u64, idx: u32) -> Vec<u8> {
    let mut c = Vec::with_capacity(17);
    c.push(CURSOR_HASH);
    c.extend_from_slice(&hash.to_be_bytes());
    c.extend_from_slice(&idx.to_be_bytes());
    let sum = fnv1a(&c);
    c.extend_from_slice(&sum.to_be_bytes());
    c
}

fn parse_hash_cursor(c: &[u8], hash: u64) -> Result<u32, &'static str> {
    if c.len() != 17 {
        return Err("malformed hash cursor");
    }
    if fnv1a(&c[..13]) != u32::from_be_bytes(c[13..17].try_into().unwrap()) {
        return Err("hash cursor checksum mismatch");
    }
    if c[0] != CURSOR_HASH || u64::from_be_bytes(c[1..9].try_into().unwrap()) != hash {
        return Err("cursor does not belong to this query");
    }
    Ok(u32::from_be_bytes(c[9..13].try_into().unwrap()))
}

/// The server-side page size: a client limit of 0 means "server's cap",
/// anything else is clamped to it.
fn page_limit(config: &NetServerConfig, limit: u32) -> usize {
    let cap = config.max_query_entries.max(1);
    if limit == 0 {
        cap
    } else {
        (limit as usize).min(cap)
    }
}

fn wire_entry(entry: &CodeEntry) -> wire::WireCodeEntry {
    wire::WireCodeEntry {
        hash: entry.hash,
        code: entry.code.clone(),
        fingerprints: entry.fingerprints.clone(),
    }
}

/// Maps a service event to its wire twin (session progress flattens to a
/// rendered detail line).
fn wire_event(event: &JobEvent) -> Option<WireEvent> {
    Some(match event {
        JobEvent::Submitted { tenant, .. } => WireEvent::Submitted {
            tenant: tenant.clone(),
        },
        JobEvent::StateChanged { state, .. } => WireEvent::State { state: *state },
        JobEvent::Coalesced { primary, .. } => WireEvent::Coalesced { primary: primary.0 },
        JobEvent::CacheHit { .. } => WireEvent::CacheHit,
        JobEvent::Requeued { .. } => WireEvent::Requeued,
        JobEvent::Progress { event, .. } => WireEvent::Progress {
            detail: format!("{event:?}"),
        },
    })
}
