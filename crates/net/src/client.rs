//! A typed, blocking `beer-wire v1` client.
//!
//! [`Client`] owns one connection and the state needed to survive losing
//! it: every submitted trace is retained by fingerprint, so when the
//! connection drops mid-wait the client reconnects, re-authenticates,
//! re-uploads if the server no longer holds the trace, and re-submits —
//! and the service's fingerprint dedup re-attaches it to the coalesced
//! in-flight job (or the completed result lands as a cache hit) instead
//! of re-solving anything.

use crate::ring::Ring;
use crate::wire::{
    self, read_message, write_message, ErrorKind, Message, RecvError, WireCodeEntry, WireEvent,
    WireRecord, WireResult, WireStats,
};
use beer_core::trace::{Fingerprint, ProfileTrace};
use beer_obs::TraceId;
use beer_service::Priority;
use std::collections::hash_map::RandomState;
use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasher, Hasher};
use std::io;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// Configuration of a [`Client`].
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// Read deadline per response frame.
    pub read_timeout: Duration,
    /// Write deadline per request frame.
    pub write_timeout: Duration,
    /// Frame size cap, enforced before allocation.
    pub max_frame_bytes: usize,
    /// Trace upload chunk size.
    pub chunk_bytes: usize,
    /// Reconnect attempts after a dropped connection (each attempt
    /// re-submits by fingerprint and resumes the coalesced job).
    pub reconnect_attempts: usize,
    /// First-attempt backoff. Attempt `n` waits a jittered exponential
    /// delay in `[e/2, e]` where `e = min(cap, base × 2^(n−1))` — see
    /// [`backoff_delay`]. The jitter spreads a herd of clients resuming
    /// against a restarted node instead of stampeding it.
    pub reconnect_backoff_base: Duration,
    /// Backoff ceiling (the `cap` above).
    pub reconnect_backoff_cap: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            read_timeout: Duration::from_secs(60),
            write_timeout: Duration::from_secs(10),
            max_frame_bytes: wire::DEFAULT_MAX_FRAME_BYTES,
            chunk_bytes: wire::DEFAULT_CHUNK_BYTES,
            reconnect_attempts: 3,
            reconnect_backoff_base: Duration::from_millis(10),
            reconnect_backoff_cap: Duration::from_secs(2),
        }
    }
}

impl ClientConfig {
    /// The default configuration (see the field docs).
    pub fn new() -> Self {
        ClientConfig::default()
    }

    /// Overrides the per-frame read deadline.
    pub fn with_read_timeout(mut self, timeout: Duration) -> Self {
        self.read_timeout = timeout;
        self
    }

    /// Overrides the upload chunk size.
    pub fn with_chunk_bytes(mut self, bytes: usize) -> Self {
        self.chunk_bytes = bytes;
        self
    }

    /// Overrides the reconnect policy: the attempt budget and the
    /// *base* of the jittered exponential backoff (the cap stays).
    pub fn with_reconnect(mut self, attempts: usize, base: Duration) -> Self {
        self.reconnect_attempts = attempts;
        self.reconnect_backoff_base = base;
        self
    }
}

/// The reconnect backoff schedule: attempt `n` (1-based) waits a delay
/// drawn uniformly from `[e/2, e]`, where `e = min(cap, base × 2^(n−1))`.
/// `jitter` is caller-supplied entropy (any u64); the function itself is
/// deterministic, which is what lets tests pin the schedule's bounds.
pub fn backoff_delay(attempt: u32, base: Duration, cap: Duration, jitter: u64) -> Duration {
    let shift = attempt.clamp(1, 32) - 1;
    let exp = base.saturating_mul(1u32 << shift.min(31)).min(cap);
    if exp.is_zero() {
        return exp;
    }
    let exp_ns = u64::try_from(exp.as_nanos()).unwrap_or(u64::MAX);
    let half = exp_ns / 2;
    Duration::from_nanos(half + jitter % (exp_ns - half + 1))
}

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure that reconnection did not cure.
    Io(io::Error),
    /// The peer sent bytes that are not a valid frame.
    Wire(wire::WireError),
    /// The server answered with a typed error frame.
    Refused {
        /// The error kind.
        kind: ErrorKind,
        /// The server's detail message.
        detail: String,
    },
    /// The server answered with a frame the protocol does not allow here.
    Protocol {
        /// What was expected.
        expected: &'static str,
    },
    /// The connection dropped and every reconnect attempt failed.
    Disconnected,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Wire(e) => write!(f, "bad frame from server: {e}"),
            ClientError::Refused { kind, detail } => write!(f, "server refused: {kind} ({detail})"),
            ClientError::Protocol { expected } => {
                write!(f, "protocol violation: expected {expected}")
            }
            ClientError::Disconnected => write!(f, "connection lost and reconnects exhausted"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl ClientError {
    /// True for refusals that are *backpressure* (retry later), as
    /// opposed to permanent errors.
    pub fn is_backpressure(&self) -> bool {
        matches!(
            self,
            ClientError::Refused {
                kind: ErrorKind::QueueFull { .. } | ErrorKind::Busy | ErrorKind::ShuttingDown,
                ..
            }
        )
    }
}

/// A handle to a job submitted over the network. Carries the profile
/// fingerprint so a reconnected client can re-attach to the same work.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RemoteJob {
    /// Server-scoped job id.
    pub id: u64,
    /// The submitted profile's fingerprint (stable across restarts).
    pub fingerprint: Fingerprint,
    /// The priority the job was submitted with — reused when a dropped
    /// connection forces a resume-by-fingerprint.
    pub priority: Priority,
    /// The deadline the job was submitted with. A resume re-applies the
    /// full duration (the clock restarts from the re-submission).
    pub deadline: Option<Duration>,
    /// The trace id the submit carried (v4+ servers only). A resume
    /// re-submits under the same id, so the whole retry chain
    /// correlates in every node's flight recorder.
    pub trace_id: Option<u128>,
}

/// A typed, blocking `beer-wire v1` client (see the module docs).
pub struct Client {
    addr: String,
    tenant: String,
    token: String,
    config: ClientConfig,
    stream: Option<TcpStream>,
    /// Protocol version negotiated by the last Hello.
    version: u16,
    /// Traces submitted through this client, retained for resume.
    traces: HashMap<Fingerprint, Arc<ProfileTrace>>,
    /// The newest cluster ring learned from HelloAck / RingChanged.
    ring: Option<Ring>,
    /// Backoff jitter state (xorshift64), seeded per client.
    rng: u64,
}

impl Client {
    /// Connects and authenticates.
    ///
    /// # Errors
    ///
    /// Transport errors, or a typed [`ClientError::Refused`] for version
    /// or auth failures.
    pub fn connect(
        addr: impl Into<String>,
        tenant: impl Into<String>,
        token: impl Into<String>,
    ) -> Result<Client, ClientError> {
        Client::connect_with(addr, tenant, token, ClientConfig::default())
    }

    /// [`Client::connect`] with an explicit configuration.
    ///
    /// # Errors
    ///
    /// As [`Client::connect`].
    pub fn connect_with(
        addr: impl Into<String>,
        tenant: impl Into<String>,
        token: impl Into<String>,
        config: ClientConfig,
    ) -> Result<Client, ClientError> {
        let addr = addr.into();
        let mut seeder = RandomState::new().build_hasher();
        seeder.write(addr.as_bytes());
        let mut client = Client {
            addr,
            tenant: tenant.into(),
            token: token.into(),
            config,
            stream: None,
            version: 0,
            traces: HashMap::new(),
            ring: None,
            rng: seeder.finish() | 1,
        };
        client.reconnect()?;
        Ok(client)
    }

    /// The protocol version negotiated with the server.
    pub fn version(&self) -> u16 {
        self.version
    }

    /// The tenant this client authenticated as.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// The newest cluster ring this client has learned (from `HelloAck`
    /// or a `RingChanged` push), if the server is a cluster member.
    pub fn ring(&self) -> Option<&Ring> {
        self.ring.as_ref()
    }

    /// Adopts a ring if it is newer than the one held.
    fn adopt_ring(&mut self, ring: Ring) {
        let newer = match &self.ring {
            None => true,
            Some(held) => held.epoch() < ring.epoch(),
        };
        if newer {
            self.ring = Some(ring);
        }
    }

    /// Jittered exponential sleep before reconnect `attempt` (1-based).
    fn backoff(&mut self, attempt: usize) {
        // xorshift64 — cheap, and quality only has to beat "every client
        // sleeping the exact same schedule".
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        std::thread::sleep(backoff_delay(
            attempt.min(u32::MAX as usize) as u32,
            self.config.reconnect_backoff_base,
            self.config.reconnect_backoff_cap,
            self.rng,
        ));
    }

    /// (Re)establishes the connection and redoes the Hello handshake.
    fn reconnect(&mut self) -> Result<(), ClientError> {
        self.stream = None;
        let stream = TcpStream::connect(&self.addr)?;
        let _ = stream.set_nodelay(true);
        stream.set_read_timeout(Some(self.config.read_timeout))?;
        stream.set_write_timeout(Some(self.config.write_timeout))?;
        self.stream = Some(stream);
        let hello = Message::Hello {
            min_version: 1,
            max_version: wire::WIRE_VERSION,
            tenant: self.tenant.clone(),
            token: self.token.clone(),
        };
        match self.roundtrip_raw(&hello)? {
            Message::HelloAck { version, ring, .. } => {
                self.version = version;
                if let Some(ring) = ring {
                    self.adopt_ring(ring);
                }
                Ok(())
            }
            Message::Error { kind, detail } => {
                self.stream = None;
                Err(ClientError::Refused { kind, detail })
            }
            _ => {
                self.stream = None;
                Err(ClientError::Protocol {
                    expected: "HelloAck",
                })
            }
        }
    }

    fn stream(&mut self) -> Result<&mut TcpStream, ClientError> {
        if self.stream.is_none() {
            self.reconnect()?;
        }
        Ok(self.stream.as_mut().expect("just connected"))
    }

    /// Writes one frame, dropping the connection on failure: a partial
    /// write leaves the stream mid-frame, where any later request would
    /// be parsed as garbage by the server.
    fn write_or_drop(&mut self, message: &Message) -> Result<(), ClientError> {
        let stream = self.stream()?;
        if let Err(e) = write_message(stream, message) {
            self.stream = None;
            return Err(ClientError::Io(e));
        }
        Ok(())
    }

    /// Sends a request and reads the next frame, with no reconnection.
    /// Asynchronous `RingChanged` pushes are adopted and skipped — any
    /// frame may be preceded by one on a cluster connection.
    fn roundtrip_raw(&mut self, request: &Message) -> Result<Message, ClientError> {
        let max_frame = self.config.max_frame_bytes;
        self.write_or_drop(request)?;
        loop {
            let stream = self
                .stream
                .as_mut()
                .expect("write_or_drop keeps the stream on success");
            match read_message(stream, max_frame) {
                Ok(Message::RingChanged { ring }) => self.adopt_ring(ring),
                Ok(message) => return Ok(message),
                Err(RecvError::Closed) => {
                    self.stream = None;
                    return Err(ClientError::Disconnected);
                }
                Err(RecvError::Io(e)) => {
                    self.stream = None;
                    return Err(ClientError::Io(e));
                }
                Err(RecvError::Frame(e)) => return Err(ClientError::Wire(e)),
            }
        }
    }

    /// Sends a request and reads the next frame, reconnecting (with the
    /// configured attempts, under jittered exponential backoff) on
    /// transport failure.
    fn roundtrip(&mut self, request: &Message) -> Result<Message, ClientError> {
        let mut attempts = 0;
        loop {
            match self.roundtrip_raw(request) {
                Err(ClientError::Io(_) | ClientError::Disconnected)
                    if attempts < self.config.reconnect_attempts =>
                {
                    attempts += 1;
                    self.backoff(attempts);
                    if self.reconnect().is_err() && attempts >= self.config.reconnect_attempts {
                        return Err(ClientError::Disconnected);
                    }
                }
                other => return other,
            }
        }
    }

    /// Uploads a trace in chunks; the server verifies the fingerprint.
    fn upload(&mut self, trace: &ProfileTrace) -> Result<Fingerprint, ClientError> {
        let (fingerprint, chunks) = trace.to_chunks(self.config.chunk_bytes);
        let total_bytes: u64 = chunks.iter().map(|c| c.len() as u64).sum();
        let begin = Message::TraceBegin {
            fingerprint,
            total_chunks: chunks.len() as u32,
            total_bytes,
        };
        let max_frame = self.config.max_frame_bytes;
        self.write_or_drop(&begin)?;
        let last = chunks.len() - 1;
        for (index, data) in chunks.into_iter().enumerate() {
            let chunk = Message::TraceChunk {
                fingerprint,
                index: index as u32,
                data,
            };
            self.write_or_drop(&chunk)?;
            if index == last {
                // Only the final chunk is acknowledged.
                loop {
                    let stream = self
                        .stream
                        .as_mut()
                        .expect("write_or_drop keeps the stream");
                    match read_message(stream, max_frame) {
                        Ok(Message::TraceAck { fingerprint: fp }) if fp == fingerprint => break,
                        Ok(Message::RingChanged { ring }) => {
                            self.adopt_ring(ring);
                            continue;
                        }
                        Ok(Message::Error { kind, detail }) => {
                            return Err(ClientError::Refused { kind, detail })
                        }
                        Ok(_) => {
                            return Err(ClientError::Protocol {
                                expected: "TraceAck",
                            })
                        }
                        Err(RecvError::Frame(e)) => return Err(ClientError::Wire(e)),
                        Err(RecvError::Closed) => {
                            self.stream = None;
                            return Err(ClientError::Disconnected);
                        }
                        Err(RecvError::Io(e)) => {
                            self.stream = None;
                            return Err(ClientError::Io(e));
                        }
                    }
                }
            }
        }
        Ok(fingerprint)
    }

    /// Submits a trace with default priority and no deadline.
    ///
    /// # Errors
    ///
    /// Typed refusals ([`ClientError::Refused`] mirrors the service's
    /// admission backpressure) and transport failures.
    pub fn submit(&mut self, trace: &ProfileTrace) -> Result<RemoteJob, ClientError> {
        self.submit_with(trace, Priority::Normal, None)
    }

    /// Submits a trace with an explicit priority and optional deadline.
    ///
    /// The trace is uploaded only if the server does not already hold it
    /// (dedup makes re-submission of a known profile a fingerprint-only
    /// exchange), and is retained client-side so a dropped connection can
    /// resume by fingerprint.
    ///
    /// # Errors
    ///
    /// As [`Client::submit`].
    pub fn submit_with(
        &mut self,
        trace: &ProfileTrace,
        priority: Priority,
        deadline: Option<Duration>,
    ) -> Result<RemoteJob, ClientError> {
        let fingerprint = trace.fingerprint();
        self.traces
            .entry(fingerprint)
            .or_insert_with(|| Arc::new(trace.clone()));
        self.submit_fingerprint(fingerprint, priority, deadline, None)
    }

    /// Uploads (and retains) a trace without submitting it. Useful for
    /// pre-staging a trace on a non-owning cluster node — a later
    /// [`Client::submit_with`] there finds the trace present and the
    /// node forwards the job to its owner instead of redirecting.
    ///
    /// # Errors
    ///
    /// Typed refusals and transport failures.
    pub fn upload_trace(&mut self, trace: &ProfileTrace) -> Result<Fingerprint, ClientError> {
        let fingerprint = trace.fingerprint();
        self.traces
            .entry(fingerprint)
            .or_insert_with(|| Arc::new(trace.clone()));
        self.upload(trace)
    }

    /// Submits a trace as an *already-forwarded* cluster job (wire v3's
    /// `SubmitForwarded`): the receiving node must own the fingerprint
    /// and will answer [`ErrorKind::WrongNode`] instead of forwarding
    /// again if it does not — the cluster's loop guard. `epoch` is the
    /// sender's ring epoch. This is the node-to-node path; ordinary
    /// clients want [`Client::submit_with`].
    ///
    /// # Errors
    ///
    /// Typed refusals (including `WrongNode` on a misroute) and
    /// transport failures.
    pub fn submit_forwarded(
        &mut self,
        trace: &ProfileTrace,
        priority: Priority,
        deadline: Option<Duration>,
        epoch: u64,
        trace_id: Option<u128>,
    ) -> Result<RemoteJob, ClientError> {
        let fingerprint = trace.fingerprint();
        self.traces
            .entry(fingerprint)
            .or_insert_with(|| Arc::new(trace.clone()));
        // A v3 receiver has no v4 tags; the id is dropped rather than
        // the submit refused — correlation degrades, forwarding works.
        let trace_id = trace_id.filter(|_| self.version >= 4);
        let submit = Message::SubmitForwarded {
            fingerprint,
            priority,
            deadline_ms: deadline.map(|d| d.as_millis() as u64),
            epoch,
            trace_id,
        };
        let mut uploaded = false;
        loop {
            match self.roundtrip(&submit)? {
                Message::SubmitAck { job } => {
                    return Ok(RemoteJob {
                        id: job,
                        fingerprint,
                        priority,
                        deadline,
                        trace_id,
                    })
                }
                Message::Error {
                    kind: ErrorKind::UnknownFingerprint { .. },
                    ..
                } if !uploaded => {
                    let trace = self
                        .traces
                        .get(&fingerprint)
                        .cloned()
                        .expect("retained just above");
                    self.upload(&trace)?;
                    uploaded = true;
                }
                Message::Error { kind, detail } => {
                    return Err(ClientError::Refused { kind, detail })
                }
                _ => {
                    return Err(ClientError::Protocol {
                        expected: "SubmitAck",
                    })
                }
            }
        }
    }

    /// Submits by fingerprint, uploading the retained trace when the
    /// server asks for it. On a v4 server a missing `trace_id` is
    /// minted here — the submission end of the trace — so the id exists
    /// before the frame leaves this process.
    fn submit_fingerprint(
        &mut self,
        fingerprint: Fingerprint,
        priority: Priority,
        deadline: Option<Duration>,
        trace_id: Option<u128>,
    ) -> Result<RemoteJob, ClientError> {
        let trace_id = match trace_id {
            Some(id) if self.version >= 4 => Some(id),
            None if self.version >= 4 => Some(TraceId::mint().0),
            _ => None,
        };
        let submit = Message::Submit {
            fingerprint,
            priority,
            deadline_ms: deadline.map(|d| d.as_millis() as u64),
            trace_id,
        };
        let mut uploaded = false;
        loop {
            match self.roundtrip(&submit)? {
                Message::SubmitAck { job } => {
                    return Ok(RemoteJob {
                        id: job,
                        fingerprint,
                        priority,
                        deadline,
                        trace_id,
                    })
                }
                Message::Error {
                    kind: ErrorKind::UnknownFingerprint { .. },
                    ..
                } if !uploaded => {
                    let trace =
                        self.traces
                            .get(&fingerprint)
                            .cloned()
                            .ok_or(ClientError::Refused {
                                kind: ErrorKind::UnknownFingerprint { fingerprint },
                                detail: "trace not retained client-side".to_string(),
                            })?;
                    self.upload(&trace)?;
                    uploaded = true;
                }
                Message::Error { kind, detail } => {
                    return Err(ClientError::Refused { kind, detail })
                }
                _ => {
                    return Err(ClientError::Protocol {
                        expected: "SubmitAck",
                    })
                }
            }
        }
    }

    /// Blocks until the job completes, discarding intermediate events.
    ///
    /// # Errors
    ///
    /// As [`Client::wait_with`].
    pub fn wait(&mut self, job: RemoteJob) -> Result<WireResult, ClientError> {
        self.wait_with(job, |_| {})
    }

    /// Blocks until the job completes, delivering every streamed
    /// [`WireEvent`] to `on_event` along the way.
    ///
    /// If the connection drops mid-watch, the client reconnects and
    /// *resumes by fingerprint*: the retained trace is re-submitted, the
    /// service's dedup coalesces it onto the still-running job (or
    /// answers from cache), and the watch continues on the new job id —
    /// no work is re-solved.
    ///
    /// # Errors
    ///
    /// Typed refusals and transport failures after reconnects are
    /// exhausted.
    pub fn wait_with(
        &mut self,
        job: RemoteJob,
        mut on_event: impl FnMut(&WireEvent),
    ) -> Result<WireResult, ClientError> {
        let mut current = job;
        let mut attempts = 0;
        loop {
            let err = match self.watch_once(current, &mut on_event) {
                Ok(result) => return Ok(result),
                Err(e @ (ClientError::Io(_) | ClientError::Disconnected)) => e,
                Err(e) => return Err(e),
            };
            // Resume: reconnect and re-attach to the in-flight work (or
            // its cached result) under a fresh job id — never re-watch
            // the stale id, which the new connection is not authorized
            // for. The original priority and deadline are re-applied.
            loop {
                if attempts >= self.config.reconnect_attempts {
                    return Err(err);
                }
                attempts += 1;
                self.backoff(attempts);
                if self.reconnect().is_err() {
                    continue;
                }
                match self.submit_fingerprint(
                    current.fingerprint,
                    current.priority,
                    current.deadline,
                    current.trace_id,
                ) {
                    Ok(resumed) => {
                        // A successful resume restores the full budget:
                        // attempts are per connection drop, not per wait.
                        current = resumed;
                        attempts = 0;
                        break;
                    }
                    // Transport trouble: burn another attempt.
                    Err(ClientError::Io(_) | ClientError::Disconnected) => continue,
                    // A typed refusal is a real answer, not a flaky link.
                    Err(e) => return Err(e),
                }
            }
        }
    }

    /// One watch attempt on the current connection.
    fn watch_once(
        &mut self,
        job: RemoteJob,
        on_event: &mut impl FnMut(&WireEvent),
    ) -> Result<WireResult, ClientError> {
        let max_frame = self.config.max_frame_bytes;
        self.write_or_drop(&Message::Watch { job: job.id })?;
        loop {
            let stream = self
                .stream
                .as_mut()
                .expect("write_or_drop keeps the stream");
            match read_message(stream, max_frame) {
                Ok(Message::Event { event, .. }) => on_event(&event),
                Ok(Message::RingChanged { ring }) => self.adopt_ring(ring),
                Ok(Message::Done { result, .. }) => return Ok(result),
                Ok(Message::Error { kind, detail }) => {
                    return Err(ClientError::Refused { kind, detail })
                }
                Ok(Message::Bye) => {
                    // Server drain closed the stream mid-watch.
                    self.stream = None;
                    return Err(ClientError::Disconnected);
                }
                Ok(_) => return Err(ClientError::Protocol { expected: "Event" }),
                Err(RecvError::Frame(e)) => return Err(ClientError::Wire(e)),
                Err(RecvError::Closed) => {
                    self.stream = None;
                    return Err(ClientError::Disconnected);
                }
                Err(RecvError::Io(e)) => {
                    self.stream = None;
                    return Err(ClientError::Io(e));
                }
            }
        }
    }

    /// Requests cancellation of a job submitted through this client.
    ///
    /// # Errors
    ///
    /// Typed refusals and transport failures.
    pub fn cancel(&mut self, job: RemoteJob) -> Result<bool, ClientError> {
        match self.roundtrip(&Message::Cancel { job: job.id })? {
            Message::CancelAck { cancelled, .. } => Ok(cancelled),
            Message::Error { kind, detail } => Err(ClientError::Refused { kind, detail }),
            _ => Err(ClientError::Protocol {
                expected: "CancelAck",
            }),
        }
    }

    /// The registry record for a profile fingerprint, if any.
    ///
    /// # Errors
    ///
    /// Typed refusals and transport failures.
    pub fn query_fingerprint(
        &mut self,
        fingerprint: Fingerprint,
    ) -> Result<Option<WireRecord>, ClientError> {
        match self.roundtrip(&Message::QueryFingerprint { fingerprint })? {
            Message::FingerprintInfo { record, .. } => Ok(record),
            Message::Error { kind, detail } => Err(ClientError::Refused { kind, detail }),
            _ => Err(ClientError::Protocol {
                expected: "FingerprintInfo",
            }),
        }
    }

    /// Every registered code with the given dimensions.
    ///
    /// # Errors
    ///
    /// Typed refusals and transport failures.
    pub fn query_dims(&mut self, n: u32, k: u32) -> Result<Vec<WireCodeEntry>, ClientError> {
        match self.roundtrip(&Message::QueryDims { n, k })? {
            Message::DimsInfo { entries } => Ok(entries),
            Message::Error { kind, detail } => Err(ClientError::Refused { kind, detail }),
            _ => Err(ClientError::Protocol {
                expected: "DimsInfo",
            }),
        }
    }

    /// Every registered code with the given canonical hash.
    ///
    /// # Errors
    ///
    /// Typed refusals and transport failures.
    pub fn query_hash(&mut self, hash: u64) -> Result<Vec<WireCodeEntry>, ClientError> {
        match self.roundtrip(&Message::QueryHash { hash })? {
            Message::HashInfo { entries } => Ok(entries),
            Message::Error { kind, detail } => Err(ClientError::Refused { kind, detail }),
            _ => Err(ClientError::Protocol {
                expected: "HashInfo",
            }),
        }
    }

    /// One page of the codes with the given dimensions (protocol v2).
    /// Pass `None` to start, then each answer's `next_cursor` to resume;
    /// `limit` 0 accepts the server's page cap.
    ///
    /// # Errors
    ///
    /// Typed refusals (including [`ErrorKind::BadRequest`] on a v1
    /// server or a stale cursor) and transport failures.
    pub fn query_dims_page(
        &mut self,
        n: u32,
        k: u32,
        cursor: Option<Vec<u8>>,
        limit: u32,
    ) -> Result<(Vec<WireCodeEntry>, Option<Vec<u8>>), ClientError> {
        match self.roundtrip(&Message::QueryDimsPage {
            n,
            k,
            cursor,
            limit,
        })? {
            Message::DimsPage {
                entries,
                next_cursor,
            } => Ok((entries, next_cursor)),
            Message::Error { kind, detail } => Err(ClientError::Refused { kind, detail }),
            _ => Err(ClientError::Protocol {
                expected: "DimsPage",
            }),
        }
    }

    /// One page of the codes with the given canonical hash (protocol
    /// v2). Cursor semantics match [`NetClient::query_dims_page`].
    ///
    /// # Errors
    ///
    /// Typed refusals and transport failures.
    pub fn query_hash_page(
        &mut self,
        hash: u64,
        cursor: Option<Vec<u8>>,
        limit: u32,
    ) -> Result<(Vec<WireCodeEntry>, Option<Vec<u8>>), ClientError> {
        match self.roundtrip(&Message::QueryHashPage {
            hash,
            cursor,
            limit,
        })? {
            Message::HashPage {
                entries,
                next_cursor,
            } => Ok((entries, next_cursor)),
            Message::Error { kind, detail } => Err(ClientError::Refused { kind, detail }),
            _ => Err(ClientError::Protocol {
                expected: "HashPage",
            }),
        }
    }

    /// Every code with the given dimensions, paging to completion on a
    /// v2 server. Against a v1 server this falls back to the single
    /// capped [`NetClient::query_dims`] answer (which may be truncated
    /// at the server's cap — v1 has no way past it).
    ///
    /// # Errors
    ///
    /// Typed refusals and transport failures.
    pub fn query_dims_all(&mut self, n: u32, k: u32) -> Result<Vec<WireCodeEntry>, ClientError> {
        if self.version < 2 {
            return self.query_dims(n, k);
        }
        let mut all = Vec::new();
        let mut cursor = None;
        loop {
            let (mut entries, next) = self.query_dims_page(n, k, cursor, 0)?;
            all.append(&mut entries);
            match next {
                Some(next) => cursor = Some(next),
                None => return Ok(all),
            }
        }
    }

    /// Every code with the given canonical hash, paging to completion on
    /// a v2 server; falls back to the capped [`NetClient::query_hash`]
    /// on v1.
    ///
    /// # Errors
    ///
    /// Typed refusals and transport failures.
    pub fn query_hash_all(&mut self, hash: u64) -> Result<Vec<WireCodeEntry>, ClientError> {
        if self.version < 2 {
            return self.query_hash(hash);
        }
        let mut all = Vec::new();
        let mut cursor = None;
        loop {
            let (mut entries, next) = self.query_hash_page(hash, cursor, 0)?;
            all.append(&mut entries);
            match next {
                Some(next) => cursor = Some(next),
                None => return Ok(all),
            }
        }
    }

    /// A service stats snapshot.
    ///
    /// # Errors
    ///
    /// Typed refusals and transport failures.
    pub fn stats(&mut self) -> Result<WireStats, ClientError> {
        match self.roundtrip(&Message::QueryStats)? {
            Message::StatsInfo(stats) | Message::StatsInfoV3(stats) => Ok(stats),
            Message::Error { kind, detail } => Err(ClientError::Refused { kind, detail }),
            _ => Err(ClientError::Protocol {
                expected: "StatsInfo",
            }),
        }
    }

    /// The node's metrics exposition (v4+): one text block of counters,
    /// gauges, histogram summaries, and the newest `tail`
    /// flight-recorder events.
    ///
    /// # Errors
    ///
    /// [`ClientError::Refused`] with
    /// [`ErrorKind::UnsupportedVersion`] against a pre-v4 server (the
    /// check is client-side — the server has no frame to misread),
    /// plus the usual typed refusals and transport failures.
    pub fn query_metrics(&mut self, tail: u32) -> Result<String, ClientError> {
        if self.version < 4 {
            return Err(ClientError::Refused {
                kind: ErrorKind::UnsupportedVersion {
                    min: wire::WIRE_MIN_VERSION,
                    max: self.version,
                },
                detail: "metrics queries need protocol v4".to_string(),
            });
        }
        match self.roundtrip(&Message::QueryMetrics { tail })? {
            Message::MetricsInfo { text } => Ok(text),
            Message::Error { kind, detail } => Err(ClientError::Refused { kind, detail }),
            _ => Err(ClientError::Protocol {
                expected: "MetricsInfo",
            }),
        }
    }

    /// Closes the connection cleanly.
    pub fn close(mut self) {
        if let Some(stream) = &mut self.stream {
            let _ = write_message(stream, &Message::Bye);
        }
        self.stream = None;
    }
}

#[cfg(test)]
mod tests {
    use super::backoff_delay;
    use std::time::Duration;

    const BASE: Duration = Duration::from_millis(10);
    const CAP: Duration = Duration::from_secs(2);

    #[test]
    fn backoff_schedule_stays_inside_its_bounds() {
        // Attempt n: delay ∈ [e/2, e] with e = min(cap, base × 2^(n−1)).
        for attempt in 1..=16u32 {
            let expected = BASE.saturating_mul(1u32 << (attempt - 1).min(31)).min(CAP);
            for jitter in [0u64, 1, 7, u64::MAX / 3, u64::MAX] {
                let d = backoff_delay(attempt, BASE, CAP, jitter);
                assert!(
                    d >= expected / 2 && d <= expected,
                    "attempt {attempt} jitter {jitter}: {d:?} outside [{:?}, {expected:?}]",
                    expected / 2
                );
            }
        }
    }

    #[test]
    fn backoff_doubles_then_caps() {
        // With jitter pinned at the top of the band the schedule is the
        // pure exponential: 10, 20, 40, … ms, flat at the 2 s cap.
        let full = |attempt| backoff_delay(attempt, BASE, CAP, 0);
        assert_eq!(full(1), Duration::from_millis(5)); // jitter 0 → e/2
        for attempt in 1..=8u32 {
            let this = backoff_delay(attempt, BASE, CAP, u64::MAX);
            let next = backoff_delay(attempt + 1, BASE, CAP, u64::MAX);
            assert!(next >= this, "schedule must be monotone");
        }
        // Attempt 9 of base 10 ms is 2.56 s raw — capped at 2 s. A
        // jitter hitting the top of the band lands exactly on the cap
        // (band [1 s, 2 s] → span 1e9+1 ns, top at jitter 1e9).
        assert_eq!(backoff_delay(9, BASE, CAP, 1_000_000_000), CAP);
        for attempt in [9u32, 32, u32::MAX] {
            for jitter in [0u64, 123_456_789, u64::MAX] {
                let d = backoff_delay(attempt, BASE, CAP, jitter);
                assert!(d >= CAP / 2 && d <= CAP, "capped band violated: {d:?}");
            }
        }
    }

    #[test]
    fn backoff_handles_degenerate_configs() {
        assert_eq!(backoff_delay(3, Duration::ZERO, CAP, 99), Duration::ZERO);
        // Base over cap clamps to cap.
        let d = backoff_delay(1, Duration::from_secs(10), CAP, 7);
        assert!(d <= CAP && d >= CAP / 2);
    }
}
