//! `beer-wire v1`: the versioned, length-prefixed binary wire format.
//!
//! Every frame is `u32 length (big-endian) ‖ u8 tag ‖ payload`. The
//! length counts the tag and payload, and a receiver caps it *before*
//! allocating — an oversized declaration is a typed
//! [`WireError::FrameTooLarge`], never an allocation. Decoding is total:
//! truncated, trailing, corrupt, and unknown-future-tag bodies all map to
//! typed [`WireError`]s, mirroring the style of
//! [`TraceParseError::UnsupportedVersion`](beer_core::trace::TraceParseError).
//!
//! The format is hand-rolled over `std` only (this workspace vendors no
//! serde); integers are big-endian, strings are `u32 length ‖ UTF-8
//! bytes`, options are a `u8` presence flag, and ECC codes travel as
//! their bit-packed parity submatrix. See `DESIGN.md` §"The wire
//! protocol" for the full frame grammar and the error mapping table.

use crate::ring::{Ring, RingMember};
use beer_core::recovery::BudgetReason;
use beer_core::trace::Fingerprint;
use beer_ecc::LinearCode;
use beer_gf2::{BitMatrix, BitVec};
use beer_service::{JobState, Priority, Rejected, ServiceStats};
use std::fmt;
use std::io::{self, Read, Write};

/// The protocol version this build speaks. v2 adds cursor-paginated
/// registry queries (tags 23–26); v1 peers still get the capped,
/// possibly-truncated [`Message::DimsInfo`]/[`Message::HashInfo`] answers.
/// v3 adds the cluster surface: [`Message::HelloAck`] carries the hash
/// ring, [`Message::RingChanged`] pushes membership changes,
/// [`Message::SubmitForwarded`] is the loop-guarded node-to-node submit,
/// [`Message::StatsInfoV3`] grows the stats answer, and
/// [`ErrorKind::WrongNode`] is the typed stale-routing redirect.
/// v4 adds the observability surface: [`Message::Submit`] and
/// [`Message::SubmitForwarded`] may carry a 128-bit trace id (new tags
/// 30/31; the legacy tags still encode the id-less form, so v3 byte
/// streams are unchanged), and
/// [`Message::QueryMetrics`]/[`Message::MetricsInfo`] fetch a node's
/// text metrics exposition.
pub const WIRE_VERSION: u16 = 4;
/// The oldest protocol version this build still accepts.
pub const WIRE_MIN_VERSION: u16 = 1;
/// Magic bytes opening every [`Message::Hello`] payload.
pub const WIRE_MAGIC: [u8; 4] = *b"BEER";
/// Default per-frame size cap. Large traces cross the wire as
/// [`Message::TraceChunk`]s well under this, so a frame this large is a
/// protocol violation, not a workload.
pub const DEFAULT_MAX_FRAME_BYTES: usize = 4 << 20;
/// Default chunk size for trace uploads — comfortably under any frame cap.
pub const DEFAULT_CHUNK_BYTES: usize = 64 << 10;

/// A typed failure decoding a frame. Decoding never panics: every way a
/// frame can be wrong has a variant here.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The body ended before its fields did.
    Truncated,
    /// The body continued past its last field.
    TrailingBytes {
        /// Unconsumed bytes.
        extra: usize,
    },
    /// The length prefix declares a frame over the receiver's cap —
    /// refused before any allocation.
    FrameTooLarge {
        /// Declared length.
        len: u64,
        /// The receiver's cap.
        limit: u64,
    },
    /// A tag this protocol version does not define — likely a frame from
    /// a newer peer. The body is not interpreted at all.
    UnknownTag {
        /// The tag as found.
        tag: u8,
    },
    /// A Hello frame not opening with [`WIRE_MAGIC`] — the peer is not
    /// speaking beer-wire.
    BadMagic,
    /// A string field holding invalid UTF-8.
    BadUtf8,
    /// A field holding a value outside its domain (bad enum
    /// discriminant, non-boolean flag, unbuildable code matrix, …).
    BadValue {
        /// Which field.
        what: &'static str,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame truncated mid-field"),
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after the last field")
            }
            WireError::FrameTooLarge { len, limit } => {
                write!(f, "declared frame length {len} over the cap of {limit}")
            }
            WireError::UnknownTag { tag } => write!(
                f,
                "unknown frame tag {tag:#04x} (this build speaks beer-wire v{WIRE_VERSION})"
            ),
            WireError::BadMagic => write!(f, "hello does not open with the beer-wire magic"),
            WireError::BadUtf8 => write!(f, "string field is not UTF-8"),
            WireError::BadValue { what } => write!(f, "field {what:?} holds an invalid value"),
        }
    }
}

impl std::error::Error for WireError {}

/// Why reading the next message from a stream failed.
#[derive(Debug)]
pub enum RecvError {
    /// The peer closed the stream cleanly at a frame boundary.
    Closed,
    /// Transport failure (including read timeouts).
    Io(io::Error),
    /// The bytes arrived but are not a valid frame.
    Frame(WireError),
}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvError::Closed => write!(f, "connection closed"),
            RecvError::Io(e) => write!(f, "transport error: {e}"),
            RecvError::Frame(e) => write!(f, "bad frame: {e}"),
        }
    }
}

impl std::error::Error for RecvError {}

// ---------------------------------------------------------------------------
// Primitive encode/decode
// ---------------------------------------------------------------------------

struct Writer<'a>(&'a mut Vec<u8>);

impl Writer<'_> {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_be_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_be_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_be_bytes());
    }
    fn u128(&mut self, v: u128) {
        self.0.extend_from_slice(&v.to_be_bytes());
    }
    fn boolean(&mut self, v: bool) {
        self.u8(u8::from(v));
    }
    fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.0.extend_from_slice(v);
    }
    fn string(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
    fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.u8(0),
            Some(v) => {
                self.u8(1);
                self.u64(v);
            }
        }
    }
    fn opt_bytes(&mut self, v: Option<&[u8]>) {
        match v {
            None => self.u8(0),
            Some(v) => {
                self.u8(1);
                self.bytes(v);
            }
        }
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn u128(&mut self) -> Result<u128, WireError> {
        Ok(u128::from_be_bytes(self.take(16)?.try_into().unwrap()))
    }

    fn boolean(&mut self, what: &'static str) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::BadValue { what }),
        }
    }

    /// A length-prefixed byte field. The declared length is checked
    /// against the *remaining frame bytes* before any allocation, so a
    /// lying prefix cannot trigger an allocation bomb.
    fn bytes(&mut self) -> Result<Vec<u8>, WireError> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    fn string(&mut self) -> Result<String, WireError> {
        String::from_utf8(self.bytes()?).map_err(|_| WireError::BadUtf8)
    }

    fn opt_u64(&mut self, what: &'static str) -> Result<Option<u64>, WireError> {
        Ok(if self.boolean(what)? {
            Some(self.u64()?)
        } else {
            None
        })
    }

    fn opt_bytes(&mut self, what: &'static str) -> Result<Option<Vec<u8>>, WireError> {
        Ok(if self.boolean(what)? {
            Some(self.bytes()?)
        } else {
            None
        })
    }

    fn finish(self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes {
                extra: self.buf.len() - self.pos,
            })
        }
    }
}

// ---------------------------------------------------------------------------
// Domain sub-encodings
// ---------------------------------------------------------------------------

fn put_priority(w: &mut Writer<'_>, p: Priority) {
    w.u8(match p {
        Priority::Low => 0,
        Priority::Normal => 1,
        Priority::High => 2,
    });
}

fn get_priority(r: &mut Reader) -> Result<Priority, WireError> {
    Ok(match r.u8()? {
        0 => Priority::Low,
        1 => Priority::Normal,
        2 => Priority::High,
        _ => return Err(WireError::BadValue { what: "priority" }),
    })
}

fn put_job_state(w: &mut Writer<'_>, s: JobState) {
    w.u8(match s {
        JobState::Queued => 0,
        JobState::Running => 1,
        JobState::Done => 2,
        JobState::Failed => 3,
        JobState::Cancelled => 4,
    });
}

fn get_job_state(r: &mut Reader) -> Result<JobState, WireError> {
    Ok(match r.u8()? {
        0 => JobState::Queued,
        1 => JobState::Running,
        2 => JobState::Done,
        3 => JobState::Failed,
        4 => JobState::Cancelled,
        _ => return Err(WireError::BadValue { what: "job state" }),
    })
}

fn put_budget_reason(w: &mut Writer<'_>, reason: BudgetReason) {
    w.u8(match reason {
        BudgetReason::Deadline => 0,
        BudgetReason::Cancelled => 1,
        BudgetReason::MaxFacts => 2,
        BudgetReason::MaxPatterns => 3,
    });
}

fn get_budget_reason(r: &mut Reader) -> Result<BudgetReason, WireError> {
    Ok(match r.u8()? {
        0 => BudgetReason::Deadline,
        1 => BudgetReason::Cancelled,
        2 => BudgetReason::MaxFacts,
        3 => BudgetReason::MaxPatterns,
        _ => {
            return Err(WireError::BadValue {
                what: "budget reason",
            })
        }
    })
}

/// A linear code travels as its parity submatrix: `u16 parity rows ‖ u32
/// k ‖ rows`, each row `⌈k/8⌉` bit-packed bytes (bit `j` at weight
/// `1 << (j % 8)` of byte `j / 8`, padding bits zero).
fn put_code(w: &mut Writer<'_>, code: &LinearCode) {
    let p = code.parity_submatrix();
    w.u16(p.rows() as u16);
    w.u32(p.cols() as u32);
    for row in p.iter_rows() {
        let mut bytes = vec![0u8; p.cols().div_ceil(8)];
        for j in 0..p.cols() {
            if row.get(j) {
                bytes[j / 8] |= 1 << (j % 8);
            }
        }
        w.0.extend_from_slice(&bytes);
    }
}

fn get_code(r: &mut Reader) -> Result<LinearCode, WireError> {
    let rows = r.u16()? as usize;
    let k = r.u32()? as usize;
    if rows == 0 || k == 0 {
        return Err(WireError::BadValue {
            what: "code dimensions",
        });
    }
    let row_bytes = k.div_ceil(8);
    let mut parity_rows = Vec::with_capacity(rows);
    for _ in 0..rows {
        let bytes = r.take(row_bytes)?;
        let mut row = BitVec::zeros(k);
        for j in 0..k {
            if bytes[j / 8] & (1 << (j % 8)) != 0 {
                row.set(j, true);
            }
        }
        // Padding bits past k must be zero — a nonzero pad is corruption.
        for (i, &b) in bytes.iter().enumerate() {
            for bit in 0..8 {
                if i * 8 + bit >= k && b & (1 << bit) != 0 {
                    return Err(WireError::BadValue {
                        what: "code row padding",
                    });
                }
            }
        }
        parity_rows.push(row);
    }
    LinearCode::from_parity_submatrix(BitMatrix::from_rows(&parity_rows)).map_err(|_| {
        WireError::BadValue {
            what: "parity submatrix",
        }
    })
}

/// The summary of a job's recovery outcome, as it travels on the wire —
/// the network twin of [`beer_service::CodeOutcome`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireOutcome {
    /// Exactly one ECC function is consistent: its canonical form.
    Unique(LinearCode),
    /// Several functions remain consistent.
    Ambiguous {
        /// Witnesses found.
        count: u64,
        /// True if enumeration stopped at the solver's cap.
        truncated: bool,
    },
    /// No function is consistent with the evidence.
    Inconsistent,
    /// A service-side budget ended the schedule early.
    BudgetExhausted {
        /// Which budget fired.
        reason: BudgetReason,
    },
}

impl WireOutcome {
    /// Converts the service's outcome for the wire.
    pub fn from_outcome(outcome: &beer_service::CodeOutcome) -> WireOutcome {
        use beer_service::CodeOutcome;
        match outcome {
            CodeOutcome::Unique(code) => WireOutcome::Unique(code.clone()),
            CodeOutcome::Ambiguous { count, truncated } => WireOutcome::Ambiguous {
                count: *count as u64,
                truncated: *truncated,
            },
            CodeOutcome::Inconsistent => WireOutcome::Inconsistent,
            CodeOutcome::BudgetExhausted { reason } => {
                WireOutcome::BudgetExhausted { reason: *reason }
            }
        }
    }

    /// The recovered canonical code, if unique.
    pub fn unique_code(&self) -> Option<&LinearCode> {
        match self {
            WireOutcome::Unique(code) => Some(code),
            _ => None,
        }
    }
}

fn put_outcome(w: &mut Writer<'_>, outcome: &WireOutcome) {
    match outcome {
        WireOutcome::Unique(code) => {
            w.u8(0);
            put_code(w, code);
        }
        WireOutcome::Ambiguous { count, truncated } => {
            w.u8(1);
            w.u64(*count);
            w.boolean(*truncated);
        }
        WireOutcome::Inconsistent => w.u8(2),
        WireOutcome::BudgetExhausted { reason } => {
            w.u8(3);
            put_budget_reason(w, *reason);
        }
    }
}

fn get_outcome(r: &mut Reader) -> Result<WireOutcome, WireError> {
    Ok(match r.u8()? {
        0 => WireOutcome::Unique(get_code(r)?),
        1 => WireOutcome::Ambiguous {
            count: r.u64()?,
            truncated: r.boolean("ambiguous truncated")?,
        },
        2 => WireOutcome::Inconsistent,
        3 => WireOutcome::BudgetExhausted {
            reason: get_budget_reason(r)?,
        },
        _ => return Err(WireError::BadValue { what: "outcome" }),
    })
}

/// Why a job failed, as it travels on the wire. Structured causes
/// flatten to their rendered message — the remote caller cannot retry a
/// solver internals anyway.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireJobError {
    /// The recovery session failed (message preserved).
    Recovery {
        /// The rendered session error.
        message: String,
    },
    /// The job's deadline expired.
    DeadlineExpired,
    /// The job was cancelled.
    Cancelled,
    /// The service shut down before the job ran.
    ShutDown,
    /// The job id is unknown to the service.
    Unknown,
}

impl WireJobError {
    /// Converts the service's job error for the wire.
    pub fn from_error(e: &beer_service::JobError) -> WireJobError {
        use beer_service::JobError;
        match e {
            JobError::Recovery(e) => WireJobError::Recovery {
                message: e.to_string(),
            },
            JobError::DeadlineExpired => WireJobError::DeadlineExpired,
            JobError::Cancelled => WireJobError::Cancelled,
            JobError::ShutDown => WireJobError::ShutDown,
            JobError::Unknown => WireJobError::Unknown,
        }
    }
}

impl fmt::Display for WireJobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireJobError::Recovery { message } => write!(f, "recovery failed: {message}"),
            WireJobError::DeadlineExpired => write!(f, "deadline expired"),
            WireJobError::Cancelled => write!(f, "cancelled"),
            WireJobError::ShutDown => write!(f, "service shut down before the job ran"),
            WireJobError::Unknown => write!(f, "unknown job id"),
        }
    }
}

impl std::error::Error for WireJobError {}

fn put_job_error(w: &mut Writer<'_>, e: &WireJobError) {
    match e {
        WireJobError::Recovery { message } => {
            w.u8(0);
            w.string(message);
        }
        WireJobError::DeadlineExpired => w.u8(1),
        WireJobError::Cancelled => w.u8(2),
        WireJobError::ShutDown => w.u8(3),
        WireJobError::Unknown => w.u8(4),
    }
}

fn get_job_error(r: &mut Reader) -> Result<WireJobError, WireError> {
    Ok(match r.u8()? {
        0 => WireJobError::Recovery {
            message: r.string()?,
        },
        1 => WireJobError::DeadlineExpired,
        2 => WireJobError::Cancelled,
        3 => WireJobError::ShutDown,
        4 => WireJobError::Unknown,
        _ => return Err(WireError::BadValue { what: "job error" }),
    })
}

/// A completed job's product on the wire — the network twin of
/// [`beer_service::JobOutput`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireOutput {
    /// The recovery outcome summary.
    pub outcome: WireOutcome,
    /// True if served from the persistent registry without solving.
    pub from_cache: bool,
    /// Set if the job coalesced onto another in-flight job.
    pub coalesced_into: Option<u64>,
}

/// How a remote job ended.
pub type WireResult = Result<WireOutput, WireJobError>;

fn put_result(w: &mut Writer<'_>, result: &WireResult) {
    match result {
        Ok(output) => {
            w.u8(0);
            put_outcome(w, &output.outcome);
            w.boolean(output.from_cache);
            w.opt_u64(output.coalesced_into);
        }
        Err(e) => {
            w.u8(1);
            put_job_error(w, e);
        }
    }
}

fn get_result(r: &mut Reader) -> Result<WireResult, WireError> {
    Ok(match r.u8()? {
        0 => Ok(WireOutput {
            outcome: get_outcome(r)?,
            from_cache: r.boolean("from_cache")?,
            coalesced_into: r.opt_u64("coalesced_into")?,
        }),
        1 => Err(get_job_error(r)?),
        _ => return Err(WireError::BadValue { what: "result" }),
    })
}

/// A job lifecycle event on the wire — the network twin of
/// [`beer_service::JobEvent`]. Session progress events flatten to a
/// rendered detail string (their numeric payloads are service-internal).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireEvent {
    /// The job was admitted under the given tenant.
    Submitted {
        /// The tenant.
        tenant: String,
    },
    /// The job entered a new lifecycle state.
    State {
        /// The new state.
        state: JobState,
    },
    /// The job coalesced onto an in-flight job with the same fingerprint.
    Coalesced {
        /// The primary job.
        primary: u64,
    },
    /// The job was answered from the registry cache.
    CacheHit,
    /// The job was promoted back into the queue after its primary was
    /// cancelled.
    Requeued,
    /// A progress event from the job's recovery session.
    Progress {
        /// Rendered description of the session event.
        detail: String,
    },
}

fn put_event(w: &mut Writer<'_>, event: &WireEvent) {
    match event {
        WireEvent::Submitted { tenant } => {
            w.u8(0);
            w.string(tenant);
        }
        WireEvent::State { state } => {
            w.u8(1);
            put_job_state(w, *state);
        }
        WireEvent::Coalesced { primary } => {
            w.u8(2);
            w.u64(*primary);
        }
        WireEvent::CacheHit => w.u8(3),
        WireEvent::Requeued => w.u8(4),
        WireEvent::Progress { detail } => {
            w.u8(5);
            w.string(detail);
        }
    }
}

fn get_event(r: &mut Reader) -> Result<WireEvent, WireError> {
    Ok(match r.u8()? {
        0 => WireEvent::Submitted {
            tenant: r.string()?,
        },
        1 => WireEvent::State {
            state: get_job_state(r)?,
        },
        2 => WireEvent::Coalesced { primary: r.u64()? },
        3 => WireEvent::CacheHit,
        4 => WireEvent::Requeued,
        5 => WireEvent::Progress {
            detail: r.string()?,
        },
        _ => return Err(WireError::BadValue { what: "event" }),
    })
}

/// One registry code entry on the wire.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireCodeEntry {
    /// The code's canonical hash.
    pub hash: u64,
    /// The canonical representative.
    pub code: LinearCode,
    /// Every profile fingerprint that recovered this function.
    pub fingerprints: Vec<Fingerprint>,
}

fn put_code_entry(w: &mut Writer<'_>, entry: &WireCodeEntry) {
    w.u64(entry.hash);
    put_code(w, &entry.code);
    w.u32(entry.fingerprints.len() as u32);
    for fp in &entry.fingerprints {
        w.u128(fp.0);
    }
}

fn get_code_entry(r: &mut Reader) -> Result<WireCodeEntry, WireError> {
    let hash = r.u64()?;
    let code = get_code(r)?;
    let count = r.u32()? as usize;
    // 16 bytes each: bound the declared count by the remaining frame.
    if count.saturating_mul(16) > r.buf.len() - r.pos {
        return Err(WireError::Truncated);
    }
    let mut fingerprints = Vec::with_capacity(count);
    for _ in 0..count {
        fingerprints.push(Fingerprint(r.u128()?));
    }
    Ok(WireCodeEntry {
        hash,
        code,
        fingerprints,
    })
}

fn put_code_entries(w: &mut Writer<'_>, entries: &[WireCodeEntry]) {
    w.u32(entries.len() as u32);
    for entry in entries {
        put_code_entry(w, entry);
    }
}

fn get_code_entries(r: &mut Reader) -> Result<Vec<WireCodeEntry>, WireError> {
    let count = r.u32()? as usize;
    // Each entry is at least 14 bytes; refuse a count the frame cannot hold.
    if count.saturating_mul(14) > r.buf.len() - r.pos {
        return Err(WireError::Truncated);
    }
    (0..count).map(|_| get_code_entry(r)).collect()
}

/// A ring travels as `u64 epoch ‖ u32 vnodes ‖ u32 member count ‖
/// members`, each member `string name ‖ string addr`, members in strict
/// ascending name order (the ring's canonical order — a frame listing
/// them any other way is corrupt, which keeps the encoding bijective).
fn put_ring(w: &mut Writer<'_>, ring: &Ring) {
    w.u64(ring.epoch());
    w.u32(ring.vnodes());
    w.u32(ring.members().len() as u32);
    for member in ring.members() {
        w.string(&member.name);
        w.string(&member.addr);
    }
}

fn get_ring(r: &mut Reader) -> Result<Ring, WireError> {
    let epoch = r.u64()?;
    let vnodes = r.u32()?;
    let count = r.u32()? as usize;
    // Each member is at least 10 bytes (two length prefixes + one byte
    // of name and of addr); refuse a count the frame cannot hold.
    if count.saturating_mul(10) > r.buf.len() - r.pos {
        return Err(WireError::Truncated);
    }
    let mut members = Vec::with_capacity(count);
    for _ in 0..count {
        let name = r.string()?;
        let addr = r.string()?;
        if let Some(RingMember { name: prev, .. }) = members.last() {
            if prev >= &name {
                return Err(WireError::BadValue {
                    what: "ring member order",
                });
            }
        }
        members.push(RingMember { name, addr });
    }
    Ring::new(epoch, vnodes, members).map_err(|_| WireError::BadValue { what: "ring" })
}

/// A completed job's registry record on the wire.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireRecord {
    /// The tenant that completed the profile.
    pub tenant: String,
    /// The recorded outcome.
    pub outcome: WireOutcome,
}

/// A [`beer_service::ServiceStats`] snapshot on the wire.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Jobs admitted.
    pub submitted: u64,
    /// Jobs that ended `Done`.
    pub completed: u64,
    /// Jobs that ended `Failed`.
    pub failed: u64,
    /// Jobs that ended `Cancelled`.
    pub cancelled: u64,
    /// Submissions answered from the registry cache.
    pub cache_hits: u64,
    /// Submissions absorbed by an in-flight duplicate.
    pub coalesced: u64,
    /// Waiters promoted after a cancelled primary.
    pub requeued: u64,
    /// Jobs currently queued.
    pub queued: u64,
    /// Jobs currently running.
    pub running: u64,
    /// `QueueFull` rejections.
    pub rejected_queue_full: u64,
    /// `TooLarge` rejections.
    pub rejected_too_large: u64,
    /// `InvalidTenant` rejections.
    pub rejected_invalid_tenant: u64,
    /// `Unschedulable` rejections.
    pub rejected_unschedulable: u64,
    /// `ShuttingDown` rejections.
    pub rejected_shutting_down: u64,
    /// Query answers truncated at the entry cap (v3+; zero from older
    /// servers).
    pub truncated_answers: u64,
    /// Live registry log segments (v3+).
    pub registry_segments: u64,
    /// Live registry snapshots (v3+).
    pub registry_snapshots: u64,
    /// Registry compactions completed (v3+).
    pub registry_compactions: u64,
    /// Registry compactions failed (v3+).
    pub registry_compaction_failures: u64,
    /// Submissions proxied to their owning cluster node (v3+).
    pub forwarded_jobs: u64,
    /// Forwarding attempts that failed (v3+).
    pub forward_errors: u64,
}

impl From<ServiceStats> for WireStats {
    fn from(s: ServiceStats) -> Self {
        WireStats {
            submitted: s.submitted,
            completed: s.completed,
            failed: s.failed,
            cancelled: s.cancelled,
            cache_hits: s.cache_hits,
            coalesced: s.coalesced,
            requeued: s.requeued,
            queued: s.queued as u64,
            running: s.running as u64,
            rejected_queue_full: s.rejected.queue_full,
            rejected_too_large: s.rejected.too_large,
            rejected_invalid_tenant: s.rejected.invalid_tenant,
            rejected_unschedulable: s.rejected.unschedulable,
            rejected_shutting_down: s.rejected.shutting_down,
            truncated_answers: s.truncated_answers,
            registry_segments: s.registry_segments as u64,
            registry_snapshots: s.registry_snapshots as u64,
            registry_compactions: s.registry_compactions,
            registry_compaction_failures: s.registry_compaction_failures,
            forwarded_jobs: s.forwarded_jobs,
            forward_errors: s.forward_errors,
        }
    }
}

fn put_stats(w: &mut Writer<'_>, s: &WireStats) {
    for v in [
        s.submitted,
        s.completed,
        s.failed,
        s.cancelled,
        s.cache_hits,
        s.coalesced,
        s.requeued,
        s.queued,
        s.running,
        s.rejected_queue_full,
        s.rejected_too_large,
        s.rejected_invalid_tenant,
        s.rejected_unschedulable,
        s.rejected_shutting_down,
    ] {
        w.u64(v);
    }
}

fn get_stats(r: &mut Reader) -> Result<WireStats, WireError> {
    Ok(WireStats {
        submitted: r.u64()?,
        completed: r.u64()?,
        failed: r.u64()?,
        cancelled: r.u64()?,
        cache_hits: r.u64()?,
        coalesced: r.u64()?,
        requeued: r.u64()?,
        queued: r.u64()?,
        running: r.u64()?,
        rejected_queue_full: r.u64()?,
        rejected_too_large: r.u64()?,
        rejected_invalid_tenant: r.u64()?,
        rejected_unschedulable: r.u64()?,
        rejected_shutting_down: r.u64()?,
        ..WireStats::default()
    })
}

/// The v3 stats payload: the legacy 14 words followed by the registry
/// and forwarding gauges. A *new* tag rather than trailing fields on
/// [`Message::StatsInfo`], because the encoding must stay a pure
/// function of the message and every legacy frame must keep rejecting
/// trailing bytes.
fn put_stats_v3(w: &mut Writer<'_>, s: &WireStats) {
    put_stats(w, s);
    for v in [
        s.truncated_answers,
        s.registry_segments,
        s.registry_snapshots,
        s.registry_compactions,
        s.registry_compaction_failures,
        s.forwarded_jobs,
        s.forward_errors,
    ] {
        w.u64(v);
    }
}

fn get_stats_v3(r: &mut Reader) -> Result<WireStats, WireError> {
    let mut stats = get_stats(r)?;
    stats.truncated_answers = r.u64()?;
    stats.registry_segments = r.u64()?;
    stats.registry_snapshots = r.u64()?;
    stats.registry_compactions = r.u64()?;
    stats.registry_compaction_failures = r.u64()?;
    stats.forwarded_jobs = r.u64()?;
    stats.forward_errors = r.u64()?;
    Ok(stats)
}

/// The kind of a typed [`Message::Error`] frame. The first five mirror
/// [`beer_service::Rejected`] exactly (the load-shedding map: queue
/// backpressure becomes a wire error, never a dropped socket); the rest
/// are protocol-level refusals.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ErrorKind {
    /// The service queue is at capacity; retry later.
    QueueFull {
        /// The configured capacity.
        capacity: u64,
    },
    /// The job exceeds the service's size ceiling.
    TooLarge {
        /// Patterns the job would collect.
        patterns: u64,
        /// The configured limit.
        limit: u64,
    },
    /// The tenant is unknown or unusable.
    InvalidTenant,
    /// The service's schedule cannot be resolved for this dataword length.
    Unschedulable {
        /// The dataword length.
        k: u64,
    },
    /// The service is draining; no new submissions.
    ShuttingDown,
    /// Version negotiation failed; the server speaks `[min, max]`.
    UnsupportedVersion {
        /// Oldest version the server speaks.
        min: u16,
        /// Newest version the server speaks.
        max: u16,
    },
    /// The tenant/token pair was refused.
    AuthFailed,
    /// A submit named a fingerprint this server holds no upload for —
    /// upload the trace (again) first.
    UnknownFingerprint {
        /// The fingerprint as submitted.
        fingerprint: Fingerprint,
    },
    /// The job id is not one this connection may touch.
    UnknownJob {
        /// The job id as sent.
        job: u64,
    },
    /// A trace chunk was refused (detail carries the `ChunkError`).
    BadChunk,
    /// The connection limit is reached; retry later.
    Busy,
    /// The frame sequence violates the protocol (e.g. no Hello first).
    BadRequest,
    /// (v3+) This node does not own the submitted fingerprint under the
    /// current ring — resubmit to `owner`. Sent to ring-aware peers
    /// routing on a stale epoch, and to a peer whose already-forwarded
    /// submit landed on a non-owner (the loop guard: a forwarded job is
    /// never forwarded again).
    WrongNode {
        /// `host:port` of the owning node.
        owner: String,
    },
}

impl ErrorKind {
    /// The wire mapping of a service rejection.
    pub fn from_rejected(r: &Rejected) -> ErrorKind {
        match r {
            Rejected::QueueFull { capacity } => ErrorKind::QueueFull {
                capacity: *capacity as u64,
            },
            Rejected::TooLarge { patterns, limit } => ErrorKind::TooLarge {
                patterns: *patterns as u64,
                limit: *limit as u64,
            },
            Rejected::InvalidTenant { .. } => ErrorKind::InvalidTenant,
            Rejected::Unschedulable { k } => ErrorKind::Unschedulable { k: *k as u64 },
            Rejected::ShuttingDown => ErrorKind::ShuttingDown,
        }
    }
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ErrorKind::QueueFull { capacity } => {
                write!(f, "queue full ({capacity} jobs)")
            }
            ErrorKind::TooLarge { patterns, limit } => {
                write!(f, "job too large ({patterns} patterns, limit {limit})")
            }
            ErrorKind::InvalidTenant => write!(f, "invalid tenant"),
            ErrorKind::Unschedulable { k } => write!(f, "unschedulable for k = {k}"),
            ErrorKind::ShuttingDown => write!(f, "server shutting down"),
            ErrorKind::UnsupportedVersion { min, max } => {
                write!(
                    f,
                    "unsupported protocol version (server speaks {min}..={max})"
                )
            }
            ErrorKind::AuthFailed => write!(f, "authentication failed"),
            ErrorKind::UnknownFingerprint { fingerprint } => {
                write!(f, "no uploaded trace for fingerprint {fingerprint}")
            }
            ErrorKind::UnknownJob { job } => write!(f, "unknown job {job}"),
            ErrorKind::BadChunk => write!(f, "trace chunk refused"),
            ErrorKind::Busy => write!(f, "connection limit reached"),
            ErrorKind::BadRequest => write!(f, "protocol violation"),
            ErrorKind::WrongNode { owner } => {
                write!(f, "wrong node: the fingerprint is owned by {owner}")
            }
        }
    }
}

fn put_error_kind(w: &mut Writer<'_>, kind: &ErrorKind) {
    match kind {
        ErrorKind::QueueFull { capacity } => {
            w.u8(0);
            w.u64(*capacity);
        }
        ErrorKind::TooLarge { patterns, limit } => {
            w.u8(1);
            w.u64(*patterns);
            w.u64(*limit);
        }
        ErrorKind::InvalidTenant => w.u8(2),
        ErrorKind::Unschedulable { k } => {
            w.u8(3);
            w.u64(*k);
        }
        ErrorKind::ShuttingDown => w.u8(4),
        ErrorKind::UnsupportedVersion { min, max } => {
            w.u8(5);
            w.u16(*min);
            w.u16(*max);
        }
        ErrorKind::AuthFailed => w.u8(6),
        ErrorKind::UnknownFingerprint { fingerprint } => {
            w.u8(7);
            w.u128(fingerprint.0);
        }
        ErrorKind::UnknownJob { job } => {
            w.u8(8);
            w.u64(*job);
        }
        ErrorKind::BadChunk => w.u8(9),
        ErrorKind::Busy => w.u8(10),
        ErrorKind::BadRequest => w.u8(11),
        ErrorKind::WrongNode { owner } => {
            w.u8(12);
            w.string(owner);
        }
    }
}

fn get_error_kind(r: &mut Reader) -> Result<ErrorKind, WireError> {
    Ok(match r.u8()? {
        0 => ErrorKind::QueueFull { capacity: r.u64()? },
        1 => ErrorKind::TooLarge {
            patterns: r.u64()?,
            limit: r.u64()?,
        },
        2 => ErrorKind::InvalidTenant,
        3 => ErrorKind::Unschedulable { k: r.u64()? },
        4 => ErrorKind::ShuttingDown,
        5 => ErrorKind::UnsupportedVersion {
            min: r.u16()?,
            max: r.u16()?,
        },
        6 => ErrorKind::AuthFailed,
        7 => ErrorKind::UnknownFingerprint {
            fingerprint: Fingerprint(r.u128()?),
        },
        8 => ErrorKind::UnknownJob { job: r.u64()? },
        9 => ErrorKind::BadChunk,
        10 => ErrorKind::Busy,
        11 => ErrorKind::BadRequest,
        12 => ErrorKind::WrongNode { owner: r.string()? },
        _ => return Err(WireError::BadValue { what: "error kind" }),
    })
}

// ---------------------------------------------------------------------------
// Messages
// ---------------------------------------------------------------------------

/// Every beer-wire frame. Client→server and server→client frames
/// share one tag space (a peer receiving a frame it never expects answers
/// [`ErrorKind::BadRequest`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Message {
    /// Client → server, first frame: magic, the version range the client
    /// speaks, and the tenant credentials.
    Hello {
        /// Oldest protocol version the client speaks.
        min_version: u16,
        /// Newest protocol version the client speaks.
        max_version: u16,
        /// Tenant name.
        tenant: String,
        /// Tenant auth token (ignored by open services).
        token: String,
    },
    /// Server → client: negotiation succeeded at `version`.
    HelloAck {
        /// The negotiated protocol version.
        version: u16,
        /// Human-readable server identity.
        server: String,
        /// (v3+) The cluster ring, when this server is a cluster
        /// member (a presence byte, then the ring).
        ring: Option<Ring>,
    },
    /// Client → server: a chunked trace upload begins.
    TraceBegin {
        /// Evidence fingerprint keying the upload.
        fingerprint: Fingerprint,
        /// Chunks that will follow.
        total_chunks: u32,
        /// Total payload bytes across all chunks.
        total_bytes: u64,
    },
    /// Client → server: one chunk of an upload in progress.
    TraceChunk {
        /// The upload's fingerprint.
        fingerprint: Fingerprint,
        /// 0-based chunk index.
        index: u32,
        /// The chunk's bytes.
        data: Vec<u8>,
    },
    /// Server → client: the upload assembled and verified.
    TraceAck {
        /// The verified fingerprint.
        fingerprint: Fingerprint,
    },
    /// Client → server: submit the uploaded trace with this fingerprint.
    Submit {
        /// Fingerprint of a previously uploaded trace.
        fingerprint: Fingerprint,
        /// Priority within the tenant's queue.
        priority: Priority,
        /// Submission-to-completion deadline in milliseconds.
        deadline_ms: Option<u64>,
        /// Trace id minted at submission (v4+). `None` encodes the
        /// legacy v1 tag byte-for-byte; `Some` encodes the v4 tag, so
        /// the mapping between value and bytes stays bijective.
        trace_id: Option<u128>,
    },
    /// Server → client: the job was admitted.
    SubmitAck {
        /// The job id (scoped to this server instance).
        job: u64,
    },
    /// Client → server: stream the job's events until it completes.
    Watch {
        /// The job to watch.
        job: u64,
    },
    /// Server → client: one job event (during a watch).
    Event {
        /// The job the event concerns.
        job: u64,
        /// The event.
        event: WireEvent,
    },
    /// Server → client: the job reached a terminal state (ends a watch).
    Done {
        /// The job.
        job: u64,
        /// How it ended.
        result: WireResult,
    },
    /// Client → server: request cancellation.
    Cancel {
        /// The job to cancel.
        job: u64,
    },
    /// Server → client: cancellation outcome.
    CancelAck {
        /// The job.
        job: u64,
        /// False if the job was already terminal.
        cancelled: bool,
    },
    /// Client → server: look up a profile fingerprint in the registry.
    QueryFingerprint {
        /// The fingerprint.
        fingerprint: Fingerprint,
    },
    /// Server → client: the registry's answer for a fingerprint.
    FingerprintInfo {
        /// The queried fingerprint.
        fingerprint: Fingerprint,
        /// The completed record, if any.
        record: Option<WireRecord>,
    },
    /// Client → server: every registered code with these dimensions.
    QueryDims {
        /// Codeword length.
        n: u32,
        /// Dataword length.
        k: u32,
    },
    /// Server → client: the registry's answer for a dimension query.
    DimsInfo {
        /// Matching entries.
        entries: Vec<WireCodeEntry>,
    },
    /// Client → server: every registered code with this canonical hash.
    QueryHash {
        /// The canonical hash.
        hash: u64,
    },
    /// Server → client: the registry's answer for a hash query.
    HashInfo {
        /// Matching entries (more than one only on a hash collision).
        entries: Vec<WireCodeEntry>,
    },
    /// Client → server (v2+): one page of the codes with these
    /// dimensions. The cursor is opaque: `None` starts from the
    /// beginning, and each answer's `next_cursor` resumes strictly after
    /// the last entry it returned. A cursor the server did not mint for
    /// this same query is refused with [`ErrorKind::BadRequest`].
    QueryDimsPage {
        /// Codeword length.
        n: u32,
        /// Dataword length.
        k: u32,
        /// Opaque resume cursor from a previous [`Message::DimsPage`].
        cursor: Option<Vec<u8>>,
        /// Entries per page; 0 means the server's own cap.
        limit: u32,
    },
    /// Server → client (v2+): one page of a dimension query.
    DimsPage {
        /// This page's entries.
        entries: Vec<WireCodeEntry>,
        /// Send this back to fetch the next page; `None` means done.
        next_cursor: Option<Vec<u8>>,
    },
    /// Client → server (v2+): one page of the codes with this canonical
    /// hash. Cursor semantics match [`Message::QueryDimsPage`].
    QueryHashPage {
        /// The canonical hash.
        hash: u64,
        /// Opaque resume cursor from a previous [`Message::HashPage`].
        cursor: Option<Vec<u8>>,
        /// Entries per page; 0 means the server's own cap.
        limit: u32,
    },
    /// Server → client (v2+): one page of a hash query.
    HashPage {
        /// This page's entries.
        entries: Vec<WireCodeEntry>,
        /// Send this back to fetch the next page; `None` means done.
        next_cursor: Option<Vec<u8>>,
    },
    /// Client → server: request a service stats snapshot.
    QueryStats,
    /// Server → client: the stats snapshot (v1/v2 layout — the legacy
    /// 14 counters; the registry and forwarding gauges ride only in
    /// [`Message::StatsInfoV3`]).
    StatsInfo(WireStats),
    /// Server → client (v3+): the stats snapshot including the registry
    /// and forwarding gauges.
    StatsInfoV3(WireStats),
    /// Server → client (v3+), push: the cluster membership changed.
    /// Clients adopt the ring (if its epoch is newer) and re-route
    /// without reconnecting.
    RingChanged {
        /// The new ring.
        ring: Ring,
    },
    /// Node → node (v3+): a submit proxied by a non-owning cluster node.
    /// Carries the forwarder's ring epoch; the receiver answers
    /// [`ErrorKind::WrongNode`] instead of forwarding again if it does
    /// not own the fingerprint (the loop guard).
    SubmitForwarded {
        /// Fingerprint of a previously uploaded trace.
        fingerprint: Fingerprint,
        /// Priority within the tenant's queue.
        priority: Priority,
        /// Submission-to-completion deadline in milliseconds.
        deadline_ms: Option<u64>,
        /// The forwarder's ring epoch, for stale-routing diagnostics.
        epoch: u64,
        /// The origin node's trace id for the job (v4+), so both ends
        /// of a forwarded submit report the same id. `None` encodes the
        /// legacy v3 tag; `Some` encodes the v4 tag.
        trace_id: Option<u128>,
    },
    /// Client → server (v4+): request the node's metrics exposition.
    QueryMetrics {
        /// How many flight-recorder events to include, newest last.
        /// 0 means counters and histograms only.
        tail: u32,
    },
    /// Server → client (v4+): the metrics exposition — one
    /// line-oriented text block of counters, gauges, histogram
    /// summaries, and the flight-recorder tail.
    MetricsInfo {
        /// The rendered exposition.
        text: String,
    },
    /// Server → client: a typed refusal (see [`ErrorKind`]).
    Error {
        /// What went wrong.
        kind: ErrorKind,
        /// Human-readable detail.
        detail: String,
    },
    /// Either direction: the peer is closing the connection cleanly.
    Bye,
}

const TAG_HELLO: u8 = 1;
const TAG_HELLO_ACK: u8 = 2;
const TAG_TRACE_BEGIN: u8 = 3;
const TAG_TRACE_CHUNK: u8 = 4;
const TAG_TRACE_ACK: u8 = 5;
const TAG_SUBMIT: u8 = 6;
const TAG_SUBMIT_ACK: u8 = 7;
const TAG_WATCH: u8 = 8;
const TAG_EVENT: u8 = 9;
const TAG_DONE: u8 = 10;
const TAG_CANCEL: u8 = 11;
const TAG_CANCEL_ACK: u8 = 12;
const TAG_QUERY_FINGERPRINT: u8 = 13;
const TAG_FINGERPRINT_INFO: u8 = 14;
const TAG_QUERY_DIMS: u8 = 15;
const TAG_DIMS_INFO: u8 = 16;
const TAG_QUERY_HASH: u8 = 17;
const TAG_HASH_INFO: u8 = 18;
const TAG_QUERY_STATS: u8 = 19;
const TAG_STATS_INFO: u8 = 20;
const TAG_ERROR: u8 = 21;
const TAG_BYE: u8 = 22;
const TAG_QUERY_DIMS_PAGE: u8 = 23;
const TAG_DIMS_PAGE: u8 = 24;
const TAG_QUERY_HASH_PAGE: u8 = 25;
const TAG_HASH_PAGE: u8 = 26;
const TAG_RING_CHANGED: u8 = 27;
const TAG_SUBMIT_FORWARDED: u8 = 28;
const TAG_STATS_INFO_V3: u8 = 29;
const TAG_SUBMIT_V4: u8 = 30;
const TAG_SUBMIT_FORWARDED_V4: u8 = 31;
const TAG_QUERY_METRICS: u8 = 32;
const TAG_METRICS_INFO: u8 = 33;

impl Message {
    /// Encodes the frame body (tag + payload, no length prefix).
    pub fn encode_body(&self) -> Vec<u8> {
        let mut body = Vec::new();
        self.encode_body_into(&mut body);
        body
    }

    /// Encodes the frame body (tag + payload, no length prefix) by
    /// *appending* to `buf` — the allocation-free path for hot frames
    /// (Event, SubmitAck, cache-hit Done) encoding into pooled buffers.
    /// Produces byte-for-byte the same encoding as
    /// [`Message::encode_body`].
    pub fn encode_body_into(&self, buf: &mut Vec<u8>) {
        let mut w = Writer(buf);
        match self {
            Message::Hello {
                min_version,
                max_version,
                tenant,
                token,
            } => {
                w.u8(TAG_HELLO);
                w.0.extend_from_slice(&WIRE_MAGIC);
                w.u16(*min_version);
                w.u16(*max_version);
                w.string(tenant);
                w.string(token);
            }
            Message::HelloAck {
                version,
                server,
                ring,
            } => {
                w.u8(TAG_HELLO_ACK);
                w.u16(*version);
                w.string(server);
                match ring {
                    Some(ring) => {
                        w.u8(1);
                        put_ring(&mut w, ring);
                    }
                    None => w.u8(0),
                }
            }
            Message::TraceBegin {
                fingerprint,
                total_chunks,
                total_bytes,
            } => {
                w.u8(TAG_TRACE_BEGIN);
                w.u128(fingerprint.0);
                w.u32(*total_chunks);
                w.u64(*total_bytes);
            }
            Message::TraceChunk {
                fingerprint,
                index,
                data,
            } => {
                w.u8(TAG_TRACE_CHUNK);
                w.u128(fingerprint.0);
                w.u32(*index);
                w.bytes(data);
            }
            Message::TraceAck { fingerprint } => {
                w.u8(TAG_TRACE_ACK);
                w.u128(fingerprint.0);
            }
            Message::Submit {
                fingerprint,
                priority,
                deadline_ms,
                trace_id,
            } => {
                // The legacy tag iff there is no trace id: a v3 Submit
                // round-trips to the same bytes, and each value has
                // exactly one encoding.
                match trace_id {
                    None => w.u8(TAG_SUBMIT),
                    Some(_) => w.u8(TAG_SUBMIT_V4),
                }
                w.u128(fingerprint.0);
                put_priority(&mut w, *priority);
                w.opt_u64(*deadline_ms);
                if let Some(trace) = trace_id {
                    w.u128(*trace);
                }
            }
            Message::SubmitAck { job } => {
                w.u8(TAG_SUBMIT_ACK);
                w.u64(*job);
            }
            Message::Watch { job } => {
                w.u8(TAG_WATCH);
                w.u64(*job);
            }
            Message::Event { job, event } => {
                w.u8(TAG_EVENT);
                w.u64(*job);
                put_event(&mut w, event);
            }
            Message::Done { job, result } => {
                w.u8(TAG_DONE);
                w.u64(*job);
                put_result(&mut w, result);
            }
            Message::Cancel { job } => {
                w.u8(TAG_CANCEL);
                w.u64(*job);
            }
            Message::CancelAck { job, cancelled } => {
                w.u8(TAG_CANCEL_ACK);
                w.u64(*job);
                w.boolean(*cancelled);
            }
            Message::QueryFingerprint { fingerprint } => {
                w.u8(TAG_QUERY_FINGERPRINT);
                w.u128(fingerprint.0);
            }
            Message::FingerprintInfo {
                fingerprint,
                record,
            } => {
                w.u8(TAG_FINGERPRINT_INFO);
                w.u128(fingerprint.0);
                match record {
                    None => w.u8(0),
                    Some(record) => {
                        w.u8(1);
                        w.string(&record.tenant);
                        put_outcome(&mut w, &record.outcome);
                    }
                }
            }
            Message::QueryDims { n, k } => {
                w.u8(TAG_QUERY_DIMS);
                w.u32(*n);
                w.u32(*k);
            }
            Message::DimsInfo { entries } => {
                w.u8(TAG_DIMS_INFO);
                put_code_entries(&mut w, entries);
            }
            Message::QueryHash { hash } => {
                w.u8(TAG_QUERY_HASH);
                w.u64(*hash);
            }
            Message::HashInfo { entries } => {
                w.u8(TAG_HASH_INFO);
                put_code_entries(&mut w, entries);
            }
            Message::QueryDimsPage {
                n,
                k,
                cursor,
                limit,
            } => {
                w.u8(TAG_QUERY_DIMS_PAGE);
                w.u32(*n);
                w.u32(*k);
                w.opt_bytes(cursor.as_deref());
                w.u32(*limit);
            }
            Message::DimsPage {
                entries,
                next_cursor,
            } => {
                w.u8(TAG_DIMS_PAGE);
                put_code_entries(&mut w, entries);
                w.opt_bytes(next_cursor.as_deref());
            }
            Message::QueryHashPage {
                hash,
                cursor,
                limit,
            } => {
                w.u8(TAG_QUERY_HASH_PAGE);
                w.u64(*hash);
                w.opt_bytes(cursor.as_deref());
                w.u32(*limit);
            }
            Message::HashPage {
                entries,
                next_cursor,
            } => {
                w.u8(TAG_HASH_PAGE);
                put_code_entries(&mut w, entries);
                w.opt_bytes(next_cursor.as_deref());
            }
            Message::QueryStats => w.u8(TAG_QUERY_STATS),
            Message::StatsInfo(stats) => {
                w.u8(TAG_STATS_INFO);
                put_stats(&mut w, stats);
            }
            Message::StatsInfoV3(stats) => {
                w.u8(TAG_STATS_INFO_V3);
                put_stats_v3(&mut w, stats);
            }
            Message::RingChanged { ring } => {
                w.u8(TAG_RING_CHANGED);
                put_ring(&mut w, ring);
            }
            Message::SubmitForwarded {
                fingerprint,
                priority,
                deadline_ms,
                epoch,
                trace_id,
            } => {
                match trace_id {
                    None => w.u8(TAG_SUBMIT_FORWARDED),
                    Some(_) => w.u8(TAG_SUBMIT_FORWARDED_V4),
                }
                w.u128(fingerprint.0);
                put_priority(&mut w, *priority);
                w.opt_u64(*deadline_ms);
                w.u64(*epoch);
                if let Some(trace) = trace_id {
                    w.u128(*trace);
                }
            }
            Message::QueryMetrics { tail } => {
                w.u8(TAG_QUERY_METRICS);
                w.u32(*tail);
            }
            Message::MetricsInfo { text } => {
                w.u8(TAG_METRICS_INFO);
                w.string(text);
            }
            Message::Error { kind, detail } => {
                w.u8(TAG_ERROR);
                put_error_kind(&mut w, kind);
                w.string(detail);
            }
            Message::Bye => w.u8(TAG_BYE),
        }
    }

    /// Decodes a frame body (tag + payload).
    ///
    /// # Errors
    ///
    /// A typed [`WireError`]; never panics, whatever the bytes.
    pub fn decode_body(body: &[u8]) -> Result<Message, WireError> {
        let mut r = Reader::new(body);
        let tag = r.u8()?;
        let message = match tag {
            TAG_HELLO => {
                if r.take(4)? != WIRE_MAGIC {
                    return Err(WireError::BadMagic);
                }
                Message::Hello {
                    min_version: r.u16()?,
                    max_version: r.u16()?,
                    tenant: r.string()?,
                    token: r.string()?,
                }
            }
            TAG_HELLO_ACK => {
                let version = r.u16()?;
                let server = r.string()?;
                let ring = match r.u8()? {
                    0 => None,
                    1 => Some(get_ring(&mut r)?),
                    _ => return Err(WireError::BadValue { what: "ring flag" }),
                };
                Message::HelloAck {
                    version,
                    server,
                    ring,
                }
            }
            TAG_TRACE_BEGIN => Message::TraceBegin {
                fingerprint: Fingerprint(r.u128()?),
                total_chunks: r.u32()?,
                total_bytes: r.u64()?,
            },
            TAG_TRACE_CHUNK => Message::TraceChunk {
                fingerprint: Fingerprint(r.u128()?),
                index: r.u32()?,
                data: r.bytes()?,
            },
            TAG_TRACE_ACK => Message::TraceAck {
                fingerprint: Fingerprint(r.u128()?),
            },
            TAG_SUBMIT => Message::Submit {
                fingerprint: Fingerprint(r.u128()?),
                priority: get_priority(&mut r)?,
                deadline_ms: r.opt_u64("deadline")?,
                trace_id: None,
            },
            TAG_SUBMIT_V4 => Message::Submit {
                fingerprint: Fingerprint(r.u128()?),
                priority: get_priority(&mut r)?,
                deadline_ms: r.opt_u64("deadline")?,
                trace_id: Some(r.u128()?),
            },
            TAG_SUBMIT_ACK => Message::SubmitAck { job: r.u64()? },
            TAG_WATCH => Message::Watch { job: r.u64()? },
            TAG_EVENT => Message::Event {
                job: r.u64()?,
                event: get_event(&mut r)?,
            },
            TAG_DONE => Message::Done {
                job: r.u64()?,
                result: get_result(&mut r)?,
            },
            TAG_CANCEL => Message::Cancel { job: r.u64()? },
            TAG_CANCEL_ACK => Message::CancelAck {
                job: r.u64()?,
                cancelled: r.boolean("cancelled")?,
            },
            TAG_QUERY_FINGERPRINT => Message::QueryFingerprint {
                fingerprint: Fingerprint(r.u128()?),
            },
            TAG_FINGERPRINT_INFO => {
                let fingerprint = Fingerprint(r.u128()?);
                let record = if r.boolean("record present")? {
                    Some(WireRecord {
                        tenant: r.string()?,
                        outcome: get_outcome(&mut r)?,
                    })
                } else {
                    None
                };
                Message::FingerprintInfo {
                    fingerprint,
                    record,
                }
            }
            TAG_QUERY_DIMS => Message::QueryDims {
                n: r.u32()?,
                k: r.u32()?,
            },
            TAG_DIMS_INFO => Message::DimsInfo {
                entries: get_code_entries(&mut r)?,
            },
            TAG_QUERY_HASH => Message::QueryHash { hash: r.u64()? },
            TAG_HASH_INFO => Message::HashInfo {
                entries: get_code_entries(&mut r)?,
            },
            TAG_QUERY_DIMS_PAGE => Message::QueryDimsPage {
                n: r.u32()?,
                k: r.u32()?,
                cursor: r.opt_bytes("dims cursor present")?,
                limit: r.u32()?,
            },
            TAG_DIMS_PAGE => Message::DimsPage {
                entries: get_code_entries(&mut r)?,
                next_cursor: r.opt_bytes("dims next cursor present")?,
            },
            TAG_QUERY_HASH_PAGE => Message::QueryHashPage {
                hash: r.u64()?,
                cursor: r.opt_bytes("hash cursor present")?,
                limit: r.u32()?,
            },
            TAG_HASH_PAGE => Message::HashPage {
                entries: get_code_entries(&mut r)?,
                next_cursor: r.opt_bytes("hash next cursor present")?,
            },
            TAG_QUERY_STATS => Message::QueryStats,
            TAG_STATS_INFO => Message::StatsInfo(get_stats(&mut r)?),
            TAG_STATS_INFO_V3 => Message::StatsInfoV3(get_stats_v3(&mut r)?),
            TAG_RING_CHANGED => Message::RingChanged {
                ring: get_ring(&mut r)?,
            },
            TAG_SUBMIT_FORWARDED => Message::SubmitForwarded {
                fingerprint: Fingerprint(r.u128()?),
                priority: get_priority(&mut r)?,
                deadline_ms: r.opt_u64("deadline")?,
                epoch: r.u64()?,
                trace_id: None,
            },
            TAG_SUBMIT_FORWARDED_V4 => Message::SubmitForwarded {
                fingerprint: Fingerprint(r.u128()?),
                priority: get_priority(&mut r)?,
                deadline_ms: r.opt_u64("deadline")?,
                epoch: r.u64()?,
                trace_id: Some(r.u128()?),
            },
            TAG_QUERY_METRICS => Message::QueryMetrics { tail: r.u32()? },
            TAG_METRICS_INFO => Message::MetricsInfo { text: r.string()? },
            TAG_ERROR => Message::Error {
                kind: get_error_kind(&mut r)?,
                detail: r.string()?,
            },
            TAG_BYE => Message::Bye,
            tag => return Err(WireError::UnknownTag { tag }),
        };
        r.finish()?;
        Ok(message)
    }

    /// Encodes the complete frame: length prefix + body.
    pub fn encode_frame(&self) -> Vec<u8> {
        let mut frame = Vec::new();
        self.encode_into(&mut frame);
        frame
    }

    /// Encodes the complete frame (length prefix + body) by *appending*
    /// to `buf`. The length prefix is reserved up front and patched
    /// after the body lands, so the frame is built in one buffer with no
    /// intermediate concatenation.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        let start = buf.len();
        buf.extend_from_slice(&[0u8; 4]);
        self.encode_body_into(buf);
        let body_len = (buf.len() - start - 4) as u32;
        buf[start..start + 4].copy_from_slice(&body_len.to_be_bytes());
    }
}

/// Writes one frame to the stream.
///
/// # Errors
///
/// Propagates I/O errors (including write timeouts).
pub fn write_message(w: &mut impl Write, message: &Message) -> io::Result<()> {
    w.write_all(&message.encode_frame())?;
    w.flush()
}

/// Reads one frame from the stream, enforcing `max_frame` *before*
/// allocating the body.
///
/// # Errors
///
/// [`RecvError::Closed`] on clean EOF at a frame boundary,
/// [`RecvError::Io`] for transport failures (including read timeouts),
/// [`RecvError::Frame`] for anything that is not a valid frame.
pub fn read_message(r: &mut impl Read, max_frame: usize) -> Result<Message, RecvError> {
    let mut len_bytes = [0u8; 4];
    // Distinguish a clean close (EOF before any length byte) from a
    // truncation mid-prefix.
    loop {
        match r.read(&mut len_bytes[..1]) {
            Ok(0) => return Err(RecvError::Closed),
            Ok(_) => break,
            // Bare read() does not retry EINTR the way read_exact does;
            // a signal between frames must not look like a dead peer.
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(RecvError::Io(e)),
        }
    }
    r.read_exact(&mut len_bytes[1..]).map_err(RecvError::Io)?;
    let len = u32::from_be_bytes(len_bytes) as usize;
    if len > max_frame {
        return Err(RecvError::Frame(WireError::FrameTooLarge {
            len: len as u64,
            limit: max_frame as u64,
        }));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body).map_err(RecvError::Io)?;
    Message::decode_body(&body).map_err(RecvError::Frame)
}

/// The server side of version negotiation: the highest version both
/// peers speak, if the ranges overlap.
pub fn negotiate(client_min: u16, client_max: u16) -> Option<u16> {
    let version = client_max.min(WIRE_VERSION);
    (client_min <= client_max && version >= client_min && version >= WIRE_MIN_VERSION)
        .then_some(version)
}
