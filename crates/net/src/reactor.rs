//! The readiness layer under [`NetServer`](crate::NetServer): a thin,
//! dependency-free epoll wrapper plus the two utilities the reactor
//! needs — a cross-thread [`Waker`] and a [`BufPool`] of reusable frame
//! buffers.
//!
//! This module hand-rolls its own `extern "C"` declarations (the same
//! philosophy as beer-wire: `std` only, no vendored `libc`). Only the
//! five syscalls the reactor actually uses are declared — `epoll_create1`,
//! `epoll_ctl`, `epoll_wait`, `eventfd`, and the rlimit pair for raising
//! the fd ceiling in high-connection benches. Everything is Linux-only,
//! like the rest of the epoll family; the blocking [`Client`](crate::Client)
//! remains portable.
//!
//! Design notes:
//!
//! - **Tokens, not pointers.** epoll's per-fd `u64` carries an opaque
//!   token chosen by the caller (the server packs a slab index and a
//!   generation counter into it, so a stale event for a recycled slot is
//!   recognizably stale).
//! - **Level-triggered.** The server re-arms interest explicitly per
//!   connection state; level-triggered wakeups make partial reads/writes
//!   safe by default (no lost-wakeup hazard on a short `read`).
//! - **One reactor thread.** [`Poller`] is deliberately `!Sync`-shaped in
//!   use: only [`Waker::wake`] is called from other threads.

use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

// ---------------------------------------------------------------------------
// Syscall shim
// ---------------------------------------------------------------------------

mod sys {
    use std::os::raw::{c_int, c_uint, c_void};

    /// `struct epoll_event`. x86_64 Linux declares it packed (a 12-byte
    /// struct); other architectures use natural alignment.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    /// `struct rlimit` (64-bit `rlim_t` on every Linux target we build).
    #[repr(C)]
    pub struct Rlimit {
        pub cur: u64,
        pub max: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout_ms: c_int,
        ) -> c_int;
        pub fn eventfd(initval: c_uint, flags: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        pub fn close(fd: c_int) -> c_int;
        pub fn getrlimit(resource: c_int, rlim: *mut Rlimit) -> c_int;
        pub fn setrlimit(resource: c_int, rlim: *const Rlimit) -> c_int;
    }
}

/// Readable readiness (`EPOLLIN`).
pub const EPOLLIN: u32 = 0x001;
/// Writable readiness (`EPOLLOUT`).
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (`EPOLLERR`) — always reported, never requested.
pub const EPOLLERR: u32 = 0x008;
/// Hangup (`EPOLLHUP`) — always reported, never requested.
pub const EPOLLHUP: u32 = 0x010;
/// Peer closed its write half (`EPOLLRDHUP`). Requesting this is what
/// replaces the old 2 s zero-consume liveness `peek`: a watcher hanging
/// up becomes a readiness event the moment it happens.
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLL_CLOEXEC: i32 = 0o2000000;
const EFD_CLOEXEC: i32 = 0o2000000;
const EFD_NONBLOCK: i32 = 0o4000;
const RLIMIT_NOFILE: i32 = 7;

fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

// ---------------------------------------------------------------------------
// Poller
// ---------------------------------------------------------------------------

/// One readiness event out of [`Poller::wait`].
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The token registered for the fd.
    pub token: u64,
    /// Raw `EPOLL*` bits.
    pub events: u32,
}

impl Event {
    /// The fd has bytes to read (or an error/hangup a read will surface).
    pub fn readable(&self) -> bool {
        self.events & (EPOLLIN | EPOLLERR | EPOLLHUP) != 0
    }

    /// The fd can accept bytes (or an error a write will surface).
    pub fn writable(&self) -> bool {
        self.events & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0
    }

    /// The peer closed (its write half at least) or the fd errored.
    pub fn closed(&self) -> bool {
        self.events & (EPOLLRDHUP | EPOLLERR | EPOLLHUP) != 0
    }
}

/// A level-triggered epoll instance.
pub struct Poller {
    epfd: RawFd,
}

impl Poller {
    /// Creates the epoll instance (`CLOEXEC`).
    pub fn new() -> io::Result<Poller> {
        let epfd = cvt(unsafe { sys::epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Poller { epfd })
    }

    fn ctl(&self, op: i32, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
        let mut ev = sys::EpollEvent {
            events: interest,
            data: token,
        };
        cvt(unsafe { sys::epoll_ctl(self.epfd, op, fd, &mut ev) }).map(drop)
    }

    /// Registers `fd` with the given interest bits; events for it carry
    /// `token`.
    pub fn add(&self, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, token, interest)
    }

    /// Changes the interest (and token) of an already-registered fd.
    pub fn modify(&self, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, token, interest)
    }

    /// Deregisters `fd`. Harmless to call for an fd the kernel already
    /// dropped from the set (closing an fd deregisters it implicitly).
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        match self.ctl(EPOLL_CTL_DEL, fd, 0, 0) {
            Err(e) if e.raw_os_error() == Some(2) => Ok(()), // ENOENT
            other => other,
        }
    }

    /// Blocks until readiness or `timeout` (`None` = forever), appending
    /// events to `out`. Retries `EINTR` internally; an empty `out` after
    /// return means the timeout elapsed.
    pub fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        const CAP: usize = 1024;
        let mut buf = [sys::EpollEvent { events: 0, data: 0 }; CAP];
        let timeout_ms: i32 = match timeout {
            None => -1,
            Some(d) => d.as_millis().min(i32::MAX as u128) as i32,
        };
        let n = loop {
            let ret =
                unsafe { sys::epoll_wait(self.epfd, buf.as_mut_ptr(), CAP as i32, timeout_ms) };
            if ret >= 0 {
                break ret as usize;
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        };
        out.extend(buf[..n].iter().map(|ev| {
            // Copy out of the (possibly packed) struct before use.
            let events = ev.events;
            let token = ev.data;
            Event { token, events }
        }));
        Ok(())
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        unsafe { sys::close(self.epfd) };
    }
}

// ---------------------------------------------------------------------------
// Waker
// ---------------------------------------------------------------------------

/// A cross-thread wakeup for a [`Poller`] blocked in [`Poller::wait`],
/// built on `eventfd`. Register [`Waker::fd`] with a reserved token and
/// call [`Waker::wake`] from any thread; the reactor calls
/// [`Waker::drain`] when the token fires.
///
/// This is the delivery path for job events: the service's fanout
/// notify-hook wakes the reactor, which then drains watcher queues —
/// replacing the 50 ms `recv_timeout` poll loop per watcher.
pub struct Waker {
    fd: RawFd,
}

impl Waker {
    /// Creates the eventfd (`CLOEXEC | NONBLOCK`).
    pub fn new() -> io::Result<Waker> {
        let fd = cvt(unsafe { sys::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        Ok(Waker { fd })
    }

    /// The fd to register with the poller (interest: [`EPOLLIN`]).
    pub fn fd(&self) -> RawFd {
        self.fd
    }

    /// Wakes the poller. Async-signal-safe, nonblocking, coalescing:
    /// many wakes before a drain cost one readiness event.
    pub fn wake(&self) {
        let one: u64 = 1;
        // A full counter (EAGAIN) already guarantees a pending wakeup.
        unsafe { sys::write(self.fd, (&one as *const u64).cast(), 8) };
    }

    /// Consumes pending wakeups so level-triggered polling quiesces.
    pub fn drain(&self) {
        let mut buf = 0u64;
        unsafe { sys::read(self.fd, (&mut buf as *mut u64).cast(), 8) };
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        unsafe { sys::close(self.fd) };
    }
}

// Raw-fd wrapper whose only cross-thread operation is write(2).
unsafe impl Send for Waker {}
unsafe impl Sync for Waker {}

// ---------------------------------------------------------------------------
// Buffer pool
// ---------------------------------------------------------------------------

/// A pool of reusable `Vec<u8>` frame buffers, owned by the reactor
/// thread (no locks). Hot frames encode via
/// [`Message::encode_into`](crate::wire::Message::encode_into) into a
/// pooled buffer, ride the connection's write queue, and return here
/// once flushed.
///
/// Two bounds keep it honest: at most `max_pooled` buffers are retained
/// (excess ones just drop), and a buffer that grew past
/// `max_buf_capacity` is dropped rather than pooled, so one giant
/// DimsInfo answer cannot pin its high-water allocation forever.
pub struct BufPool {
    bufs: Vec<Vec<u8>>,
    max_pooled: usize,
    max_buf_capacity: usize,
}

impl BufPool {
    /// An empty pool with the given retention bounds.
    pub fn new(max_pooled: usize, max_buf_capacity: usize) -> BufPool {
        BufPool {
            bufs: Vec::new(),
            max_pooled,
            max_buf_capacity,
        }
    }

    /// A cleared buffer — pooled if one is available, fresh otherwise.
    pub fn take(&mut self) -> Vec<u8> {
        self.bufs.pop().unwrap_or_default()
    }

    /// Returns a buffer to the pool (cleared), subject to the bounds.
    pub fn put(&mut self, mut buf: Vec<u8>) {
        if self.bufs.len() < self.max_pooled && buf.capacity() <= self.max_buf_capacity {
            buf.clear();
            self.bufs.push(buf);
        }
    }

    /// Buffers currently pooled.
    pub fn pooled(&self) -> usize {
        self.bufs.len()
    }
}

// ---------------------------------------------------------------------------
// fd limit
// ---------------------------------------------------------------------------

/// Raises the soft `RLIMIT_NOFILE` to the hard limit and returns the new
/// soft limit. The 4096-connection bench section calls this so loopback
/// sockets do not exhaust the default 1024-fd soft cap.
pub fn raise_nofile_limit() -> io::Result<u64> {
    let mut lim = sys::Rlimit { cur: 0, max: 0 };
    cvt(unsafe { sys::getrlimit(RLIMIT_NOFILE, &mut lim) })?;
    if lim.cur < lim.max {
        let raised = sys::Rlimit {
            cur: lim.max,
            max: lim.max,
        };
        cvt(unsafe { sys::setrlimit(RLIMIT_NOFILE, &raised) })?;
        lim.cur = lim.max;
    }
    Ok(lim.cur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::fd::AsRawFd;

    #[test]
    fn poller_sees_readable_and_rdhup() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let mut a = std::net::TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (mut b, _) = listener.accept().unwrap();

        let poller = Poller::new().unwrap();
        b.set_nonblocking(true).unwrap();
        poller.add(b.as_raw_fd(), 7, EPOLLIN | EPOLLRDHUP).unwrap();

        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty(), "no readiness before any bytes");

        a.write_all(b"hi").unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable());
        assert!(!events[0].closed());
        let mut buf = [0u8; 8];
        assert_eq!(b.read(&mut buf).unwrap(), 2);

        // Peer close is a readiness event, not something to poll for.
        drop(a);
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events.len(), 1);
        assert!(events[0].closed());
        poller.delete(b.as_raw_fd()).unwrap();
    }

    #[test]
    fn waker_wakes_and_coalesces() {
        let poller = Poller::new().unwrap();
        let waker = Waker::new().unwrap();
        poller.add(waker.fd(), u64::MAX, EPOLLIN).unwrap();

        waker.wake();
        waker.wake();
        waker.wake();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events.len(), 1, "wakes coalesce into one event");
        assert_eq!(events[0].token, u64::MAX);

        waker.drain();
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty(), "drained waker quiesces");
    }

    #[test]
    fn buf_pool_bounds_hold() {
        let mut pool = BufPool::new(2, 64);
        pool.put(vec![1, 2, 3]);
        assert_eq!(pool.pooled(), 1);
        let buf = pool.take();
        assert!(buf.is_empty(), "pooled buffers come back cleared");
        assert!(buf.capacity() >= 3);

        pool.put(Vec::with_capacity(128));
        assert_eq!(pool.pooled(), 0, "oversized buffers are dropped");
        pool.put(Vec::new());
        pool.put(Vec::new());
        pool.put(Vec::new());
        assert_eq!(pool.pooled(), 2, "retention cap holds");
    }
}
