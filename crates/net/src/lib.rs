//! # `beer_net`: the BEER recovery service, on the network
//!
//! BEER's end product — a recovered on-die ECC function — is a shared
//! artifact: a few functions are provisioned across millions of chips
//! (paper §1, §7), so the natural deployment is *one* service answering
//! *many* remote clients, most of whom ask about profiles somebody else
//! already solved. This crate is that network edge, in three layers:
//!
//! * [`wire`] — `beer-wire v1`, a versioned, length-prefixed binary
//!   format hand-rolled over `std`: Hello/HelloAck version negotiation,
//!   chunked trace upload keyed by
//!   [`ProfileTrace::fingerprint`](beer_core::trace::ProfileTrace::fingerprint),
//!   submit/watch/cancel, registry queries, stats, and typed error
//!   frames mirroring the service's [`Rejected`](beer_service::Rejected)
//!   backpressure. Decoding is total — corrupt, truncated, oversized,
//!   and unknown-future frames are typed [`wire::WireError`]s, never
//!   panics.
//! * [`server`] — [`NetServer`](server::NetServer), an event-driven TCP
//!   front for a [`RecoveryService`](beer_service::RecoveryService): one
//!   [`reactor`] thread multiplexes every connection over epoll
//!   (nonblocking sockets, per-connection state machines, pooled frame
//!   buffers, vectored writes), so thousands of idle watchers cost no
//!   threads. Per-tenant auth from the service config, load shedding as
//!   wire errors (never dropped sockets), bounded per-connection write
//!   queues, and graceful drain on shutdown.
//! * [`reactor`] — the readiness layer: a dependency-free epoll wrapper
//!   ([`reactor::Poller`]), an eventfd [`reactor::Waker`] that delivers
//!   job events to watching connections without polling, and the
//!   [`reactor::BufPool`] of reusable frame buffers.
//! * [`ring`] — the cluster hash [`Ring`](ring::Ring): epoch-numbered
//!   consistent-hash membership over trace fingerprints, shared by the
//!   server (ownership checks, forwarding), the client (direct routing),
//!   and `beer_cluster`. Wire v3 carries it in `HelloAck` and pushes
//!   changes as `RingChanged`.
//! * [`client`] — [`Client`](client::Client), a typed blocking client
//!   that retains submitted traces and *resumes by fingerprint* after a
//!   dropped connection: the service's dedup re-attaches it to the
//!   in-flight job (or its cached result) instead of re-solving.
//!
//! # Example
//!
//! ```
//! use beer_core::collect::CollectionPlan;
//! use beer_core::engine::AnalyticBackend;
//! use beer_core::pattern::PatternSet;
//! use beer_core::trace::ProfileTrace;
//! use beer_ecc::{equivalence, hamming};
//! use beer_net::client::Client;
//! use beer_net::server::{NetServer, NetServerConfig};
//! use beer_service::{RecoveryService, ServiceConfig};
//! use std::sync::Arc;
//!
//! // A profile recorded against a chip (here: the analytic model).
//! let secret = hamming::shortened(8);
//! let patterns = PatternSet::OneTwo.patterns(8);
//! let mut chip = AnalyticBackend::new(secret.clone());
//! let trace = ProfileTrace::record(&mut chip, &patterns, &CollectionPlan::quick());
//!
//! // Service + network edge on an ephemeral loopback port.
//! let service = Arc::new(RecoveryService::start(ServiceConfig::new().with_workers(2))?);
//! let server = NetServer::bind(Arc::clone(&service), "127.0.0.1:0", NetServerConfig::new())?;
//!
//! // A remote tenant submits the trace and waits for the recovery.
//! let mut client = Client::connect(server.local_addr().to_string(), "alice", "")?;
//! let job = client.submit(&trace)?;
//! let output = client.wait(job)?.expect("clean profile solves");
//! let code = output.outcome.unique_code().expect("unique recovery");
//! assert!(equivalence::equivalent(code, &secret));
//! # server.shutdown(std::time::Duration::from_secs(1));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! See `DESIGN.md` §"The wire protocol" for the frame grammar and
//! `EXPERIMENTS.md` for the `net_throughput` methodology.

pub mod client;
pub mod reactor;
pub mod ring;
pub mod server;
pub mod wire;

pub use client::{backoff_delay, Client, ClientConfig, ClientError, RemoteJob};
pub use ring::{Ring, RingError, RingMember};
pub use server::{ClusterConfig, NetServer, NetServerConfig};
pub use wire::{
    ErrorKind, Message, RecvError, WireCodeEntry, WireError, WireEvent, WireJobError, WireOutcome,
    WireOutput, WireRecord, WireResult, WireStats, WIRE_MAGIC, WIRE_VERSION,
};
