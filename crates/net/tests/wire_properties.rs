//! Wire robustness properties for `beer-wire`.
//!
//! Three guarantees the protocol must keep whatever bytes arrive:
//!
//! 1. **Round-trip** — every frame the encoder can produce decodes back
//!    to the identical message (and survives the framed stream path).
//! 2. **Totality** — truncated, trailing, corrupted, and oversized
//!    bodies decode to *typed* [`WireError`]s; no input panics.
//! 3. **Future-proofing** — unknown tags and non-overlapping version
//!    ranges are typed refusals, mirroring the style of
//!    [`TraceParseError::UnsupportedVersion`](beer_core::trace::TraceParseError).

use beer_core::recovery::BudgetReason;
use beer_core::trace::Fingerprint;
use beer_ecc::hamming;
use beer_net::wire::{
    negotiate, read_message, ErrorKind, Message, RecvError, WireCodeEntry, WireError, WireEvent,
    WireJobError, WireOutcome, WireOutput, WireRecord, WireStats, WIRE_MIN_VERSION, WIRE_VERSION,
};
use beer_net::{Ring, RingMember};
use beer_service::{JobState, Priority};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::Cursor;

/// A tiny deterministic generator: the vendored proptest has no u128 or
/// String strategies, so message payloads derive from one u64 seed.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn fingerprint(&mut self) -> Fingerprint {
        Fingerprint((u128::from(self.next()) << 64) | u128::from(self.next()))
    }

    fn string(&mut self) -> String {
        let len = self.below(12) as usize;
        (0..len)
            .map(|_| char::from(b'a' + (self.below(26) as u8)))
            .collect()
    }

    fn bytes(&mut self) -> Vec<u8> {
        let len = self.below(64) as usize;
        (0..len).map(|_| self.next() as u8).collect()
    }

    fn boolean(&mut self) -> bool {
        self.below(2) == 1
    }

    fn opt_u64(&mut self) -> Option<u64> {
        self.boolean().then(|| self.next())
    }

    fn opt_bytes(&mut self) -> Option<Vec<u8>> {
        self.boolean().then(|| self.bytes())
    }

    fn opt_u128(&mut self) -> Option<u128> {
        self.boolean()
            .then(|| (u128::from(self.next()) << 64) | u128::from(self.next()))
    }

    fn code(&mut self) -> beer_ecc::LinearCode {
        let k = 4 + self.below(12) as usize;
        hamming::random_sec(k, &mut StdRng::seed_from_u64(self.next()))
    }

    fn outcome(&mut self) -> WireOutcome {
        match self.below(4) {
            0 => WireOutcome::Unique(self.code()),
            1 => WireOutcome::Ambiguous {
                count: self.next(),
                truncated: self.boolean(),
            },
            2 => WireOutcome::Inconsistent,
            _ => WireOutcome::BudgetExhausted {
                reason: match self.below(4) {
                    0 => BudgetReason::Deadline,
                    1 => BudgetReason::Cancelled,
                    2 => BudgetReason::MaxFacts,
                    _ => BudgetReason::MaxPatterns,
                },
            },
        }
    }

    fn job_error(&mut self) -> WireJobError {
        match self.below(5) {
            0 => WireJobError::Recovery {
                message: self.string(),
            },
            1 => WireJobError::DeadlineExpired,
            2 => WireJobError::Cancelled,
            3 => WireJobError::ShutDown,
            _ => WireJobError::Unknown,
        }
    }

    fn event(&mut self) -> WireEvent {
        match self.below(6) {
            0 => WireEvent::Submitted {
                tenant: self.string(),
            },
            1 => WireEvent::State {
                state: match self.below(5) {
                    0 => JobState::Queued,
                    1 => JobState::Running,
                    2 => JobState::Done,
                    3 => JobState::Failed,
                    _ => JobState::Cancelled,
                },
            },
            2 => WireEvent::Coalesced {
                primary: self.next(),
            },
            3 => WireEvent::CacheHit,
            4 => WireEvent::Requeued,
            _ => WireEvent::Progress {
                detail: self.string(),
            },
        }
    }

    fn entries(&mut self) -> Vec<WireCodeEntry> {
        let n = self.below(3) as usize;
        (0..n)
            .map(|_| WireCodeEntry {
                hash: self.next(),
                code: self.code(),
                fingerprints: (0..self.below(4)).map(|_| self.fingerprint()).collect(),
            })
            .collect()
    }

    fn error_kind(&mut self) -> ErrorKind {
        match self.below(13) {
            0 => ErrorKind::QueueFull {
                capacity: self.next(),
            },
            1 => ErrorKind::TooLarge {
                patterns: self.next(),
                limit: self.next(),
            },
            2 => ErrorKind::InvalidTenant,
            3 => ErrorKind::Unschedulable { k: self.next() },
            4 => ErrorKind::ShuttingDown,
            5 => ErrorKind::UnsupportedVersion {
                min: self.next() as u16,
                max: self.next() as u16,
            },
            6 => ErrorKind::AuthFailed,
            7 => ErrorKind::UnknownFingerprint {
                fingerprint: self.fingerprint(),
            },
            8 => ErrorKind::UnknownJob { job: self.next() },
            9 => ErrorKind::BadChunk,
            10 => ErrorKind::Busy,
            11 => ErrorKind::WrongNode {
                owner: self.string(),
            },
            _ => ErrorKind::BadRequest,
        }
    }

    /// Stats for the legacy `StatsInfo` frame: its 14-counter v1 layout
    /// is frozen, so the v3-only gauges stay at their default (they are
    /// dropped on encode, and the round-trip property requires encoding
    /// to be lossless).
    fn stats(&mut self) -> WireStats {
        WireStats {
            submitted: self.next(),
            completed: self.next(),
            failed: self.next(),
            cancelled: self.next(),
            cache_hits: self.next(),
            coalesced: self.next(),
            requeued: self.next(),
            queued: self.next(),
            running: self.next(),
            rejected_queue_full: self.next(),
            rejected_too_large: self.next(),
            rejected_invalid_tenant: self.next(),
            rejected_unschedulable: self.next(),
            rejected_shutting_down: self.next(),
            ..WireStats::default()
        }
    }

    /// Stats for `StatsInfoV3`: every field, including the v3 gauges.
    fn stats_v3(&mut self) -> WireStats {
        WireStats {
            truncated_answers: self.next(),
            registry_segments: self.next(),
            registry_snapshots: self.next(),
            registry_compactions: self.next(),
            registry_compaction_failures: self.next(),
            forwarded_jobs: self.next(),
            forward_errors: self.next(),
            ..self.stats()
        }
    }

    fn ring(&mut self) -> Ring {
        let members: Vec<RingMember> = (0..1 + self.below(4))
            .map(|i| RingMember {
                // The index prefix keeps names unique whatever the
                // random suffix collides on.
                name: format!("{i:02}-{}", self.string()),
                addr: format!("127.0.0.1:{}", 1024 + self.below(60000)),
            })
            .collect();
        let vnodes = 1 + self.below(8) as u32;
        Ring::new(self.next(), vnodes, members).expect("generated ring is valid")
    }
}

/// Every frame variant, payloads derived from the seed. `variant` cycles
/// through all 31 message kinds so every test run covers the full space.
/// The optional trace ids on Submit/SubmitForwarded cover both tags:
/// `None` exercises the legacy v1/v3 encodings, `Some` the v4 ones.
fn arb_message(variant: u64, seed: u64) -> Message {
    let g = &mut Gen(seed | 1);
    match variant % 31 {
        0 => Message::Hello {
            min_version: g.next() as u16,
            max_version: g.next() as u16,
            tenant: g.string(),
            token: g.string(),
        },
        1 => Message::HelloAck {
            version: g.next() as u16,
            server: g.string(),
            ring: g.boolean().then(|| g.ring()),
        },
        2 => Message::TraceBegin {
            fingerprint: g.fingerprint(),
            total_chunks: g.next() as u32,
            total_bytes: g.next(),
        },
        3 => Message::TraceChunk {
            fingerprint: g.fingerprint(),
            index: g.next() as u32,
            data: g.bytes(),
        },
        4 => Message::TraceAck {
            fingerprint: g.fingerprint(),
        },
        5 => Message::Submit {
            fingerprint: g.fingerprint(),
            priority: match g.below(3) {
                0 => Priority::Low,
                1 => Priority::Normal,
                _ => Priority::High,
            },
            deadline_ms: g.opt_u64(),
            trace_id: g.opt_u128(),
        },
        6 => Message::SubmitAck { job: g.next() },
        7 => Message::Watch { job: g.next() },
        8 => Message::Event {
            job: g.next(),
            event: g.event(),
        },
        9 => Message::Done {
            job: g.next(),
            result: if g.boolean() {
                Ok(WireOutput {
                    outcome: g.outcome(),
                    from_cache: g.boolean(),
                    coalesced_into: g.opt_u64(),
                })
            } else {
                Err(g.job_error())
            },
        },
        10 => Message::Cancel { job: g.next() },
        11 => Message::CancelAck {
            job: g.next(),
            cancelled: g.boolean(),
        },
        12 => Message::QueryFingerprint {
            fingerprint: g.fingerprint(),
        },
        13 => Message::FingerprintInfo {
            fingerprint: g.fingerprint(),
            record: g.boolean().then(|| WireRecord {
                tenant: g.string(),
                outcome: g.outcome(),
            }),
        },
        14 => Message::QueryDims {
            n: g.next() as u32,
            k: g.next() as u32,
        },
        15 => Message::DimsInfo {
            entries: g.entries(),
        },
        16 => Message::QueryHash { hash: g.next() },
        17 => Message::HashInfo {
            entries: g.entries(),
        },
        18 => Message::QueryStats,
        19 => Message::StatsInfo(g.stats()),
        20 => Message::Error {
            kind: g.error_kind(),
            detail: g.string(),
        },
        21 => Message::QueryDimsPage {
            n: g.next() as u32,
            k: g.next() as u32,
            cursor: g.opt_bytes(),
            limit: g.next() as u32,
        },
        22 => Message::DimsPage {
            entries: g.entries(),
            next_cursor: g.opt_bytes(),
        },
        23 => Message::QueryHashPage {
            hash: g.next(),
            cursor: g.opt_bytes(),
            limit: g.next() as u32,
        },
        24 => Message::HashPage {
            entries: g.entries(),
            next_cursor: g.opt_bytes(),
        },
        25 => Message::Bye,
        26 => Message::RingChanged { ring: g.ring() },
        27 => Message::SubmitForwarded {
            fingerprint: g.fingerprint(),
            priority: match g.below(3) {
                0 => Priority::Low,
                1 => Priority::Normal,
                _ => Priority::High,
            },
            deadline_ms: g.opt_u64(),
            epoch: g.next(),
            trace_id: g.opt_u128(),
        },
        28 => Message::StatsInfoV3(g.stats_v3()),
        29 => Message::QueryMetrics {
            tail: g.next() as u32,
        },
        _ => Message::MetricsInfo { text: g.string() },
    }
}

proptest! {
    #[test]
    fn every_frame_roundtrips(variant in 0u64..31, seed in any::<u64>()) {
        let message = arb_message(variant, seed);
        let body = message.encode_body();
        let decoded = Message::decode_body(&body).expect("own encoding decodes");
        prop_assert_eq!(&decoded, &message);

        // And through the framed stream path.
        let frame = message.encode_frame();
        let mut cursor = Cursor::new(frame);
        let streamed = read_message(&mut cursor, 4 << 20).expect("framed read");
        prop_assert_eq!(&streamed, &message);
    }

    #[test]
    fn every_truncation_is_a_typed_error(variant in 0u64..31, seed in any::<u64>()) {
        let body = arb_message(variant, seed).encode_body();
        for len in 0..body.len() {
            match Message::decode_body(&body[..len]) {
                Err(_) => {}
                Ok(m) => prop_assert!(
                    false,
                    "prefix of {} bytes decoded to {:?}",
                    len,
                    m
                ),
            }
        }
    }

    #[test]
    fn trailing_bytes_are_a_typed_error(variant in 0u64..31, seed in any::<u64>()) {
        let mut body = arb_message(variant, seed).encode_body();
        body.push(0);
        // Most frames report the trailing byte; frames ending in a
        // variable-length field may mis-parse earlier instead — any typed
        // error is acceptable, silence is not.
        prop_assert!(Message::decode_body(&body).is_err());
    }

    #[test]
    fn corrupt_bytes_never_panic(variant in 0u64..31, seed in any::<u64>(), flips in 1usize..8) {
        let mut body = arb_message(variant, seed).encode_body();
        let mut g = Gen(seed ^ 0xDEAD_BEEF);
        for _ in 0..flips {
            if body.is_empty() {
                break;
            }
            let at = g.below(body.len() as u64) as usize;
            body[at] ^= 1 << g.below(8);
        }
        // Whatever happened to the bytes: a typed result, never a panic,
        // and any successful decode must re-encode losslessly.
        if let Ok(m) = Message::decode_body(&body) {
            prop_assert_eq!(Message::decode_body(&m.encode_body()).unwrap(), m);
        }
    }

    #[test]
    fn random_bytes_never_panic(seed in any::<u64>(), len in 0usize..256) {
        let mut g = Gen(seed | 1);
        let body: Vec<u8> = (0..len).map(|_| g.next() as u8).collect();
        let _ = Message::decode_body(&body);
    }
}

#[test]
fn unknown_future_tags_are_typed_errors() {
    // 34 is the first tag past the v4 additions (30–33); the rest are
    // arbitrary unassigned values including the extremes.
    for tag in [0u8, 34, 42, 200, 255] {
        let body = vec![tag, 1, 2, 3];
        assert_eq!(
            Message::decode_body(&body),
            Err(WireError::UnknownTag { tag }),
            "tag {tag}"
        );
    }
}

#[test]
fn hello_without_magic_is_refused() {
    let mut body = Message::Hello {
        min_version: 1,
        max_version: 1,
        tenant: "t".to_string(),
        token: String::new(),
    }
    .encode_body();
    body[1] = b'X'; // corrupt the magic
    assert_eq!(Message::decode_body(&body), Err(WireError::BadMagic));
}

#[test]
fn oversized_frames_are_refused_before_allocation() {
    // A length prefix claiming 1 GiB against a 4 MiB cap: typed refusal,
    // no allocation of the claimed size.
    let mut stream = Cursor::new((1u32 << 30).to_be_bytes().to_vec());
    match read_message(&mut stream, 4 << 20) {
        Err(RecvError::Frame(WireError::FrameTooLarge { len, limit })) => {
            assert_eq!(len, 1 << 30);
            assert_eq!(limit, 4 << 20);
        }
        other => panic!("expected FrameTooLarge, got {other:?}"),
    }
}

#[test]
fn clean_eof_is_distinguished_from_truncation() {
    // EOF at a frame boundary: Closed.
    assert!(matches!(
        read_message(&mut Cursor::new(Vec::new()), 1024),
        Err(RecvError::Closed)
    ));
    // EOF mid-prefix or mid-body: an I/O error, not a silent close.
    assert!(matches!(
        read_message(&mut Cursor::new(vec![0, 0]), 1024),
        Err(RecvError::Io(_))
    ));
    let mut partial = Message::Bye.encode_frame();
    partial.extend_from_slice(&[0, 0, 0, 9, 1]); // second frame truncated
    let mut cursor = Cursor::new(partial);
    assert!(matches!(read_message(&mut cursor, 1024), Ok(Message::Bye)));
    assert!(matches!(
        read_message(&mut cursor, 1024),
        Err(RecvError::Io(_))
    ));
}

#[test]
fn version_negotiation_picks_the_highest_common_version() {
    // A v1-only client: the server steps down to v1.
    assert_eq!(negotiate(1, 1), Some(1));
    // Pre-v4 peers: the server steps down to the client's best version,
    // so v3 cluster nodes and v1 tooling keep working against a v4
    // server (they just never see trace ids or metrics frames).
    assert_eq!(negotiate(1, 3), Some(3));
    assert_eq!(negotiate(3, 3), Some(3));
    assert_eq!(negotiate(1, 2), Some(2));
    // Identical ranges at the current version.
    assert_eq!(negotiate(WIRE_VERSION, WIRE_VERSION), Some(WIRE_VERSION));
    // A newer client offering a wide range: the server's best version.
    assert_eq!(negotiate(1, 9), Some(WIRE_VERSION));
    // A client that only speaks newer versions: no overlap.
    assert_eq!(negotiate(WIRE_VERSION + 1, WIRE_VERSION + 5), None);
    // A client that only speaks *older* versions than the server's
    // minimum: also no overlap (the server must never ack a version it
    // has no implementation of).
    assert_eq!(negotiate(0, 0), None);
    assert_eq!(negotiate(0, WIRE_MIN_VERSION - 1), None);
    // Nonsense range.
    assert_eq!(negotiate(5, 2), None);
}

#[test]
fn code_row_padding_must_be_zero() {
    // A Unique outcome whose final row byte sets a bit past k: corrupt.
    let code = hamming::shortened(5); // k = 5: three padding bits per row byte
    let message = Message::Done {
        job: 1,
        result: Ok(WireOutput {
            outcome: WireOutcome::Unique(code),
            from_cache: false,
            coalesced_into: None,
        }),
    };
    let mut body = message.encode_body();
    // The body ends `… last-row-byte ‖ from_cache ‖ coalesced flag`.
    let last_row_byte = body.len() - 3;
    body[last_row_byte] |= 0x80; // bit 7 of a 5-bit row
    assert_eq!(
        Message::decode_body(&body),
        Err(WireError::BadValue {
            what: "code row padding"
        })
    );
}
