//! Rank-level ECC: the memory-controller-side code BEER is contrasted
//! against (paper §4.1).
//!
//! Unlike on-die ECC, rank-level ECC lives in the memory controller:
//! codewords travel over the DDR bus (so errors can be *injected* into
//! them, e.g. with an interposer), and controllers typically report
//! correction events and error syndromes to software. Cojocar et al. [26]
//! exploit exactly this to extract parity-check matrices; §4.1 shows the
//! method and §4.2 explains why it cannot work for on-die ECC. This module
//! provides the substrate so the reproduction can implement both methods
//! and compare them.

use beer_ecc::{Correction, LinearCode};
use beer_gf2::{BitVec, SynMask};

/// A controller-side ECC whose codewords and syndromes are visible — the
/// §4.1 setting.
///
/// # Examples
///
/// ```
/// use beer_dram::RankLevelEcc;
/// use beer_ecc::hamming;
/// use beer_gf2::BitVec;
///
/// let ecc = RankLevelEcc::new(hamming::eq1_code());
/// let data = BitVec::from_bits(&[true, false, false, true]);
/// let stored = ecc.store(&data);
/// let report = ecc.load_with_injected_errors(&stored, &[2]);
/// assert_eq!(report.data, data); // corrected
/// assert_eq!(report.syndrome, ecc.code().column(2)); // and visible!
/// ```
#[derive(Clone, Debug)]
pub struct RankLevelEcc {
    code: LinearCode,
}

/// What the memory controller reports for one read — data *plus* the ECC
/// metadata that on-die ECC hides.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ControllerReport {
    /// Post-correction dataword.
    pub data: BitVec,
    /// The error syndrome (visible in the §4.1 setting).
    pub syndrome: SynMask,
    /// Whether a correction event was signaled.
    pub corrected: bool,
}

impl RankLevelEcc {
    /// Wraps a code as a controller-side ECC.
    pub fn new(code: LinearCode) -> Self {
        RankLevelEcc { code }
    }

    /// The code in use (a controller's code is configurable/documented —
    /// nothing secret here, in contrast to [`crate::OnDieEcc`]).
    pub fn code(&self) -> &LinearCode {
        &self.code
    }

    /// Encodes a dataword into the codeword placed on the bus.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != k`.
    pub fn store(&self, data: &BitVec) -> BitVec {
        self.code.encode(data)
    }

    /// Reads back a stored codeword with errors injected at the given bus
    /// positions (the interposer-style fault injection of Cojocar et al.),
    /// reporting data *and* syndrome.
    ///
    /// # Panics
    ///
    /// Panics if the codeword length mismatches or a position is out of
    /// range.
    pub fn load_with_injected_errors(
        &self,
        stored: &BitVec,
        flip_positions: &[usize],
    ) -> ControllerReport {
        assert_eq!(stored.len(), self.code.n(), "codeword length mismatch");
        let mut received = stored.clone();
        for &p in flip_positions {
            received.flip(p);
        }
        let result = self.code.decode(&received);
        ControllerReport {
            data: result.data,
            syndrome: result.syndrome,
            corrected: result.correction != Correction::None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beer_ecc::hamming;

    #[test]
    fn clean_reads_report_zero_syndrome() {
        let ecc = RankLevelEcc::new(hamming::shortened(16));
        let data = BitVec::from_u64(16, 0xBEEF);
        let stored = ecc.store(&data);
        let report = ecc.load_with_injected_errors(&stored, &[]);
        assert_eq!(report.data, data);
        assert!(report.syndrome.is_zero());
        assert!(!report.corrected);
    }

    #[test]
    fn single_injections_reveal_columns() {
        // Equation 2 of the paper, in the visible-syndrome setting.
        let ecc = RankLevelEcc::new(hamming::shortened(16));
        let stored = ecc.store(&BitVec::zeros(16));
        for pos in 0..ecc.code().n() {
            let report = ecc.load_with_injected_errors(&stored, &[pos]);
            assert_eq!(report.syndrome, ecc.code().column(pos), "position {pos}");
            assert!(report.corrected);
        }
    }

    #[test]
    fn double_injections_reveal_column_sums() {
        let ecc = RankLevelEcc::new(hamming::eq1_code());
        let stored = ecc.store(&BitVec::zeros(4));
        let report = ecc.load_with_injected_errors(&stored, &[1, 5]);
        assert_eq!(report.syndrome, ecc.code().column(1) ^ ecc.code().column(5));
    }
}
