//! The data-retention error model.
//!
//! Implements the three properties BEER relies on (§3.2):
//!
//! 1. *Controllable*: the failure probability of a cell grows with the
//!    refresh window and ambient temperature.
//! 2. *Uniform-random and repeatable*: each cell draws a fixed retention
//!    time from a heavy-tailed distribution, derived deterministically from
//!    a hash of the cell's identity — so the same cell fails the same way
//!    across trials (repeatability), while failures are spatially uniform
//!    across the chip.
//! 3. *Unidirectional*: only CHARGED cells decay (enforced by the chip, not
//!    here — this module only decides *whether* a cell fails).
//!
//! The model is calibrated so a 2-minute refresh window at 80 °C produces a
//! raw bit error rate near 10⁻⁷ and a 22-minute window near 10⁻³, the range
//! the paper sweeps (§5.1.3). Temperature acceleration halves retention
//! time per +10 °C, a standard DRAM rule of thumb the paper's references
//! report.

/// Deterministic per-cell retention behaviour.
///
/// # Examples
///
/// ```
/// use beer_dram::RetentionModel;
///
/// let m = RetentionModel::paper_calibrated(7);
/// // BER grows with the refresh window.
/// let short = m.expected_ber(120.0, 80.0);
/// let long = m.expected_ber(1320.0, 80.0);
/// assert!(long > short);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct RetentionModel {
    /// Seed mixed into every cell hash (the chip's identity).
    chip_seed: u64,
    /// Log-normal location of the retention-time distribution, ln seconds
    /// at the reference temperature.
    mu: f64,
    /// Log-normal scale.
    sigma: f64,
    /// Reference temperature in °C at which `mu`/`sigma` apply.
    reference_celsius: f64,
}

impl RetentionModel {
    /// A model calibrated to the paper's experimental range: BER ≈ 10⁻⁷ at
    /// tREFW = 2 min and ≈ 10⁻³ at 22 min, both at 80 °C.
    pub fn paper_calibrated(chip_seed: u64) -> Self {
        // Solve Φ((ln t − μ)/σ) = BER at the two calibration points:
        //   ln 120 s  ↦ Φ⁻¹(1e−7) = −5.199,  ln 1320 s ↦ Φ⁻¹(1e−3) = −3.090.
        let (t1, z1) = (120.0f64.ln(), -5.199);
        let (t2, z2) = (1320.0f64.ln(), -3.090);
        let sigma = (t2 - t1) / (z2 - z1);
        let mu = t1 - sigma * z1;
        RetentionModel {
            chip_seed,
            mu,
            sigma,
            reference_celsius: 80.0,
        }
    }

    /// A model with explicit log-normal parameters (ln-seconds at
    /// `reference_celsius`).
    pub fn with_parameters(chip_seed: u64, mu: f64, sigma: f64, reference_celsius: f64) -> Self {
        RetentionModel {
            chip_seed,
            mu,
            sigma,
            reference_celsius,
        }
    }

    /// The temperature-scaled effective refresh window: retention time
    /// halves every +10 °C, so the window effectively doubles.
    pub fn effective_window(&self, trefw_seconds: f64, celsius: f64) -> f64 {
        trefw_seconds * 2f64.powf((celsius - self.reference_celsius) / 10.0)
    }

    /// The retention time (seconds at the reference temperature) of the
    /// cell with global index `cell`. Deterministic per (chip, cell).
    pub fn retention_seconds(&self, cell: u64) -> f64 {
        let z = standard_normal_from_hash(mix64(
            self.chip_seed ^ cell.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ));
        (self.mu + self.sigma * z).exp()
    }

    /// Does this CHARGED cell decay within a refresh window of
    /// `trefw_seconds` at `celsius`?
    #[inline]
    pub fn fails(&self, cell: u64, trefw_seconds: f64, celsius: f64) -> bool {
        self.retention_seconds(cell) < self.effective_window(trefw_seconds, celsius)
    }

    /// The model's expected raw bit error rate among CHARGED cells: the
    /// fraction of cells whose retention time is below the effective
    /// window.
    pub fn expected_ber(&self, trefw_seconds: f64, celsius: f64) -> f64 {
        let t = self.effective_window(trefw_seconds, celsius);
        if t <= 0.0 {
            return 0.0;
        }
        standard_normal_cdf((t.ln() - self.mu) / self.sigma)
    }

    /// Smallest refresh window (seconds) at `celsius` whose expected BER
    /// reaches `target_ber` — used by experiment planners to pick sweeps.
    pub fn window_for_ber(&self, target_ber: f64, celsius: f64) -> f64 {
        assert!((0.0..0.5).contains(&target_ber) && target_ber > 0.0);
        let z = standard_normal_quantile(target_ber);
        let t_ref = (self.mu + self.sigma * z).exp();
        t_ref / 2f64.powf((celsius - self.reference_celsius) / 10.0)
    }
}

/// Rare bidirectional bit flips from transient mechanisms (particle
/// strikes, variable retention time, voltage noise — §5.2). Unlike
/// retention errors these are *not* repeatable: each trial draws fresh
/// flips.
#[derive(Clone, Copy, Debug)]
pub struct TransientNoise {
    /// Per-cell, per-trial flip probability (both directions).
    pub flip_probability: f64,
}

impl TransientNoise {
    /// No transient noise.
    pub fn none() -> Self {
        TransientNoise {
            flip_probability: 0.0,
        }
    }

    /// Does `cell` flip in trial `trial`? Deterministic per
    /// (seed, trial, cell) so experiments are reproducible.
    #[inline]
    pub fn flips(&self, seed: u64, trial: u64, cell: u64) -> bool {
        if self.flip_probability <= 0.0 {
            return false;
        }
        let h = mix64(
            seed ^ trial.wrapping_mul(0xD6E8_FEB8_6659_FD93)
                ^ cell.wrapping_mul(0xA076_1D64_78BD_642F),
        );
        (h as f64 / u64::MAX as f64) < self.flip_probability
    }
}

/// SplitMix64 finalizer: a high-quality 64-bit mixing function.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A standard-normal sample derived from a hash via Box–Muller (accurate
/// far into the tails, which matters for the 10⁻⁷ calibration point).
fn standard_normal_from_hash(h: u64) -> f64 {
    let u1 = ((h >> 11) as f64 + 1.0) / (1u64 << 53) as f64; // (0, 1]
    let h2 = mix64(h ^ 0x5851_F42D_4C95_7F2D);
    let u2 = (h2 >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Φ(x): standard normal CDF via the complementary error function
/// (Abramowitz–Stegun 7.1.26 rational approximation, |ε| < 1.5·10⁻⁷).
pub(crate) fn standard_normal_cdf(x: f64) -> f64 {
    0.5 * erfc_as(-x / std::f64::consts::SQRT_2)
}

fn erfc_as(x: f64) -> f64 {
    let sign_neg = x < 0.0;
    let ax = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * ax);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    let erf = 1.0 - poly * (-ax * ax).exp();
    let erfc = 1.0 - erf;
    if sign_neg {
        2.0 - erfc
    } else {
        erfc
    }
}

/// Φ⁻¹(p): standard normal quantile (Acklam's rational approximation,
/// relative error < 1.15·10⁻⁹).
pub(crate) fn standard_normal_quantile(p: f64) -> f64 {
    assert!((0.0..1.0).contains(&p) && p > 0.0, "p must be in (0, 1)");
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    let p_low = 0.02425;
    if p < p_low {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - p_low {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -standard_normal_quantile(1.0 - p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_points_are_respected() {
        let m = RetentionModel::paper_calibrated(1);
        let ber_2min = m.expected_ber(120.0, 80.0);
        let ber_22min = m.expected_ber(1320.0, 80.0);
        assert!(
            (5e-8..2e-7).contains(&ber_2min),
            "2-minute BER {ber_2min:e} out of expected range"
        );
        assert!(
            (5e-4..2e-3).contains(&ber_22min),
            "22-minute BER {ber_22min:e} out of expected range"
        );
    }

    #[test]
    fn ber_is_monotone_in_window_and_temperature() {
        let m = RetentionModel::paper_calibrated(3);
        assert!(m.expected_ber(600.0, 80.0) > m.expected_ber(300.0, 80.0));
        assert!(m.expected_ber(300.0, 90.0) > m.expected_ber(300.0, 80.0));
        assert!(m.expected_ber(300.0, 40.0) < m.expected_ber(300.0, 80.0));
    }

    #[test]
    fn failures_are_repeatable() {
        // §3.2 property 2: the same cell gives the same answer every trial.
        let m = RetentionModel::paper_calibrated(9);
        for cell in 0..1000u64 {
            assert_eq!(m.fails(cell, 1320.0, 80.0), m.fails(cell, 1320.0, 80.0));
        }
    }

    #[test]
    fn failures_are_monotone_in_window() {
        // A cell that fails at a short window must fail at a longer one.
        let m = RetentionModel::paper_calibrated(11);
        let mut any_failed = false;
        for cell in 0..200_000u64 {
            if m.fails(cell, 600.0, 80.0) {
                any_failed = true;
                assert!(m.fails(cell, 1320.0, 80.0), "cell {cell} not monotone");
            }
        }
        // At BER ≈ 1e-4, 200k cells should contain some failures.
        assert!(any_failed, "no failures sampled at a 10-minute window");
    }

    #[test]
    fn empirical_ber_matches_expectation() {
        let m = RetentionModel::paper_calibrated(5);
        let trefw = 1320.0;
        let n = 2_000_000u64;
        let failed = (0..n).filter(|&c| m.fails(c, trefw, 80.0)).count() as f64;
        let empirical = failed / n as f64;
        let expected = m.expected_ber(trefw, 80.0);
        assert!(
            (empirical / expected) > 0.7 && (empirical / expected) < 1.4,
            "empirical {empirical:e} vs expected {expected:e}"
        );
    }

    #[test]
    fn window_for_ber_inverts_expected_ber() {
        let m = RetentionModel::paper_calibrated(2);
        for &target in &[1e-6, 1e-5, 1e-4, 1e-3] {
            let w = m.window_for_ber(target, 80.0);
            let achieved = m.expected_ber(w, 80.0);
            assert!(
                (achieved / target - 1.0).abs() < 0.05,
                "target {target:e} got {achieved:e}"
            );
        }
    }

    #[test]
    fn different_chips_have_different_weak_cells() {
        let m1 = RetentionModel::paper_calibrated(100);
        let m2 = RetentionModel::paper_calibrated(101);
        let w1: Vec<u64> = (0..3_000_000u64)
            .filter(|&c| m1.fails(c, 1320.0, 80.0))
            .collect();
        let w2: Vec<u64> = (0..3_000_000u64)
            .filter(|&c| m2.fails(c, 1320.0, 80.0))
            .collect();
        assert!(!w1.is_empty() && !w2.is_empty());
        assert_ne!(w1, w2);
    }

    #[test]
    fn transient_noise_rate_is_roughly_right() {
        let noise = TransientNoise {
            flip_probability: 1e-3,
        };
        let n = 1_000_000u64;
        let flips = (0..n).filter(|&c| noise.flips(7, 0, c)).count() as f64;
        let rate = flips / n as f64;
        assert!((5e-4..2e-3).contains(&rate), "rate {rate:e}");
        // Different trials flip different cells (not repeatable).
        let t0: Vec<u64> = (0..100_000).filter(|&c| noise.flips(7, 0, c)).collect();
        let t1: Vec<u64> = (0..100_000).filter(|&c| noise.flips(7, 1, c)).collect();
        assert_ne!(t0, t1);
    }

    #[test]
    fn normal_cdf_and_quantile_are_inverses() {
        for &p in &[1e-7, 1e-4, 0.01, 0.3, 0.5, 0.9, 0.999] {
            let x = standard_normal_quantile(p);
            let back = standard_normal_cdf(x);
            assert!(
                (back - p).abs() < 2e-4 + p * 0.15,
                "p={p:e} x={x} back={back:e}"
            );
        }
    }
}
