//! True- and anti-cell encodings.

/// How a cell encodes logical data in capacitor charge (§3.1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CellType {
    /// Data '1' is stored as a CHARGED capacitor.
    True,
    /// Data '1' is stored as a DISCHARGED capacitor.
    Anti,
}

impl CellType {
    /// Charge level (true = CHARGED) for a logical bit in this cell.
    #[inline]
    pub fn charge_of(self, bit: bool) -> bool {
        match self {
            CellType::True => bit,
            CellType::Anti => !bit,
        }
    }

    /// Logical bit value for a charge level in this cell.
    #[inline]
    pub fn bit_of(self, charged: bool) -> bool {
        // The mapping is an involution.
        self.charge_of(charged)
    }
}

/// The spatial arrangement of true- and anti-cells across rows.
///
/// The paper measures (§5.1.1): manufacturers A and B use exclusively
/// true-cells; manufacturer C uses 50 %/50 % true-/anti-cells in
/// alternating blocks of rows with block lengths 800, 824 and 1224.
///
/// # Examples
///
/// ```
/// use beer_dram::{CellLayout, CellType};
///
/// let layout = CellLayout::manufacturer_c();
/// assert_eq!(layout.cell_type_of_row(0), CellType::True);
/// assert_eq!(layout.cell_type_of_row(800), CellType::Anti);
/// assert_eq!(layout.cell_type_of_row(800 + 824), CellType::True);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CellLayout {
    /// Every cell is a true-cell (manufacturers A and B).
    AllTrue,
    /// Every cell is an anti-cell.
    AllAnti,
    /// Alternating true/anti blocks; block lengths cycle through the list.
    /// The first block is true-cells.
    AlternatingBlocks {
        /// Row counts of consecutive blocks, cycled.
        block_rows: Vec<usize>,
    },
}

impl CellLayout {
    /// The alternating-block layout measured on manufacturer C's chips.
    pub fn manufacturer_c() -> Self {
        CellLayout::AlternatingBlocks {
            block_rows: vec![800, 824, 1224],
        }
    }

    /// Cell type of every cell in the given global row.
    ///
    /// # Panics
    ///
    /// Panics if an `AlternatingBlocks` layout has an empty or zero-length
    /// block list.
    pub fn cell_type_of_row(&self, row: usize) -> CellType {
        match self {
            CellLayout::AllTrue => CellType::True,
            CellLayout::AllAnti => CellType::Anti,
            CellLayout::AlternatingBlocks { block_rows } => {
                assert!(
                    !block_rows.is_empty() && block_rows.iter().all(|&b| b > 0),
                    "block list must be non-empty with positive lengths"
                );
                let mut remaining = row;
                let mut block = 0usize;
                loop {
                    let len = block_rows[block % block_rows.len()];
                    if remaining < len {
                        return if block.is_multiple_of(2) {
                            CellType::True
                        } else {
                            CellType::Anti
                        };
                    }
                    remaining -= len;
                    block += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_mappings_are_involutions() {
        for ct in [CellType::True, CellType::Anti] {
            for bit in [false, true] {
                assert_eq!(ct.bit_of(ct.charge_of(bit)), bit);
            }
        }
    }

    #[test]
    fn true_cells_store_one_as_charged() {
        assert!(CellType::True.charge_of(true));
        assert!(!CellType::True.charge_of(false));
    }

    #[test]
    fn anti_cells_invert() {
        assert!(!CellType::Anti.charge_of(true));
        assert!(CellType::Anti.charge_of(false));
    }

    #[test]
    fn uniform_layouts() {
        assert_eq!(CellLayout::AllTrue.cell_type_of_row(12345), CellType::True);
        assert_eq!(CellLayout::AllAnti.cell_type_of_row(0), CellType::Anti);
    }

    #[test]
    fn manufacturer_c_block_boundaries() {
        let l = CellLayout::manufacturer_c();
        // Block 0: rows 0..800 true.
        assert_eq!(l.cell_type_of_row(799), CellType::True);
        // Block 1: rows 800..1624 anti.
        assert_eq!(l.cell_type_of_row(800), CellType::Anti);
        assert_eq!(l.cell_type_of_row(1623), CellType::Anti);
        // Block 2: rows 1624..2848 true.
        assert_eq!(l.cell_type_of_row(1624), CellType::True);
        assert_eq!(l.cell_type_of_row(2847), CellType::True);
        // Block 3 cycles back to length 800, anti.
        assert_eq!(l.cell_type_of_row(2848), CellType::Anti);
    }

    #[test]
    fn custom_blocks_alternate() {
        let l = CellLayout::AlternatingBlocks {
            block_rows: vec![2],
        };
        let types: Vec<CellType> = (0..6).map(|r| l.cell_type_of_row(r)).collect();
        assert_eq!(
            types,
            vec![
                CellType::True,
                CellType::True,
                CellType::Anti,
                CellType::Anti,
                CellType::True,
                CellType::True
            ]
        );
    }
}
