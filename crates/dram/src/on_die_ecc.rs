//! The hidden on-die ECC engine of a simulated chip.

use beer_ecc::LinearCode;
use beer_gf2::BitVec;

/// The on-die ECC mechanism: encodes every written dataword, silently
/// corrects on every read (Figure 2 of the paper).
///
/// A real chip exposes *nothing* of this machinery — no syndromes, no
/// correction signals, no parity access. The wrapper mirrors that: its
/// public API maps datawords to codewords and back with all metadata
/// discarded. The underlying [`LinearCode`] is reachable only through
/// [`OnDieEcc::reveal_code`], which exists so simulations can check BEER's
/// recovered function against ground truth (the validation the paper could
/// not perform on real chips, §6.1).
#[derive(Clone, Debug)]
pub struct OnDieEcc {
    code: LinearCode,
}

impl OnDieEcc {
    /// Wraps a code as an on-die ECC engine.
    pub fn new(code: LinearCode) -> Self {
        OnDieEcc { code }
    }

    /// Dataword bits.
    pub fn k(&self) -> usize {
        self.code.k()
    }

    /// Codeword bits.
    pub fn n(&self) -> usize {
        self.code.n()
    }

    /// Encodes a dataword into the stored codeword (`Fencode`).
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != k()`.
    pub fn encode(&self, data: &BitVec) -> BitVec {
        self.code.encode(data)
    }

    /// Decodes a (possibly erroneous) codeword into the post-correction
    /// dataword (`Fdecode`), discarding all correction metadata exactly as
    /// a real chip interface does.
    ///
    /// # Panics
    ///
    /// Panics if `codeword.len() != n()`.
    pub fn decode(&self, codeword: &BitVec) -> BitVec {
        self.code.decode(codeword).data
    }

    /// Ground-truth access to the secret ECC function.
    ///
    /// Only for validating recovery results in simulation — a real chip has
    /// no equivalent, which is the entire premise of BEER.
    pub fn reveal_code(&self) -> &LinearCode {
        &self.code
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beer_ecc::hamming;

    #[test]
    fn roundtrip_without_errors() {
        let ecc = OnDieEcc::new(hamming::eq1_code());
        let d = BitVec::from_bits(&[true, false, true, false]);
        assert_eq!(ecc.decode(&ecc.encode(&d)), d);
    }

    #[test]
    fn corrects_single_error_silently() {
        let ecc = OnDieEcc::new(hamming::eq1_code());
        let d = BitVec::from_bits(&[false, true, true, false]);
        let mut cw = ecc.encode(&d);
        cw.flip(5);
        // The interface yields corrected data with no hint anything happened.
        assert_eq!(ecc.decode(&cw), d);
    }

    #[test]
    fn dimensions_pass_through() {
        let ecc = OnDieEcc::new(hamming::shortened(32));
        assert_eq!(ecc.k(), 32);
        assert_eq!(ecc.n(), 38);
    }
}
