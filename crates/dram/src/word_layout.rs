//! Mapping between byte addresses and ECC datawords.
//!
//! The paper reverse engineers (§5.1.2) that all three manufacturers map
//! each contiguous 32-byte region to **two 16-byte ECC words interleaved at
//! byte granularity**. [`WordLayout::InterleavedPairs`] implements that
//! scheme for any word size; [`WordLayout::Contiguous`] is the naive
//! alternative, kept so the layout-probing experiment has something to
//! distinguish against.

/// Address ↔ dataword mapping of a chip.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WordLayout {
    /// Every `2·word_bytes` region holds two words; byte `j` of the region
    /// belongs to word `j % 2`, at offset `j / 2` (the measured LPDDR4
    /// layout with `word_bytes = 16`).
    InterleavedPairs {
        /// Bytes per ECC dataword.
        word_bytes: usize,
    },
    /// Words are laid out back to back.
    Contiguous {
        /// Bytes per ECC dataword.
        word_bytes: usize,
    },
}

impl WordLayout {
    /// Bytes per dataword.
    pub fn word_bytes(&self) -> usize {
        match *self {
            WordLayout::InterleavedPairs { word_bytes } | WordLayout::Contiguous { word_bytes } => {
                word_bytes
            }
        }
    }

    /// Maps a byte address to `(word_index, byte_within_word)`.
    pub fn locate(&self, addr: usize) -> (usize, usize) {
        let w = self.word_bytes();
        match *self {
            WordLayout::InterleavedPairs { .. } => {
                let region = addr / (2 * w);
                let offset = addr % (2 * w);
                (2 * region + offset % 2, offset / 2)
            }
            WordLayout::Contiguous { .. } => (addr / w, addr % w),
        }
    }

    /// Inverse of [`WordLayout::locate`].
    ///
    /// # Panics
    ///
    /// Panics if `byte >= word_bytes()`.
    pub fn addr_of(&self, word_index: usize, byte: usize) -> usize {
        let w = self.word_bytes();
        assert!(byte < w, "byte offset {byte} out of word range");
        match *self {
            WordLayout::InterleavedPairs { .. } => {
                let region = word_index / 2;
                region * 2 * w + byte * 2 + word_index % 2
            }
            WordLayout::Contiguous { .. } => word_index * w + byte,
        }
    }

    /// The dataword bit index of an addressed bit: `(addr, bit_in_byte)` →
    /// `(word_index, bit_within_word)`.
    pub fn locate_bit(&self, addr: usize, bit_in_byte: usize) -> (usize, usize) {
        let (word, byte) = self.locate(addr);
        (word, byte * 8 + bit_in_byte)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interleaved_matches_paper_description() {
        // 32-byte region, two 16-byte words, byte-granular interleave.
        let l = WordLayout::InterleavedPairs { word_bytes: 16 };
        assert_eq!(l.locate(0), (0, 0));
        assert_eq!(l.locate(1), (1, 0));
        assert_eq!(l.locate(2), (0, 1));
        assert_eq!(l.locate(3), (1, 1));
        assert_eq!(l.locate(30), (0, 15));
        assert_eq!(l.locate(31), (1, 15));
        assert_eq!(l.locate(32), (2, 0));
    }

    #[test]
    fn contiguous_is_straightforward() {
        let l = WordLayout::Contiguous { word_bytes: 16 };
        assert_eq!(l.locate(0), (0, 0));
        assert_eq!(l.locate(15), (0, 15));
        assert_eq!(l.locate(16), (1, 0));
    }

    #[test]
    fn locate_addr_roundtrip() {
        for layout in [
            WordLayout::InterleavedPairs { word_bytes: 16 },
            WordLayout::Contiguous { word_bytes: 16 },
            WordLayout::InterleavedPairs { word_bytes: 4 },
        ] {
            for addr in 0..256 {
                let (word, byte) = layout.locate(addr);
                assert_eq!(layout.addr_of(word, byte), addr, "{layout:?} addr {addr}");
            }
        }
    }

    #[test]
    fn every_word_gets_full_byte_set() {
        let l = WordLayout::InterleavedPairs { word_bytes: 16 };
        let mut seen = vec![vec![false; 16]; 2];
        for addr in 0..32 {
            let (word, byte) = l.locate(addr);
            assert!(!seen[word][byte]);
            seen[word][byte] = true;
        }
        assert!(seen.iter().flatten().all(|&b| b));
    }

    #[test]
    fn locate_bit_expands_bytes() {
        let l = WordLayout::InterleavedPairs { word_bytes: 16 };
        assert_eq!(l.locate_bit(2, 3), (0, 11)); // byte 1 of word 0, bit 3
        assert_eq!(l.locate_bit(1, 0), (1, 0));
    }
}
