//! Chip geometry: how byte addresses map onto banks and rows.

/// Physical organization of a simulated chip.
///
/// The reproduction only needs the row structure (anti-cell layouts and the
/// paper's "one cell per row" probe are row-based); banks are modeled for
/// address-layout fidelity.
///
/// # Examples
///
/// ```
/// use beer_dram::Geometry;
///
/// let g = Geometry::new(2, 128, 256);
/// assert_eq!(g.total_bytes(), 2 * 128 * 256);
/// assert_eq!(g.row_of_addr(256), 1);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Geometry {
    banks: usize,
    rows_per_bank: usize,
    bytes_per_row: usize,
}

impl Geometry {
    /// Creates a geometry.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or `bytes_per_row` is not a multiple
    /// of 32 (the paper's ECC-word pair granularity).
    pub fn new(banks: usize, rows_per_bank: usize, bytes_per_row: usize) -> Self {
        assert!(banks > 0 && rows_per_bank > 0 && bytes_per_row > 0);
        assert!(
            bytes_per_row.is_multiple_of(32),
            "rows must hold whole 32-byte ECC-word pairs"
        );
        Geometry {
            banks,
            rows_per_bank,
            bytes_per_row,
        }
    }

    /// Number of banks.
    pub fn banks(&self) -> usize {
        self.banks
    }

    /// Rows per bank.
    pub fn rows_per_bank(&self) -> usize {
        self.rows_per_bank
    }

    /// Bytes per row.
    pub fn bytes_per_row(&self) -> usize {
        self.bytes_per_row
    }

    /// Total rows across all banks.
    pub fn total_rows(&self) -> usize {
        self.banks * self.rows_per_bank
    }

    /// Total data bytes of the chip.
    pub fn total_bytes(&self) -> usize {
        self.total_rows() * self.bytes_per_row
    }

    /// Global row index of a byte address (rows are laid out consecutively
    /// bank by bank).
    ///
    /// # Panics
    ///
    /// Panics if the address is out of range.
    pub fn row_of_addr(&self, addr: usize) -> usize {
        assert!(addr < self.total_bytes(), "address {addr:#x} out of range");
        addr / self.bytes_per_row
    }

    /// Bank of a global row index.
    ///
    /// # Panics
    ///
    /// Panics if the row is out of range.
    pub fn bank_of_row(&self, row: usize) -> usize {
        assert!(row < self.total_rows(), "row {row} out of range");
        row / self.rows_per_bank
    }

    /// First byte address of a global row.
    ///
    /// # Panics
    ///
    /// Panics if the row is out of range.
    pub fn addr_of_row(&self, row: usize) -> usize {
        assert!(row < self.total_rows(), "row {row} out of range");
        row * self.bytes_per_row
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_multiply_out() {
        let g = Geometry::new(4, 16, 64);
        assert_eq!(g.total_rows(), 64);
        assert_eq!(g.total_bytes(), 4096);
    }

    #[test]
    fn row_addr_roundtrip() {
        let g = Geometry::new(2, 8, 32);
        for row in 0..g.total_rows() {
            let addr = g.addr_of_row(row);
            assert_eq!(g.row_of_addr(addr), row);
            assert_eq!(g.row_of_addr(addr + 31), row);
        }
    }

    #[test]
    fn bank_boundaries() {
        let g = Geometry::new(2, 8, 32);
        assert_eq!(g.bank_of_row(7), 0);
        assert_eq!(g.bank_of_row(8), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_addr() {
        Geometry::new(1, 1, 32).row_of_addr(32);
    }

    #[test]
    #[should_panic(expected = "32-byte")]
    fn rejects_unaligned_rows() {
        Geometry::new(1, 1, 48);
    }
}
