//! The simulated DRAM chip.

use crate::cells::{CellLayout, CellType};
use crate::geometry::Geometry;
use crate::on_die_ecc::OnDieEcc;
use crate::retention::{RetentionModel, TransientNoise};
use crate::word_layout::WordLayout;
use beer_ecc::design::{vendor_code, Manufacturer};
use beer_gf2::BitVec;
use std::collections::BTreeSet;

/// The externally visible interface of a DRAM chip under test.
///
/// This is everything BEER is allowed to touch (paper §5): byte-granular
/// data access through the hidden on-die ECC, refresh-window control, and
/// ambient-temperature control. A real deployment would implement this
/// trait on top of an FPGA test platform; the reproduction implements it
/// with [`SimChip`].
pub trait DramInterface {
    /// Physical geometry (knowable from the datasheet).
    fn geometry(&self) -> Geometry;

    /// Writes bytes starting at `addr` (read-modify-write through on-die
    /// ECC for partial words, exactly like a real chip).
    fn write_bytes(&mut self, addr: usize, data: &[u8]);

    /// Reads `len` bytes starting at `addr` through the on-die ECC decoder.
    fn read_bytes(&self, addr: usize, len: usize) -> Vec<u8>;

    /// Pauses refresh for `trefw_seconds` at the current temperature,
    /// letting data-retention errors accumulate in the stored charges
    /// (§4.2.2: the mechanism BEER uses to induce uncorrectable errors).
    fn retention_test(&mut self, trefw_seconds: f64);

    /// Sets the ambient temperature in °C.
    fn set_temperature(&mut self, celsius: f64);

    /// Current ambient temperature in °C.
    fn temperature(&self) -> f64;

    /// Positions the chip's trial counter (the index that seeds per-trial
    /// transient noise) so a batch scheduler can run retention tests out of
    /// order yet bit-identically to a serial sweep. Real hardware has no
    /// such counter; the default is a no-op.
    fn seek_trial(&mut self, _trial: u64) {}

    /// Current position of the trial counter (see
    /// [`DramInterface::seek_trial`]): schedulers resume from here so
    /// successive collections draw *independent* noise rather than
    /// replaying the same stream. Real hardware reports 0.
    fn trial_counter(&self) -> u64 {
        0
    }

    /// Clones this chip into an independent, identically configured
    /// instance for a parallel worker, if the device supports it. All cells
    /// start DISCHARGED, exactly like a fresh [`SimChip`]; collection
    /// drivers rewrite the full array before every trial, so worker forks
    /// observe the same errors as the original chip. A physical chip cannot
    /// be forked, hence the `None` default.
    fn fork(&self) -> Option<Box<dyn DramInterface + Send>> {
        None
    }
}

/// Configuration of a [`SimChip`].
///
/// `manufacturer` and `model_seed` determine the secret ECC function (chips
/// of the same model share it, §5.1.3); `chip_seed` determines this
/// individual chip's weak cells.
#[derive(Clone, Debug)]
pub struct ChipConfig {
    /// Which manufacturer's design style the chip uses.
    pub manufacturer: Manufacturer,
    /// Model number stand-in: same model ⇒ same ECC function.
    pub model_seed: u64,
    /// Individual chip identity: governs which cells are weak.
    pub chip_seed: u64,
    /// Dataword size in bytes (16 for the LPDDR4 chips the paper tests).
    pub word_bytes: usize,
    /// Bank/row organization.
    pub geometry: Geometry,
    /// True/anti-cell arrangement.
    pub cell_layout: CellLayout,
    /// Dataword-to-address mapping.
    pub word_layout: WordLayout,
    /// Data-retention error model.
    pub retention: RetentionModel,
    /// Transient (non-retention) noise model.
    pub noise: TransientNoise,
    /// Initial ambient temperature in °C.
    pub initial_celsius: f64,
}

impl ChipConfig {
    /// A small chip for unit tests: 32-bit datawords, 8 KiB, all true
    /// cells, manufacturer B's deterministic design.
    pub fn small_test_chip(chip_seed: u64) -> Self {
        ChipConfig {
            manufacturer: Manufacturer::B,
            model_seed: 0,
            chip_seed,
            word_bytes: 4,
            geometry: Geometry::new(1, 64, 128),
            cell_layout: CellLayout::AllTrue,
            word_layout: WordLayout::InterleavedPairs { word_bytes: 4 },
            retention: RetentionModel::paper_calibrated(chip_seed),
            noise: TransientNoise::none(),
            initial_celsius: 80.0,
        }
    }

    /// An LPDDR4-like chip as characterized in §5.1: 128-bit datawords in
    /// byte-interleaved 16-byte pairs; manufacturer C additionally gets its
    /// measured alternating true/anti-cell block layout.
    pub fn lpddr4_like(manufacturer: Manufacturer, model_seed: u64, chip_seed: u64) -> Self {
        let cell_layout = match manufacturer {
            Manufacturer::A | Manufacturer::B => CellLayout::AllTrue,
            Manufacturer::C => CellLayout::manufacturer_c(),
        };
        ChipConfig {
            manufacturer,
            model_seed,
            chip_seed,
            word_bytes: 16,
            geometry: Geometry::new(2, 2048, 1024),
            cell_layout,
            word_layout: WordLayout::InterleavedPairs { word_bytes: 16 },
            retention: RetentionModel::paper_calibrated(chip_seed),
            noise: TransientNoise::none(),
            initial_celsius: 80.0,
        }
    }

    /// Returns the configuration with a different geometry.
    pub fn with_geometry(mut self, geometry: Geometry) -> Self {
        self.geometry = geometry;
        self
    }

    /// Returns the configuration with transient noise enabled.
    pub fn with_noise(mut self, noise: TransientNoise) -> Self {
        self.noise = noise;
        self
    }

    /// Returns the configuration with a different dataword size (bytes).
    pub fn with_word_bytes(mut self, word_bytes: usize) -> Self {
        self.word_bytes = word_bytes;
        self.word_layout = match self.word_layout {
            WordLayout::InterleavedPairs { .. } => WordLayout::InterleavedPairs { word_bytes },
            WordLayout::Contiguous { .. } => WordLayout::Contiguous { word_bytes },
        };
        self
    }

    /// Returns the configuration with a different word layout.
    pub fn with_word_layout(mut self, word_layout: WordLayout) -> Self {
        self.word_layout = word_layout;
        self
    }
}

/// A simulated DRAM chip with on-die ECC (see the crate docs for the
/// modeled behaviours and DESIGN.md §3 for why this substitutes for the
/// paper's real chips).
///
/// # Examples
///
/// ```
/// use beer_dram::{ChipConfig, DramInterface, SimChip};
///
/// let mut chip = SimChip::new(ChipConfig::small_test_chip(1));
/// let pattern = vec![0xFFu8; 64];
/// chip.write_bytes(0, &pattern);
/// chip.set_temperature(80.0);
/// chip.retention_test(20.0 * 60.0); // pause refresh for 20 minutes
/// let read = chip.read_bytes(0, 64);
/// // Retention errors may now be visible wherever ECC could not correct.
/// assert_eq!(read.len(), 64);
/// ```
pub struct SimChip {
    config: ChipConfig,
    ecc: OnDieEcc,
    /// Charge state of every cell, packed per codeword.
    charges: Vec<u64>,
    words_per_cw: usize,
    num_words: usize,
    celsius: f64,
    trial: u64,
}

impl SimChip {
    /// Builds the chip and initializes every cell to the DISCHARGED state.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly into datawords.
    pub fn new(config: ChipConfig) -> Self {
        let k = config.word_bytes * 8;
        let code = vendor_code(config.manufacturer, k, config.model_seed);
        let ecc = OnDieEcc::new(code);
        let total = config.geometry.total_bytes();
        assert!(
            total.is_multiple_of(config.word_bytes),
            "geometry does not hold whole datawords"
        );
        let num_words = total / config.word_bytes;
        let words_per_cw = ecc.n().div_ceil(64);
        let celsius = config.initial_celsius;
        SimChip {
            config,
            ecc,
            charges: vec![0; num_words * words_per_cw],
            words_per_cw,
            num_words,
            celsius,
            trial: 0,
        }
    }

    /// Number of ECC datawords on the chip.
    pub fn num_words(&self) -> usize {
        self.num_words
    }

    /// Dataword size in bits.
    pub fn k(&self) -> usize {
        self.ecc.k()
    }

    /// Codeword size in bits (includes the hidden parity bits).
    pub fn n(&self) -> usize {
        self.ecc.n()
    }

    /// The chip's configuration.
    pub fn config(&self) -> &ChipConfig {
        &self.config
    }

    /// Ground-truth access to the secret ECC function — only for verifying
    /// recovery results in simulation (see [`OnDieEcc::reveal_code`]).
    pub fn reveal_code(&self) -> &beer_ecc::LinearCode {
        self.ecc.reveal_code()
    }

    /// Expected raw (pre-correction) bit error rate among CHARGED cells for
    /// a refresh window at the current temperature.
    pub fn expected_ber(&self, trefw_seconds: f64) -> f64 {
        self.config
            .retention
            .expected_ber(trefw_seconds, self.celsius)
    }

    /// Cell type of all cells in the word (a word never straddles rows,
    /// paper footnote 8).
    fn cell_type_of_word(&self, word: usize) -> CellType {
        let addr = self.config.word_layout.addr_of(word, 0);
        let row = self.config.geometry.row_of_addr(addr);
        self.config.cell_layout.cell_type_of_row(row)
    }

    #[inline]
    fn charge(&self, word: usize, bit: usize) -> bool {
        let w = self.charges[word * self.words_per_cw + bit / 64];
        w >> (bit % 64) & 1 == 1
    }

    #[inline]
    fn set_charge(&mut self, word: usize, bit: usize, value: bool) {
        let slot = &mut self.charges[word * self.words_per_cw + bit / 64];
        let mask = 1u64 << (bit % 64);
        if value {
            *slot |= mask;
        } else {
            *slot &= !mask;
        }
    }

    /// The stored codeword of a word, translated from charges to logical
    /// bits via the word's cell type.
    fn stored_codeword(&self, word: usize) -> BitVec {
        let ct = self.cell_type_of_word(word);
        let n = self.ecc.n();
        let mut cw = BitVec::zeros(n);
        for bit in 0..n {
            if ct.bit_of(self.charge(word, bit)) {
                cw.set(bit, true);
            }
        }
        cw
    }

    fn store_codeword(&mut self, word: usize, cw: &BitVec) {
        let ct = self.cell_type_of_word(word);
        for bit in 0..self.ecc.n() {
            self.set_charge(word, bit, ct.charge_of(cw.get(bit)));
        }
    }

    /// Post-correction dataword of `word`.
    fn read_word(&self, word: usize) -> BitVec {
        self.ecc.decode(&self.stored_codeword(word))
    }

    /// Encodes and stores a full dataword.
    fn write_word(&mut self, word: usize, data: &BitVec) {
        let cw = self.ecc.encode(data);
        self.store_codeword(word, &cw);
    }

    /// Writes a dataword directly by index (bypasses address arithmetic but
    /// still goes through the ECC encoder — a convenience for experiment
    /// drivers that already know the word layout).
    ///
    /// # Panics
    ///
    /// Panics if `word >= num_words()` or `data.len() != k()`.
    pub fn write_dataword(&mut self, word: usize, data: &BitVec) {
        assert!(word < self.num_words, "word index out of range");
        self.write_word(word, data);
    }

    /// Reads the post-correction dataword by index (see
    /// [`SimChip::write_dataword`]).
    ///
    /// # Panics
    ///
    /// Panics if `word >= num_words()`.
    pub fn read_dataword(&self, word: usize) -> BitVec {
        assert!(word < self.num_words, "word index out of range");
        self.read_word(word)
    }
}

/// Converts `len` bytes of a byte slice into a bit vector (bit `i` of byte
/// `b` becomes vector bit `8·b + i`).
fn bytes_to_bits(bytes: &[u8]) -> BitVec {
    let mut v = BitVec::zeros(bytes.len() * 8);
    for (bi, &byte) in bytes.iter().enumerate() {
        for i in 0..8 {
            if byte >> i & 1 == 1 {
                v.set(bi * 8 + i, true);
            }
        }
    }
    v
}

fn bits_to_bytes(bits: &BitVec) -> Vec<u8> {
    let mut out = vec![0u8; bits.len().div_ceil(8)];
    for i in bits.iter_ones() {
        out[i / 8] |= 1 << (i % 8);
    }
    out
}

impl DramInterface for SimChip {
    fn geometry(&self) -> Geometry {
        self.config.geometry
    }

    fn write_bytes(&mut self, addr: usize, data: &[u8]) {
        assert!(
            addr + data.len() <= self.config.geometry.total_bytes(),
            "write beyond end of chip"
        );
        let layout = self.config.word_layout;
        let wb = self.config.word_bytes;
        // Group the incoming bytes by dataword.
        let mut touched: BTreeSet<usize> = BTreeSet::new();
        for i in 0..data.len() {
            touched.insert(layout.locate(addr + i).0);
        }
        for word in touched {
            // Collect the bytes of this word covered by the write.
            let mut covered: Vec<(usize, u8)> = Vec::new();
            for byte in 0..wb {
                let a = layout.addr_of(word, byte);
                if a >= addr && a < addr + data.len() {
                    covered.push((byte, data[a - addr]));
                }
            }
            let new_data = if covered.len() == wb {
                // Full overwrite: no read-modify-write needed.
                let mut bytes = vec![0u8; wb];
                for (byte, v) in covered {
                    bytes[byte] = v;
                }
                bytes_to_bits(&bytes)
            } else {
                // Partial write: read-modify-write through the decoder,
                // exactly like a real on-die-ECC chip.
                let mut current = bits_to_bytes(&self.read_word(word));
                for (byte, v) in covered {
                    current[byte] = v;
                }
                bytes_to_bits(&current[..wb])
            };
            self.write_word(word, &new_data);
        }
    }

    fn read_bytes(&self, addr: usize, len: usize) -> Vec<u8> {
        assert!(
            addr + len <= self.config.geometry.total_bytes(),
            "read beyond end of chip"
        );
        let layout = self.config.word_layout;
        let mut out = vec![0u8; len];
        let mut cache: Option<(usize, Vec<u8>)> = None;
        for (i, slot) in out.iter_mut().enumerate() {
            let (word, byte) = layout.locate(addr + i);
            let bytes = match &cache {
                Some((w, b)) if *w == word => b,
                _ => {
                    cache = Some((word, bits_to_bytes(&self.read_word(word))));
                    &cache.as_ref().expect("just set").1
                }
            };
            *slot = bytes[byte];
        }
        out
    }

    fn retention_test(&mut self, trefw_seconds: f64) {
        let n = self.ecc.n();
        let retention = self.config.retention;
        let noise = self.config.noise;
        let seed = self.config.chip_seed;
        let trial = self.trial;
        self.trial += 1;
        for word in 0..self.num_words {
            for bit in 0..n {
                let cell = (word * n + bit) as u64;
                // Unidirectional decay: only CHARGED cells can fail (§3.2).
                if self.charge(word, bit) && retention.fails(cell, trefw_seconds, self.celsius) {
                    self.set_charge(word, bit, false);
                }
                // Rare transient noise is bidirectional (§5.2).
                if noise.flips(seed, trial, cell) {
                    let cur = self.charge(word, bit);
                    self.set_charge(word, bit, !cur);
                }
            }
        }
    }

    fn set_temperature(&mut self, celsius: f64) {
        self.celsius = celsius;
    }

    fn temperature(&self) -> f64 {
        self.celsius
    }

    fn seek_trial(&mut self, trial: u64) {
        self.trial = trial;
    }

    fn trial_counter(&self) -> u64 {
        self.trial
    }

    fn fork(&self) -> Option<Box<dyn DramInterface + Send>> {
        let mut clone = SimChip::new(self.config.clone());
        clone.celsius = self.celsius;
        clone.trial = self.trial;
        Some(Box::new(clone))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_chip(seed: u64) -> SimChip {
        SimChip::new(ChipConfig::small_test_chip(seed))
    }

    #[test]
    fn write_read_roundtrip_bytes() {
        let mut chip = test_chip(1);
        let data: Vec<u8> = (0..128).map(|i| (i * 37 % 256) as u8).collect();
        chip.write_bytes(0, &data);
        assert_eq!(chip.read_bytes(0, 128), data);
    }

    #[test]
    fn unaligned_partial_writes_are_rmw() {
        let mut chip = test_chip(2);
        chip.write_bytes(0, &[0xFF; 16]);
        chip.write_bytes(3, &[0x00, 0x11, 0x22]);
        let read = chip.read_bytes(0, 16);
        assert_eq!(&read[0..3], &[0xFF, 0xFF, 0xFF]);
        assert_eq!(&read[3..6], &[0x00, 0x11, 0x22]);
        assert_eq!(&read[6..16], &[0xFF; 10]);
    }

    #[test]
    fn no_errors_without_retention_pause() {
        let mut chip = test_chip(3);
        let data = vec![0xA5u8; 256];
        chip.write_bytes(0, &data);
        assert_eq!(chip.read_bytes(0, 256), data);
    }

    #[test]
    fn short_pause_is_fully_corrected_or_clean() {
        // At a 2-minute window the expected raw BER is ~1e-7: on an 8 KiB
        // chip virtually no cell fails, and any single failure per word is
        // corrected by the on-die ECC.
        let mut chip = test_chip(4);
        let data = vec![0xFFu8; 8192];
        chip.write_bytes(0, &data);
        chip.retention_test(120.0);
        assert_eq!(chip.read_bytes(0, 8192), data);
    }

    #[test]
    fn long_pause_produces_uncorrectable_errors() {
        // Hours without refresh at 80 °C must corrupt data beyond what the
        // SEC code can repair.
        let mut chip = test_chip(5);
        let data = vec![0xFFu8; 8192];
        chip.write_bytes(0, &data);
        chip.retention_test(3600.0 * 24.0);
        let read = chip.read_bytes(0, 8192);
        assert_ne!(read, data, "24h retention pause produced zero errors");
    }

    #[test]
    fn retention_errors_are_repeatable() {
        let trefw = 3600.0;
        let observe = |seed: u64| -> Vec<u8> {
            let mut chip = test_chip(seed);
            chip.write_bytes(0, &vec![0xFFu8; 8192]);
            chip.retention_test(trefw);
            chip.read_bytes(0, 8192)
        };
        assert_eq!(observe(6), observe(6), "same chip must fail identically");
        assert_ne!(observe(6), observe(7), "different chips must differ");
    }

    #[test]
    fn true_cells_decay_ones_to_zeros_only() {
        // With all-true cells and an all-ones pattern, every post-correction
        // change must be 1 → 0 … except where the decoder miscorrected a 0
        // bit — which cannot happen here because all data bits are 1, so
        // any flip observed in data is 1 → 0.
        let mut chip = test_chip(8);
        chip.write_bytes(0, &vec![0xFFu8; 8192]);
        chip.retention_test(3600.0 * 4.0);
        let read = chip.read_bytes(0, 8192);
        // All-zero pattern in true cells never decays at all.
        let mut chip2 = test_chip(8);
        chip2.write_bytes(0, &vec![0x00u8; 8192]);
        chip2.retention_test(3600.0 * 4.0);
        assert_eq!(
            chip2.read_bytes(0, 8192),
            vec![0x00u8; 8192],
            "zero pattern in true cells must be immune to retention errors"
        );
        // Sanity: the all-ones pattern did see decay at this window.
        assert_ne!(read, vec![0xFFu8; 8192]);
    }

    #[test]
    fn anti_cell_regions_decay_zeros_to_ones() {
        let config = ChipConfig {
            cell_layout: CellLayout::AllAnti,
            ..ChipConfig::small_test_chip(9)
        };
        let count_errors = |pattern: u8| -> usize {
            let mut chip = SimChip::new(config.clone());
            chip.write_bytes(0, &vec![pattern; 8192]);
            chip.retention_test(3600.0 * 4.0);
            chip.read_bytes(0, 8192)
                .iter()
                .map(|b| (b ^ pattern).count_ones() as usize)
                .sum()
        };
        // 0-data in anti cells is CHARGED: heavy decay.
        let zeros = count_errors(0x00);
        assert!(zeros > 0, "anti cells: 0-data is CHARGED and must decay");
        // 1-data leaves only (some) parity cells charged; far fewer errors
        // reach the data (only via parity-driven miscorrections). Note the
        // all-ones *dataword* is NOT fully immune — immunity requires the
        // all-DISCHARGED *codeword*.
        let ones = count_errors(0xFF);
        assert!(
            ones < zeros / 4,
            "expected far fewer errors with discharged data cells: {ones} vs {zeros}"
        );
    }

    #[test]
    fn temperature_accelerates_failures() {
        let count_errors = |celsius: f64| -> usize {
            let mut chip = test_chip(10);
            chip.set_temperature(celsius);
            chip.write_bytes(0, &vec![0xFFu8; 8192]);
            chip.retention_test(1800.0);
            chip.read_bytes(0, 8192)
                .iter()
                .map(|b| (b ^ 0xFF).count_ones() as usize)
                .sum()
        };
        assert!(count_errors(95.0) > count_errors(45.0));
    }

    #[test]
    fn same_model_chips_share_the_ecc_function() {
        let c1 = SimChip::new(ChipConfig::lpddr4_like(Manufacturer::A, 3, 100));
        let c2 = SimChip::new(ChipConfig::lpddr4_like(Manufacturer::A, 3, 200));
        let c3 = SimChip::new(ChipConfig::lpddr4_like(Manufacturer::A, 4, 100));
        assert_eq!(
            c1.reveal_code().parity_submatrix(),
            c2.reveal_code().parity_submatrix()
        );
        assert_ne!(
            c1.reveal_code().parity_submatrix(),
            c3.reveal_code().parity_submatrix()
        );
    }

    #[test]
    fn dataword_index_api_matches_byte_api() {
        let mut chip = test_chip(11);
        let data = bytes_to_bits(&[0xDE, 0xAD, 0xBE, 0xEF]);
        chip.write_dataword(2, &data);
        // Word 2 under interleaved pairs of 4 bytes: region 1, even offsets.
        let addr0 = chip.config().word_layout.addr_of(2, 0);
        let b = chip.read_bytes(addr0, 1);
        assert_eq!(b[0], 0xDE);
        assert_eq!(chip.read_dataword(2), data);
    }

    #[test]
    fn rewriting_clears_accumulated_errors() {
        let mut chip = test_chip(12);
        chip.write_bytes(0, &vec![0xFFu8; 8192]);
        chip.retention_test(3600.0 * 24.0);
        // Rewrite restores every cell.
        chip.write_bytes(0, &vec![0xFFu8; 8192]);
        assert_eq!(chip.read_bytes(0, 8192), vec![0xFFu8; 8192]);
    }

    #[test]
    fn forked_chip_fails_identically() {
        let mut chip = test_chip(14);
        let mut fork = chip.fork().expect("SimChip must be forkable");
        let data = vec![0xFFu8; 8192];
        chip.write_bytes(0, &data);
        fork.write_bytes(0, &data);
        chip.retention_test(3600.0);
        fork.retention_test(3600.0);
        assert_eq!(chip.read_bytes(0, 8192), fork.read_bytes(0, 8192));
    }

    #[test]
    fn seek_trial_replays_the_noise_stream() {
        let config = ChipConfig::small_test_chip(15).with_noise(TransientNoise {
            flip_probability: 1e-3,
        });
        let data = vec![0x00u8; 8192];
        // Serial run: trials 0 and 1 back to back; capture trial 1's view.
        let serial = {
            let mut chip = SimChip::new(config.clone());
            chip.write_bytes(0, &data);
            chip.retention_test(1.0);
            chip.write_bytes(0, &data);
            chip.retention_test(1.0);
            chip.read_bytes(0, 8192)
        };
        // Out-of-order worker: jump straight to trial 1.
        let seeked = {
            let mut chip = SimChip::new(config);
            chip.seek_trial(1);
            chip.write_bytes(0, &data);
            chip.retention_test(1.0);
            chip.read_bytes(0, 8192)
        };
        assert_eq!(
            serial, seeked,
            "trial seek must reproduce the serial stream"
        );
    }

    #[test]
    fn transient_noise_can_flip_against_the_gradient() {
        let config = ChipConfig::small_test_chip(13).with_noise(TransientNoise {
            flip_probability: 1e-3,
        });
        let mut chip = SimChip::new(config);
        // All-zero data in true cells: retention alone can never corrupt it.
        chip.write_bytes(0, &vec![0x00u8; 8192]);
        let mut any = false;
        for _ in 0..20 {
            chip.retention_test(1.0);
            if chip.read_bytes(0, 8192) != vec![0x00u8; 8192] {
                any = true;
                break;
            }
        }
        assert!(any, "transient noise never flipped any observable bit");
    }
}
