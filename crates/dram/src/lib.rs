//! Simulated DRAM chips with on-die ECC and data-retention errors.
//!
//! The BEER paper applies its methodology to 80 real LPDDR4 chips using a
//! temperature-controlled FPGA test platform. This crate is the
//! reproduction's substitute (DESIGN.md §3): a chip model that implements
//! exactly the externally visible behaviour BEER relies on:
//!
//! * byte-granular writes and reads that pass through a *hidden* on-die ECC
//!   encoder/decoder ([`OnDieEcc`], §3.3),
//! * data-retention errors that are controllable via refresh window and
//!   temperature, spatially uniform-random, and strictly unidirectional
//!   CHARGED → DISCHARGED (§3.2) — with deterministic per-cell retention
//!   times so errors are repeatable, as measured by prior work,
//! * true-/anti-cell layouts, including manufacturer C's alternating blocks
//!   of 800/824/1224 rows (§5.1.1),
//! * the byte-interleaved two-words-per-32-byte dataword layout that the
//!   paper reverse engineers (§5.1.2),
//! * rare bidirectional transient noise to exercise BEER's thresholding
//!   filter (§5.2).
//!
//! The only interface third-party code should use is [`DramInterface`];
//! everything inside [`SimChip`] (in particular the ECC function) is the
//! secret that BEER recovers.
//!
//! # Examples
//!
//! ```
//! use beer_dram::{ChipConfig, DramInterface, SimChip};
//!
//! let mut chip = SimChip::new(ChipConfig::small_test_chip(42));
//! chip.write_bytes(0, &[0xAB, 0xCD]);
//! assert_eq!(chip.read_bytes(0, 2), vec![0xAB, 0xCD]);
//! ```

mod cells;
mod chip;
mod geometry;
mod on_die_ecc;
mod rank_ecc;
mod retention;
mod word_layout;

pub use cells::{CellLayout, CellType};
pub use chip::{ChipConfig, DramInterface, SimChip};
pub use geometry::Geometry;
pub use on_die_ecc::OnDieEcc;
pub use rank_ecc::{ControllerReport, RankLevelEcc};
pub use retention::{RetentionModel, TransientNoise};
pub use word_layout::WordLayout;
