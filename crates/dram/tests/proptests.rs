//! Property-based tests for the simulated chip's external behaviour.

use beer_dram::{CellLayout, ChipConfig, DramInterface, Geometry, SimChip, WordLayout};
use proptest::prelude::*;

fn chip(seed: u64) -> SimChip {
    SimChip::new(ChipConfig::small_test_chip(seed).with_geometry(Geometry::new(1, 32, 64)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Writes followed by reads return exactly the written bytes at any
    /// alignment, including partial-word (read-modify-write) updates.
    #[test]
    fn byte_interface_roundtrips(
        seed in any::<u64>(),
        offset in 0usize..1024,
        data in prop::collection::vec(any::<u8>(), 1..128),
    ) {
        let mut c = chip(seed);
        let offset = offset.min(c.geometry().total_bytes() - data.len());
        c.write_bytes(offset, &data);
        prop_assert_eq!(c.read_bytes(offset, data.len()), data);
    }

    /// Overlapping writes behave like a byte array: the last write wins
    /// per byte.
    #[test]
    fn overlapping_writes_last_wins(
        seed in any::<u64>(),
        a in prop::collection::vec(any::<u8>(), 32),
        b in prop::collection::vec(any::<u8>(), 16),
        shift in 0usize..16,
    ) {
        let mut c = chip(seed);
        c.write_bytes(0, &a);
        c.write_bytes(shift, &b);
        let mut expect = a.clone();
        expect[shift..shift + 16].copy_from_slice(&b);
        prop_assert_eq!(c.read_bytes(0, 32), expect);
    }

    /// The all-zero pattern in a true-cell chip is immune to any retention
    /// pause: its codeword stores no charge anywhere.
    #[test]
    fn zero_pattern_is_retention_immune(
        seed in any::<u64>(),
        hours in 1u32..200,
    ) {
        let mut c = chip(seed);
        let len = c.geometry().total_bytes();
        c.write_bytes(0, &vec![0u8; len]);
        c.retention_test(hours as f64 * 3600.0);
        prop_assert_eq!(c.read_bytes(0, len), vec![0u8; len]);
    }

    /// Retention failures are deterministic per chip: two identical chips
    /// running the same schedule observe identical data.
    #[test]
    fn same_chip_same_errors(
        seed in any::<u64>(),
        pattern in any::<u8>(),
        window in 600u32..100_000,
    ) {
        let run = |s: u64| {
            let mut c = chip(s);
            let len = c.geometry().total_bytes();
            c.write_bytes(0, &vec![pattern; len]);
            c.retention_test(window as f64);
            c.read_bytes(0, len)
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    /// Observed error counts never decrease when the refresh window grows
    /// (per-cell retention times are fixed; decay is monotone in time).
    #[test]
    fn errors_monotone_in_window(seed in any::<u64>()) {
        let count = |window: f64| {
            let mut c = chip(seed);
            let len = c.geometry().total_bytes();
            c.write_bytes(0, &vec![0xFFu8; len]);
            c.retention_test(window);
            c.read_bytes(0, len)
                .iter()
                .map(|b| (b ^ 0xFF).count_ones() as usize)
                .sum::<usize>()
        };
        // Pre-correction errors are monotone; post-correction counts can
        // wobble slightly through the decoder, so compare an order of
        // magnitude apart.
        let short = count(1800.0);
        let long = count(1800.0 * 32.0);
        prop_assert!(long >= short, "short={short} long={long}");
    }

    /// Word layouts are bijections: every byte address maps to a unique
    /// (word, offset) and back.
    #[test]
    fn word_layouts_are_bijective(word_bytes in 1usize..32, addrs in 0usize..4096) {
        for layout in [
            WordLayout::InterleavedPairs { word_bytes },
            WordLayout::Contiguous { word_bytes },
        ] {
            let (w, b) = layout.locate(addrs);
            prop_assert_eq!(layout.addr_of(w, b), addrs, "{:?}", layout);
        }
    }

    /// Cell layouts tile the row space: alternating blocks repeat their
    /// cycle exactly.
    #[test]
    fn alternating_blocks_cycle(
        block in 1usize..64,
        row in 0usize..10_000,
    ) {
        let layout = CellLayout::AlternatingBlocks { block_rows: vec![block] };
        let expect_true = (row / block) % 2 == 0;
        prop_assert_eq!(
            layout.cell_type_of_row(row) == beer_dram::CellType::True,
            expect_true
        );
    }
}
