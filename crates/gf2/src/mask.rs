//! Compact syndrome masks for hot paths.

use crate::BitVec;
use std::fmt;

/// A syndrome (or parity-check matrix column) packed into a single `u64`.
///
/// BEER's inner loops — enumerating millions of retention-error patterns and
/// checking which miscorrections they can cause — operate on columns of the
/// parity sub-matrix `P`, which has at most `n - k ≤ 64` rows for every code
/// the paper considers (8 parity bits for the 128-bit on-die ECC words, 8
/// for 247-bit codes). `SynMask` keeps those columns in registers.
///
/// Bit `r` of the mask is row `r` of the column.
///
/// # Examples
///
/// ```
/// use beer_gf2::SynMask;
///
/// let a = SynMask::new(0b0110, 4);
/// let b = SynMask::new(0b0010, 4);
/// assert!(b.is_subset_of(a));
/// assert_eq!((a ^ b).bits(), 0b0100);
/// assert_eq!(a.weight(), 2);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SynMask {
    bits: u64,
    len: u8,
}

impl SynMask {
    /// Creates a mask of `len` rows from the low bits of `bits`.
    ///
    /// # Panics
    ///
    /// Panics if `len > 64` or if `bits` has bits set at or above `len`.
    pub fn new(bits: u64, len: usize) -> Self {
        assert!(len <= 64, "SynMask supports at most 64 rows");
        if len < 64 {
            assert!(
                bits < (1u64 << len),
                "mask value 0b{bits:b} does not fit in {len} rows"
            );
        }
        SynMask {
            bits,
            len: len as u8,
        }
    }

    /// The all-zero mask of `len` rows.
    pub fn zero(len: usize) -> Self {
        SynMask::new(0, len)
    }

    /// Converts a [`BitVec`] of at most 64 bits into a mask.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() > 64`.
    pub fn from_bitvec(v: &BitVec) -> Self {
        SynMask::new(v.to_u64(), v.len())
    }

    /// Expands the mask back into a [`BitVec`].
    pub fn to_bitvec(self) -> BitVec {
        BitVec::from_u64(self.len as usize, self.bits)
    }

    /// Raw bit pattern (row `r` = bit `r`).
    #[inline]
    pub fn bits(self) -> u64 {
        self.bits
    }

    /// Number of rows.
    #[inline]
    pub fn len(self) -> usize {
        self.len as usize
    }

    /// Returns `true` if the mask has zero rows.
    pub fn is_empty(self) -> bool {
        self.len == 0
    }

    /// Value of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= len()`.
    #[inline]
    pub fn get(self, r: usize) -> bool {
        assert!(r < self.len as usize);
        (self.bits >> r) & 1 == 1
    }

    /// Hamming weight.
    #[inline]
    pub fn weight(self) -> u32 {
        self.bits.count_ones()
    }

    /// Returns `true` if no row is set.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.bits == 0
    }

    /// Support containment: every set row of `self` is set in `other`.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    #[inline]
    pub fn is_subset_of(self, other: SynMask) -> bool {
        debug_assert_eq!(self.len, other.len);
        self.bits & !other.bits == 0
    }
}

impl std::ops::BitXor for SynMask {
    type Output = SynMask;
    #[inline]
    fn bitxor(self, rhs: SynMask) -> SynMask {
        debug_assert_eq!(self.len, rhs.len, "xor of different mask lengths");
        SynMask {
            bits: self.bits ^ rhs.bits,
            len: self.len,
        }
    }
}

impl std::ops::BitXorAssign for SynMask {
    #[inline]
    fn bitxor_assign(&mut self, rhs: SynMask) {
        debug_assert_eq!(self.len, rhs.len);
        self.bits ^= rhs.bits;
    }
}

impl std::ops::BitAnd for SynMask {
    type Output = SynMask;
    #[inline]
    fn bitand(self, rhs: SynMask) -> SynMask {
        debug_assert_eq!(self.len, rhs.len);
        SynMask {
            bits: self.bits & rhs.bits,
            len: self.len,
        }
    }
}

impl std::ops::BitOr for SynMask {
    type Output = SynMask;
    #[inline]
    fn bitor(self, rhs: SynMask) -> SynMask {
        debug_assert_eq!(self.len, rhs.len);
        SynMask {
            bits: self.bits | rhs.bits,
            len: self.len,
        }
    }
}

impl fmt::Debug for SynMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SynMask({:0width$b})",
            self.bits,
            width = self.len as usize
        )
    }
}

impl fmt::Display for SynMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.len as usize {
            write!(f, "{}", if self.get(r) { '1' } else { '0' })?;
        }
        Ok(())
    }
}

impl fmt::Binary for SynMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.bits, f)
    }
}

impl fmt::LowerHex for SynMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.bits, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_with_bitvec() {
        let v = BitVec::from_indices(8, &[0, 3, 7]);
        let m = SynMask::from_bitvec(&v);
        assert_eq!(m.weight(), 3);
        assert_eq!(m.to_bitvec(), v);
    }

    #[test]
    fn subset_semantics_match_bitvec() {
        let a = SynMask::new(0b1010, 4);
        let b = SynMask::new(0b1000, 4);
        assert!(b.is_subset_of(a));
        assert!(!a.is_subset_of(b));
        assert!(SynMask::zero(4).is_subset_of(b));
    }

    #[test]
    fn xor_and_or() {
        let a = SynMask::new(0b0110, 4);
        let b = SynMask::new(0b0011, 4);
        assert_eq!((a ^ b).bits(), 0b0101);
        assert_eq!((a & b).bits(), 0b0010);
        assert_eq!((a | b).bits(), 0b0111);
        let mut c = a;
        c ^= b;
        assert_eq!(c.bits(), 0b0101);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn new_rejects_out_of_range_bits() {
        SynMask::new(0b100, 2);
    }

    #[test]
    fn display_row_order_matches_bitvec() {
        let v = BitVec::from_bits(&[true, false, true, true]);
        let m = SynMask::from_bitvec(&v);
        assert_eq!(m.to_string(), v.to_string());
    }
}
