//! Dense linear algebra over GF(2) for the BEER reproduction.
//!
//! Everything BEER manipulates — codewords, syndromes, generator and
//! parity-check matrices — lives in the two-element field GF(2), where
//! addition is XOR and multiplication is AND. This crate provides the two
//! workhorse types used throughout the workspace:
//!
//! * [`BitVec`] — a fixed-length vector of bits packed into `u64` words,
//! * [`BitMatrix`] — a dense matrix stored as a row vector of [`BitVec`]s,
//!
//! plus [`SynMask`], a zero-allocation `u64` mask used on hot paths where a
//! column of a parity-check matrix (at most 64 parity bits) must be compared
//! or combined millions of times.
//!
//! # Examples
//!
//! ```
//! use beer_gf2::{BitMatrix, BitVec};
//!
//! // The parity sub-matrix P of the paper's (7,4) Hamming code (Eq. 1).
//! let p = BitMatrix::from_rows(&[
//!     BitVec::from_bits(&[true, true, true, false]),
//!     BitVec::from_bits(&[true, true, false, true]),
//!     BitVec::from_bits(&[true, false, true, true]),
//! ]);
//! assert_eq!(p.rank(), 3);
//! let d = BitVec::from_bits(&[true, false, false, false]);
//! let parity = p.mul_vec(&d);
//! assert_eq!(parity, BitVec::from_bits(&[true, true, true]));
//! ```

mod bitvec;
mod mask;
mod matrix;

pub use bitvec::BitVec;
pub use mask::SynMask;
pub use matrix::BitMatrix;
