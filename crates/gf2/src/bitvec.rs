//! Fixed-length packed bit vectors.

use std::fmt;
use std::ops::{BitAnd, BitAndAssign, BitOr, BitOrAssign, BitXor, BitXorAssign};

const WORD_BITS: usize = 64;

/// A fixed-length vector over GF(2), packed into `u64` words.
///
/// Bit `i` of the vector is bit `i % 64` of word `i / 64`. The length is
/// immutable after construction; all binary operators panic on length
/// mismatch, which turns dimension bugs into loud failures instead of
/// silently wrong linear algebra.
///
/// # Examples
///
/// ```
/// use beer_gf2::BitVec;
///
/// let mut v = BitVec::zeros(7);
/// v.set(2, true);
/// v.set(5, true);
/// assert_eq!(v.weight(), 2);
/// assert_eq!(v.iter_ones().collect::<Vec<_>>(), vec![2, 5]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitVec {
    len: usize,
    words: Vec<u64>,
}

impl BitVec {
    /// Creates an all-zero vector of length `len`.
    pub fn zeros(len: usize) -> Self {
        BitVec {
            len,
            words: vec![0; len.div_ceil(WORD_BITS)],
        }
    }

    /// Creates an all-ones vector of length `len`.
    pub fn ones(len: usize) -> Self {
        let mut v = BitVec {
            len,
            words: vec![u64::MAX; len.div_ceil(WORD_BITS)],
        };
        v.mask_tail();
        v
    }

    /// Creates a vector from a slice of booleans, `bits[i]` becoming bit `i`.
    pub fn from_bits(bits: &[bool]) -> Self {
        let mut v = BitVec::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            if b {
                v.set(i, true);
            }
        }
        v
    }

    /// Creates a length-`len` vector whose set bits are exactly `ones`.
    ///
    /// # Panics
    ///
    /// Panics if any index in `ones` is `>= len`.
    pub fn from_indices(len: usize, ones: &[usize]) -> Self {
        let mut v = BitVec::zeros(len);
        for &i in ones {
            v.set(i, true);
        }
        v
    }

    /// Creates a length-`len` vector from the low bits of `value`.
    ///
    /// # Panics
    ///
    /// Panics if `len > 64`.
    pub fn from_u64(len: usize, value: u64) -> Self {
        assert!(len <= 64, "from_u64 supports at most 64 bits");
        let mut v = BitVec::zeros(len);
        if len > 0 {
            v.words[0] = if len == 64 {
                value
            } else {
                value & ((1u64 << len) - 1)
            };
        }
        v
    }

    /// Creates a unit vector: length `len`, single one at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    pub fn unit(len: usize, index: usize) -> Self {
        let mut v = BitVec::zeros(len);
        v.set(index, true);
        v
    }

    /// Number of bits in the vector.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the vector has length zero.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Value of bit `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    #[inline]
    pub fn get(&self, index: usize) -> bool {
        assert!(
            index < self.len,
            "bit index {index} out of range {}",
            self.len
        );
        (self.words[index / WORD_BITS] >> (index % WORD_BITS)) & 1 == 1
    }

    /// Sets bit `index` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    #[inline]
    pub fn set(&mut self, index: usize, value: bool) {
        assert!(
            index < self.len,
            "bit index {index} out of range {}",
            self.len
        );
        let w = &mut self.words[index / WORD_BITS];
        let mask = 1u64 << (index % WORD_BITS);
        if value {
            *w |= mask;
        } else {
            *w &= !mask;
        }
    }

    /// Flips bit `index` in place.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    #[inline]
    pub fn flip(&mut self, index: usize) {
        assert!(
            index < self.len,
            "bit index {index} out of range {}",
            self.len
        );
        self.words[index / WORD_BITS] ^= 1u64 << (index % WORD_BITS);
    }

    /// Number of set bits (Hamming weight).
    pub fn weight(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if no bit is set.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Parity of the vector: XOR of all bits.
    pub fn parity(&self) -> bool {
        self.words.iter().fold(0u64, |acc, w| acc ^ w).count_ones() % 2 == 1
    }

    /// Dot product over GF(2): parity of the AND of the two vectors.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn dot(&self, other: &BitVec) -> bool {
        assert_eq!(self.len, other.len, "dot of different lengths");
        self.words
            .iter()
            .zip(&other.words)
            .fold(0u64, |acc, (a, b)| acc ^ (a & b))
            .count_ones()
            % 2
            == 1
    }

    /// Iterator over the indices of set bits, in increasing order.
    pub fn iter_ones(&self) -> IterOnes<'_> {
        IterOnes {
            vec: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Iterator over all bits as booleans.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Returns `true` if every set bit of `self` is also set in `other`
    /// (support containment: `supp(self) ⊆ supp(other)`).
    ///
    /// This is the primitive behind the paper's miscorrection predicate
    /// (§4.2.3): a syndrome is reachable iff its support is contained in the
    /// CHARGED parity-bit support.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn is_subset_of(&self, other: &BitVec) -> bool {
        assert_eq!(self.len, other.len, "subset test of different lengths");
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Leading (lowest-index) set bit, if any.
    pub fn first_one(&self) -> Option<usize> {
        for (wi, &w) in self.words.iter().enumerate() {
            if w != 0 {
                return Some(wi * WORD_BITS + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Interprets the vector as a little-endian integer (bit 0 = LSB).
    ///
    /// # Panics
    ///
    /// Panics if `len() > 64`.
    pub fn to_u64(&self) -> u64 {
        assert!(self.len <= 64, "to_u64 requires at most 64 bits");
        self.words.first().copied().unwrap_or(0)
    }

    /// Concatenates `self` followed by `other` into a new vector.
    pub fn concat(&self, other: &BitVec) -> BitVec {
        let mut out = BitVec::zeros(self.len + other.len);
        for i in self.iter_ones() {
            out.set(i, true);
        }
        for i in other.iter_ones() {
            out.set(self.len + i, true);
        }
        out
    }

    /// Returns the sub-vector of bits `range.start..range.end`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or reversed.
    pub fn slice(&self, range: std::ops::Range<usize>) -> BitVec {
        assert!(range.start <= range.end && range.end <= self.len);
        let mut out = BitVec::zeros(range.end - range.start);
        for i in range.clone() {
            if self.get(i) {
                out.set(i - range.start, true);
            }
        }
        out
    }

    /// Compares two equal-length vectors lexicographically with bit 0 most
    /// significant (the order used for the canonical row sort of `P`).
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn lex_cmp(&self, other: &BitVec) -> std::cmp::Ordering {
        assert_eq!(self.len, other.len, "lex_cmp of different lengths");
        for i in 0..self.len {
            match (self.get(i), other.get(i)) {
                (false, true) => return std::cmp::Ordering::Less,
                (true, false) => return std::cmp::Ordering::Greater,
                _ => {}
            }
        }
        std::cmp::Ordering::Equal
    }

    /// Clears any stray bits beyond `len` in the last storage word.
    fn mask_tail(&mut self) {
        let rem = self.len % WORD_BITS;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }
}

/// Iterator over set-bit indices of a [`BitVec`]. Created by
/// [`BitVec::iter_ones`].
pub struct IterOnes<'a> {
    vec: &'a BitVec,
    word_idx: usize,
    current: u64,
}

impl Iterator for IterOnes<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * WORD_BITS + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.vec.words.len() {
                return None;
            }
            self.current = self.vec.words[self.word_idx];
        }
    }
}

macro_rules! impl_bitop {
    ($trait:ident, $method:ident, $assign_trait:ident, $assign_method:ident, $op:tt) => {
        impl $assign_trait<&BitVec> for BitVec {
            fn $assign_method(&mut self, rhs: &BitVec) {
                assert_eq!(self.len, rhs.len, "bit op on different lengths");
                for (a, b) in self.words.iter_mut().zip(&rhs.words) {
                    *a $op b;
                }
            }
        }

        impl $trait<&BitVec> for &BitVec {
            type Output = BitVec;
            fn $method(self, rhs: &BitVec) -> BitVec {
                let mut out = self.clone();
                $assign_trait::$assign_method(&mut out, rhs);
                out
            }
        }
    };
}

impl_bitop!(BitXor, bitxor, BitXorAssign, bitxor_assign, ^=);
impl_bitop!(BitAnd, bitand, BitAndAssign, bitand_assign, &=);
impl_bitop!(BitOr, bitor, BitOrAssign, bitor_assign, |=);

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec[{}]", self)
    }
}

impl fmt::Display for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.len {
            write!(f, "{}", if self.get(i) { '1' } else { '0' })?;
        }
        Ok(())
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let bits: Vec<bool> = iter.into_iter().collect();
        BitVec::from_bits(&bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones() {
        let z = BitVec::zeros(70);
        assert_eq!(z.len(), 70);
        assert!(z.is_zero());
        assert_eq!(z.weight(), 0);

        let o = BitVec::ones(70);
        assert_eq!(o.weight(), 70);
        assert!(!o.is_zero());
    }

    #[test]
    fn ones_masks_tail_bits() {
        let o = BitVec::ones(65);
        // The second storage word must only contain one live bit.
        assert_eq!(o.weight(), 65);
        assert!(o.get(64));
    }

    #[test]
    fn set_get_flip_roundtrip() {
        let mut v = BitVec::zeros(130);
        v.set(0, true);
        v.set(64, true);
        v.set(129, true);
        assert!(v.get(0) && v.get(64) && v.get(129));
        assert!(!v.get(1) && !v.get(63) && !v.get(128));
        v.flip(64);
        assert!(!v.get(64));
        assert_eq!(v.weight(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        BitVec::zeros(8).get(8);
    }

    #[test]
    fn from_indices_and_iter_ones() {
        let v = BitVec::from_indices(200, &[3, 64, 199]);
        assert_eq!(v.iter_ones().collect::<Vec<_>>(), vec![3, 64, 199]);
    }

    #[test]
    fn from_u64_truncates() {
        let v = BitVec::from_u64(4, 0b1_0110);
        assert_eq!(v.to_u64(), 0b0110);
        let w = BitVec::from_u64(64, u64::MAX);
        assert_eq!(w.weight(), 64);
    }

    #[test]
    fn unit_vector() {
        let v = BitVec::unit(9, 5);
        assert_eq!(v.weight(), 1);
        assert!(v.get(5));
        assert_eq!(v.first_one(), Some(5));
    }

    #[test]
    fn xor_and_or() {
        let a = BitVec::from_indices(10, &[1, 3, 5]);
        let b = BitVec::from_indices(10, &[3, 4, 5]);
        assert_eq!((&a ^ &b).iter_ones().collect::<Vec<_>>(), vec![1, 4]);
        assert_eq!((&a & &b).iter_ones().collect::<Vec<_>>(), vec![3, 5]);
        assert_eq!((&a | &b).iter_ones().collect::<Vec<_>>(), vec![1, 3, 4, 5]);
    }

    #[test]
    fn parity_and_dot() {
        let a = BitVec::from_indices(6, &[0, 2, 4]);
        assert!(a.parity());
        let b = BitVec::from_indices(6, &[2, 4]);
        assert!(!b.parity());
        // a·b = |{2,4}| mod 2 = 0
        assert!(!a.dot(&b));
        let c = BitVec::from_indices(6, &[0]);
        assert!(a.dot(&c));
    }

    #[test]
    fn subset_test() {
        let small = BitVec::from_indices(8, &[1, 6]);
        let big = BitVec::from_indices(8, &[1, 3, 6]);
        assert!(small.is_subset_of(&big));
        assert!(!big.is_subset_of(&small));
        assert!(BitVec::zeros(8).is_subset_of(&small));
    }

    #[test]
    fn concat_and_slice() {
        let a = BitVec::from_indices(3, &[0]);
        let b = BitVec::from_indices(4, &[3]);
        let c = a.concat(&b);
        assert_eq!(c.len(), 7);
        assert_eq!(c.iter_ones().collect::<Vec<_>>(), vec![0, 6]);
        assert_eq!(c.slice(3..7), b);
        assert_eq!(c.slice(0..3), a);
    }

    #[test]
    fn lex_ordering_bit0_most_significant() {
        let a = BitVec::from_bits(&[false, true, true]);
        let b = BitVec::from_bits(&[true, false, false]);
        assert_eq!(a.lex_cmp(&b), std::cmp::Ordering::Less);
        assert_eq!(b.lex_cmp(&a), std::cmp::Ordering::Greater);
        assert_eq!(a.lex_cmp(&a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn display_formats_all_bits() {
        let v = BitVec::from_bits(&[true, false, true]);
        assert_eq!(v.to_string(), "101");
        assert_eq!(format!("{v:?}"), "BitVec[101]");
    }

    #[test]
    fn collect_from_bool_iter() {
        let v: BitVec = [true, false, true, true].into_iter().collect();
        assert_eq!(v.len(), 4);
        assert_eq!(v.weight(), 3);
    }
}
