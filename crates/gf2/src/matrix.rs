//! Dense GF(2) matrices.

use crate::BitVec;
use std::fmt;

/// A dense matrix over GF(2), stored row-major as a vector of [`BitVec`]s.
///
/// The matrix dimensions are fixed at construction. Row and column counts of
/// zero are permitted (degenerate matrices show up naturally when a code has
/// no data bits during testing).
///
/// # Examples
///
/// ```
/// use beer_gf2::{BitMatrix, BitVec};
///
/// let h = BitMatrix::identity(3);
/// let x = BitVec::from_bits(&[true, false, true]);
/// assert_eq!(h.mul_vec(&x), x);
/// assert_eq!(h.rank(), 3);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitMatrix {
    rows: usize,
    cols: usize,
    data: Vec<BitVec>,
}

impl BitMatrix {
    /// Creates an all-zero `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        BitMatrix {
            rows,
            cols,
            data: (0..rows).map(|_| BitVec::zeros(cols)).collect(),
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = BitMatrix::zeros(n, n);
        for i in 0..n {
            m.data[i].set(i, true);
        }
        m
    }

    /// Builds a matrix from rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing lengths.
    pub fn from_rows(rows: &[BitVec]) -> Self {
        let cols = rows.first().map_or(0, BitVec::len);
        for r in rows {
            assert_eq!(r.len(), cols, "rows of differing lengths");
        }
        BitMatrix {
            rows: rows.len(),
            cols,
            data: rows.to_vec(),
        }
    }

    /// Builds a matrix from a nested boolean array, outer = rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing lengths.
    pub fn from_bools(rows: &[&[bool]]) -> Self {
        let data: Vec<BitVec> = rows.iter().map(|r| BitVec::from_bits(r)).collect();
        BitMatrix::from_rows(&data)
    }

    /// Builds a matrix from columns.
    ///
    /// # Panics
    ///
    /// Panics if the columns have differing lengths.
    pub fn from_cols(cols: &[BitVec]) -> Self {
        let rows = cols.first().map_or(0, BitVec::len);
        for c in cols {
            assert_eq!(c.len(), rows, "columns of differing lengths");
        }
        let mut m = BitMatrix::zeros(rows, cols.len());
        for (j, c) in cols.iter().enumerate() {
            for i in c.iter_ones() {
                m.data[i].set(j, true);
            }
        }
        m
    }

    /// Creates a uniformly random matrix using `rng`.
    pub fn random<R: rand::Rng + ?Sized>(rows: usize, cols: usize, rng: &mut R) -> Self {
        let mut m = BitMatrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                if rng.random::<bool>() {
                    m.data[r].set(c, true);
                }
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at (`r`, `c`).
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> bool {
        assert!(r < self.rows, "row {r} out of range {}", self.rows);
        self.data[r].get(c)
    }

    /// Sets element (`r`, `c`).
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, value: bool) {
        assert!(r < self.rows, "row {r} out of range {}", self.rows);
        self.data[r].set(c, value);
    }

    /// Borrow of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows()`.
    pub fn row(&self, r: usize) -> &BitVec {
        &self.data[r]
    }

    /// Copy of column `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c >= cols()`.
    pub fn col(&self, c: usize) -> BitVec {
        assert!(c < self.cols, "column {c} out of range {}", self.cols);
        let mut v = BitVec::zeros(self.rows);
        for r in 0..self.rows {
            if self.data[r].get(c) {
                v.set(r, true);
            }
        }
        v
    }

    /// Iterator over rows.
    pub fn iter_rows(&self) -> impl Iterator<Item = &BitVec> {
        self.data.iter()
    }

    /// Matrix–vector product `M · x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols()`.
    pub fn mul_vec(&self, x: &BitVec) -> BitVec {
        assert_eq!(x.len(), self.cols, "dimension mismatch in mul_vec");
        let mut out = BitVec::zeros(self.rows);
        for (r, row) in self.data.iter().enumerate() {
            if row.dot(x) {
                out.set(r, true);
            }
        }
        out
    }

    /// Vector–matrix product `xᵀ · M` (returns a column-length vector).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows()`.
    pub fn mul_vec_left(&self, x: &BitVec) -> BitVec {
        assert_eq!(x.len(), self.rows, "dimension mismatch in mul_vec_left");
        let mut out = BitVec::zeros(self.cols);
        for r in x.iter_ones() {
            out ^= &self.data[r];
        }
        out
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn mul(&self, rhs: &BitMatrix) -> BitMatrix {
        assert_eq!(self.cols, rhs.rows, "dimension mismatch in mul");
        let mut out = BitMatrix::zeros(self.rows, rhs.cols);
        for (r, row) in self.data.iter().enumerate() {
            for k in row.iter_ones() {
                out.data[r] ^= &rhs.data[k];
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> BitMatrix {
        let mut out = BitMatrix::zeros(self.cols, self.rows);
        for (r, row) in self.data.iter().enumerate() {
            for c in row.iter_ones() {
                out.data[c].set(r, true);
            }
        }
        out
    }

    /// Horizontal concatenation `[self | rhs]`.
    ///
    /// # Panics
    ///
    /// Panics if the row counts differ.
    pub fn hstack(&self, rhs: &BitMatrix) -> BitMatrix {
        assert_eq!(self.rows, rhs.rows, "hstack with differing row counts");
        let data: Vec<BitVec> = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a.concat(b))
            .collect();
        BitMatrix {
            rows: self.rows,
            cols: self.cols + rhs.cols,
            data,
        }
    }

    /// Vertical concatenation (self on top of rhs).
    ///
    /// # Panics
    ///
    /// Panics if the column counts differ.
    pub fn vstack(&self, rhs: &BitMatrix) -> BitMatrix {
        assert_eq!(self.cols, rhs.cols, "vstack with differing column counts");
        let mut data = self.data.clone();
        data.extend(rhs.data.iter().cloned());
        BitMatrix {
            rows: self.rows + rhs.rows,
            cols: self.cols,
            data,
        }
    }

    /// Sub-matrix of columns `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn col_slice(&self, range: std::ops::Range<usize>) -> BitMatrix {
        let data: Vec<BitVec> = self.data.iter().map(|r| r.slice(range.clone())).collect();
        BitMatrix {
            rows: self.rows,
            cols: range.end - range.start,
            data,
        }
    }

    /// Reduced row-echelon form; returns `(rref, rank, pivot_columns)`.
    pub fn rref(&self) -> (BitMatrix, usize, Vec<usize>) {
        let mut m = self.clone();
        let mut pivots = Vec::new();
        let mut r = 0;
        for c in 0..m.cols {
            if r == m.rows {
                break;
            }
            // Find a pivot in column c at or below row r.
            let pivot = (r..m.rows).find(|&i| m.data[i].get(c));
            let Some(p) = pivot else { continue };
            m.data.swap(r, p);
            // Eliminate column c from every other row.
            let pivot_row = m.data[r].clone();
            for (i, row) in m.data.iter_mut().enumerate() {
                if i != r && row.get(c) {
                    *row ^= &pivot_row;
                }
            }
            pivots.push(c);
            r += 1;
        }
        (m, r, pivots)
    }

    /// Rank of the matrix.
    pub fn rank(&self) -> usize {
        self.rref().1
    }

    /// Inverse of a square matrix, or `None` if singular.
    pub fn inverse(&self) -> Option<BitMatrix> {
        assert_eq!(self.rows, self.cols, "inverse of a non-square matrix");
        let aug = self.hstack(&BitMatrix::identity(self.rows));
        let (rref, _, pivots) = aug.rref();
        // `[M | I]` always has full row rank; M is invertible iff every pivot
        // lands in the left (M) half, which then reduces to the identity.
        if pivots.len() < self.rows || pivots.iter().any(|&c| c >= self.cols) {
            return None;
        }
        Some(rref.col_slice(self.cols..2 * self.cols))
    }

    /// Solves `self · x = b` for one solution, or `None` if inconsistent.
    ///
    /// If the system is under-determined, free variables are set to zero.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != rows()`.
    pub fn solve(&self, b: &BitVec) -> Option<BitVec> {
        assert_eq!(b.len(), self.rows, "dimension mismatch in solve");
        let bm = BitMatrix::from_cols(std::slice::from_ref(b));
        let aug = self.hstack(&bm);
        let (rref, _, pivots) = aug.rref();
        // Inconsistent if a pivot lands in the augmented column.
        if pivots.contains(&self.cols) {
            return None;
        }
        let mut x = BitVec::zeros(self.cols);
        for (ri, &c) in pivots.iter().enumerate() {
            if rref.data[ri].get(self.cols) {
                x.set(c, true);
            }
        }
        Some(x)
    }

    /// A basis of the null space (kernel) of the matrix.
    pub fn null_space(&self) -> Vec<BitVec> {
        let (rref, _, pivots) = self.rref();
        let pivot_set: std::collections::HashSet<usize> = pivots.iter().copied().collect();
        let mut basis = Vec::new();
        for free in 0..self.cols {
            if pivot_set.contains(&free) {
                continue;
            }
            let mut v = BitVec::zeros(self.cols);
            v.set(free, true);
            for (ri, &pc) in pivots.iter().enumerate() {
                if rref.data[ri].get(free) {
                    v.set(pc, true);
                }
            }
            basis.push(v);
        }
        basis
    }

    /// Returns a copy with rows sorted lexicographically (bit 0 most
    /// significant) — the canonical representative used to compare
    /// parity-check matrices up to row permutation.
    pub fn with_sorted_rows(&self) -> BitMatrix {
        let mut data = self.data.clone();
        data.sort_by(|a, b| a.lex_cmp(b));
        BitMatrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Returns `true` if the trailing `rows()` columns form an identity
    /// block, i.e. the matrix is in standard form `[P | I]`.
    pub fn is_standard_form(&self) -> bool {
        if self.cols < self.rows {
            return false;
        }
        let offset = self.cols - self.rows;
        for r in 0..self.rows {
            for c in 0..self.rows {
                if self.get(r, offset + c) != (r == c) {
                    return false;
                }
            }
        }
        true
    }
}

impl fmt::Debug for BitMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "BitMatrix {}x{} [", self.rows, self.cols)?;
        for row in &self.data {
            writeln!(f, "  {row}")?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for BitMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, row) in self.data.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{row}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn eq1_parity_check() -> BitMatrix {
        // H of the paper's (7,4) Hamming code (Equation 1).
        BitMatrix::from_bools(&[
            &[true, true, true, false, true, false, false],
            &[true, true, false, true, false, true, false],
            &[true, false, true, true, false, false, true],
        ])
    }

    #[test]
    fn identity_is_identity() {
        let i = BitMatrix::identity(5);
        let x = BitVec::from_indices(5, &[1, 4]);
        assert_eq!(i.mul_vec(&x), x);
        assert_eq!(i.rank(), 5);
        assert!(i.is_standard_form());
    }

    #[test]
    fn from_cols_matches_col_accessor() {
        let c0 = BitVec::from_indices(3, &[0, 2]);
        let c1 = BitVec::from_indices(3, &[1]);
        let m = BitMatrix::from_cols(&[c0.clone(), c1.clone()]);
        assert_eq!(m.col(0), c0);
        assert_eq!(m.col(1), c1);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 2);
    }

    #[test]
    fn mul_vec_computes_syndrome_of_eq1() {
        let h = eq1_parity_check();
        // Error at position 2 must produce column 2 of H (paper Eq. 2).
        let e2 = BitVec::unit(7, 2);
        assert_eq!(h.mul_vec(&e2), h.col(2));
    }

    #[test]
    fn mul_and_transpose_are_consistent() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = BitMatrix::random(4, 6, &mut rng);
        let b = BitMatrix::random(6, 3, &mut rng);
        let ab = a.mul(&b);
        let btat = b.transpose().mul(&a.transpose());
        assert_eq!(ab.transpose(), btat);
    }

    #[test]
    fn rref_of_eq1_has_full_rank() {
        let h = eq1_parity_check();
        let (_, rank, pivots) = h.rref();
        assert_eq!(rank, 3);
        assert_eq!(pivots.len(), 3);
        assert!(h.is_standard_form());
    }

    #[test]
    fn inverse_roundtrip() {
        let mut rng = StdRng::seed_from_u64(11);
        // Keep drawing random square matrices until one is invertible.
        loop {
            let m = BitMatrix::random(6, 6, &mut rng);
            if let Some(inv) = m.inverse() {
                assert_eq!(m.mul(&inv), BitMatrix::identity(6));
                assert_eq!(inv.mul(&m), BitMatrix::identity(6));
                break;
            }
        }
    }

    #[test]
    fn singular_matrix_has_no_inverse() {
        let m = BitMatrix::zeros(3, 3);
        assert!(m.inverse().is_none());
    }

    #[test]
    fn solve_finds_consistent_solution() {
        let h = eq1_parity_check();
        let b = h.col(4); // syndrome of a single error at bit 4
        let x = h.solve(&b).expect("consistent system");
        assert_eq!(h.mul_vec(&x), b);
    }

    #[test]
    fn solve_detects_inconsistency() {
        // x + y = 1 and x + y = 0 simultaneously.
        let m = BitMatrix::from_bools(&[&[true, true], &[true, true]]);
        let b = BitVec::from_bits(&[true, false]);
        assert!(m.solve(&b).is_none());
    }

    #[test]
    fn null_space_vectors_are_in_kernel() {
        let h = eq1_parity_check();
        let basis = h.null_space();
        assert_eq!(basis.len(), 4); // n - rank = 7 - 3
        for v in &basis {
            assert!(h.mul_vec(v).is_zero(), "basis vector not in kernel");
        }
    }

    #[test]
    fn hstack_vstack_dimensions() {
        let a = BitMatrix::identity(2);
        let b = BitMatrix::zeros(2, 3);
        let h = a.hstack(&b);
        assert_eq!((h.rows(), h.cols()), (2, 5));
        let v = a.vstack(&BitMatrix::identity(2));
        assert_eq!((v.rows(), v.cols()), (4, 2));
    }

    #[test]
    fn sorted_rows_is_canonical_under_permutation() {
        let m = BitMatrix::from_bools(&[&[true, false], &[false, true], &[true, true]]);
        let p = BitMatrix::from_bools(&[&[true, true], &[true, false], &[false, true]]);
        assert_eq!(m.with_sorted_rows(), p.with_sorted_rows());
    }

    #[test]
    fn mul_vec_left_matches_transpose_mul() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = BitMatrix::random(5, 9, &mut rng);
        let x = BitVec::from_indices(5, &[0, 2, 4]);
        assert_eq!(m.mul_vec_left(&x), m.transpose().mul_vec(&x));
    }
}
