//! Property-based tests for the GF(2) algebra layer.

use beer_gf2::{BitMatrix, BitVec, SynMask};
use proptest::prelude::*;

fn bitvec_strategy(len: usize) -> impl Strategy<Value = BitVec> {
    prop::collection::vec(any::<bool>(), len).prop_map(|bits| BitVec::from_bits(&bits))
}

fn matrix_strategy(rows: usize, cols: usize) -> impl Strategy<Value = BitMatrix> {
    prop::collection::vec(bitvec_strategy(cols), rows).prop_map(|rows| BitMatrix::from_rows(&rows))
}

proptest! {
    #[test]
    fn xor_is_self_inverse(a in bitvec_strategy(97), b in bitvec_strategy(97)) {
        let c = &a ^ &b;
        prop_assert_eq!(&c ^ &b, a);
    }

    #[test]
    fn xor_is_commutative_and_associative(
        a in bitvec_strategy(40),
        b in bitvec_strategy(40),
        c in bitvec_strategy(40),
    ) {
        prop_assert_eq!(&a ^ &b, &b ^ &a);
        prop_assert_eq!(&(&a ^ &b) ^ &c, &a ^ &(&b ^ &c));
    }

    #[test]
    fn weight_matches_iter_ones(a in bitvec_strategy(130)) {
        prop_assert_eq!(a.weight(), a.iter_ones().count());
    }

    #[test]
    fn subset_iff_and_equals_self(a in bitvec_strategy(66), b in bitvec_strategy(66)) {
        prop_assert_eq!(a.is_subset_of(&b), (&a & &b) == a);
    }

    #[test]
    fn dot_is_bilinear(
        a in bitvec_strategy(33),
        b in bitvec_strategy(33),
        c in bitvec_strategy(33),
    ) {
        // (a ⊕ b)·c == a·c ⊕ b·c over GF(2)
        prop_assert_eq!((&a ^ &b).dot(&c), a.dot(&c) ^ b.dot(&c));
    }

    #[test]
    fn synmask_ops_match_bitvec_ops(
        a in bitvec_strategy(48),
        b in bitvec_strategy(48),
    ) {
        let (ma, mb) = (SynMask::from_bitvec(&a), SynMask::from_bitvec(&b));
        prop_assert_eq!((ma ^ mb).to_bitvec(), &a ^ &b);
        prop_assert_eq!(ma.is_subset_of(mb), a.is_subset_of(&b));
        prop_assert_eq!(ma.weight() as usize, a.weight());
    }

    #[test]
    fn mul_vec_distributes_over_xor(
        m in matrix_strategy(8, 20),
        x in bitvec_strategy(20),
        y in bitvec_strategy(20),
    ) {
        prop_assert_eq!(m.mul_vec(&(&x ^ &y)), &m.mul_vec(&x) ^ &m.mul_vec(&y));
    }

    #[test]
    fn rref_is_idempotent(m in matrix_strategy(6, 10)) {
        let (r1, rank1, _) = m.rref();
        let (r2, rank2, _) = r1.rref();
        prop_assert_eq!(r1, r2);
        prop_assert_eq!(rank1, rank2);
    }

    #[test]
    fn rank_bounded_by_dims(m in matrix_strategy(7, 12)) {
        prop_assert!(m.rank() <= 7);
        prop_assert!(m.transpose().rank() == m.rank());
    }

    #[test]
    fn solve_solutions_satisfy_system(m in matrix_strategy(6, 9), x in bitvec_strategy(9)) {
        // Construct a guaranteed-consistent right-hand side.
        let b = m.mul_vec(&x);
        let sol = m.solve(&b).expect("consistent by construction");
        prop_assert_eq!(m.mul_vec(&sol), b);
    }

    #[test]
    fn null_space_dimension_theorem(m in matrix_strategy(5, 11)) {
        let basis = m.null_space();
        prop_assert_eq!(basis.len(), 11 - m.rank());
        for v in &basis {
            prop_assert!(m.mul_vec(v).is_zero());
        }
    }

    #[test]
    fn inverse_if_full_rank(m in matrix_strategy(6, 6)) {
        match m.inverse() {
            Some(inv) => {
                prop_assert_eq!(m.rank(), 6);
                prop_assert_eq!(m.mul(&inv), BitMatrix::identity(6));
            }
            None => prop_assert!(m.rank() < 6),
        }
    }

    #[test]
    fn sorted_rows_invariant_under_shuffle(
        m in matrix_strategy(5, 8),
        seed in any::<u64>(),
    ) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rows: Vec<BitVec> = m.iter_rows().cloned().collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        rows.shuffle(&mut rng);
        let shuffled = BitMatrix::from_rows(&rows);
        prop_assert_eq!(m.with_sorted_rows(), shuffled.with_sorted_rows());
    }
}
