//! EINSim-style Monte-Carlo DRAM error-correction simulation.
//!
//! The paper evaluates BEER and BEEP with the EINSim open-source simulator
//! (Patel et al., DSN 2019): encode a dataword, inject errors from a
//! parameterized model, decode, and compare the pre- and post-correction
//! error characteristics over millions of ECC words. This crate is the
//! reproduction's equivalent, used for:
//!
//! * Figure 1 — per-bit post-correction error probabilities under
//!   different ECC functions with uniform-random errors,
//! * the §5.1.3 cross-check — simulated miscorrection profiles must match
//!   the profiles measured on (simulated) chips,
//! * general workloads for the benchmark harness.
//!
//! The hot path avoids materializing codewords: error positions are drawn
//! sparsely (geometric gap sampling), the syndrome is a single-word XOR of
//! the affected parity-check columns, and only the error *set* is tracked.
//!
//! # Examples
//!
//! ```
//! use beer_ecc::hamming;
//! use beer_einsim::{simulate, ErrorModel, SimConfig};
//! use beer_gf2::BitVec;
//! use rand::rngs::SmallRng;
//! use rand::SeedableRng;
//!
//! let code = hamming::shortened(32);
//! let data = BitVec::ones(32); // the paper's 0xFF test pattern
//! let cfg = SimConfig { words: 100_000, model: ErrorModel::UniformRandom { ber: 1e-4 } };
//! let stats = simulate(&code, &data, &cfg, &mut SmallRng::seed_from_u64(1));
//! assert_eq!(stats.words, 100_000);
//! ```

mod error_model;
mod sim;
pub mod stats;

pub use error_model::ErrorModel;
pub use sim::{simulate, simulate_batches, PerBitStats, SimConfig};
