//! Statistics helpers: quantiles, five-number summaries, and the
//! statistical bootstrap the paper uses for Figure 1's confidence
//! intervals.

use rand::Rng;

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().sum::<f64>() / samples.len() as f64
}

/// Linear-interpolated quantile of unsorted data.
///
/// # Panics
///
/// Panics if `samples` is empty or `q` is outside `[0, 1]`.
pub fn quantile(samples: &[f64], q: f64) -> f64 {
    assert!(!samples.is_empty(), "quantile of empty data");
    assert!((0.0..=1.0).contains(&q), "quantile {q} out of [0,1]");
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median of unsorted data.
///
/// # Panics
///
/// Panics if `samples` is empty.
pub fn median(samples: &[f64]) -> f64 {
    quantile(samples, 0.5)
}

/// Five-number summary (the boxplot statistics of Figure 4).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Computes the summary of unsorted data.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn of(samples: &[f64]) -> Self {
        Summary {
            min: quantile(samples, 0.0),
            q1: quantile(samples, 0.25),
            median: quantile(samples, 0.5),
            q3: quantile(samples, 0.75),
            max: quantile(samples, 1.0),
        }
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

/// A bootstrap confidence interval for a statistic of the sample.
#[derive(Clone, Copy, Debug)]
pub struct BootstrapCi {
    /// Point estimate: the statistic of the original sample.
    pub estimate: f64,
    /// Lower confidence bound.
    pub lo: f64,
    /// Upper confidence bound.
    pub hi: f64,
}

/// Percentile-bootstrap confidence interval (resampling with replacement,
/// `iterations` resamples, confidence `1 − alpha`) for an arbitrary
/// statistic — the paper uses 1000 resamples for medians with 95 %
/// intervals (Figure 1).
///
/// # Panics
///
/// Panics if `samples` is empty, `iterations == 0`, or `alpha ∉ (0, 1)`.
pub fn bootstrap_ci<R: Rng + ?Sized>(
    samples: &[f64],
    statistic: impl Fn(&[f64]) -> f64,
    iterations: usize,
    alpha: f64,
    rng: &mut R,
) -> BootstrapCi {
    assert!(!samples.is_empty(), "bootstrap of empty data");
    assert!(iterations > 0, "bootstrap needs at least one iteration");
    assert!(alpha > 0.0 && alpha < 1.0, "alpha {alpha} out of (0,1)");
    let estimate = statistic(samples);
    let mut resample = vec![0.0; samples.len()];
    let mut stats = Vec::with_capacity(iterations);
    for _ in 0..iterations {
        for slot in resample.iter_mut() {
            *slot = samples[rng.random_range(0..samples.len())];
        }
        stats.push(statistic(&resample));
    }
    BootstrapCi {
        estimate,
        lo: quantile(&stats, alpha / 2.0),
        hi: quantile(&stats, 1.0 - alpha / 2.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn mean_and_median_basics() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), 2.5);
        assert_eq!(median(&xs), 2.5);
        assert_eq!(median(&[5.0, 1.0, 3.0]), 3.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [0.0, 10.0];
        assert_eq!(quantile(&xs, 0.0), 0.0);
        assert_eq!(quantile(&xs, 0.25), 2.5);
        assert_eq!(quantile(&xs, 1.0), 10.0);
    }

    #[test]
    fn summary_orders_components() {
        let xs: Vec<f64> = (0..100).map(|i| (i * 37 % 100) as f64).collect();
        let s = Summary::of(&xs);
        assert!(s.min <= s.q1 && s.q1 <= s.median);
        assert!(s.median <= s.q3 && s.q3 <= s.max);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 99.0);
        assert!(s.iqr() > 0.0);
    }

    #[test]
    fn bootstrap_brackets_true_mean() {
        let mut rng = SmallRng::seed_from_u64(17);
        // Samples from a distribution with mean 5.
        let samples: Vec<f64> = (0..500)
            .map(|_| 5.0 + (rng.random::<f64>() - 0.5) * 2.0)
            .collect();
        let ci = bootstrap_ci(&samples, mean, 1000, 0.05, &mut rng);
        assert!(ci.lo <= ci.estimate && ci.estimate <= ci.hi);
        assert!(ci.lo < 5.0 && 5.0 < ci.hi, "CI [{}, {}]", ci.lo, ci.hi);
        assert!(ci.hi - ci.lo < 0.2, "CI too wide: {}", ci.hi - ci.lo);
    }

    #[test]
    fn bootstrap_of_constant_data_is_degenerate() {
        let mut rng = SmallRng::seed_from_u64(18);
        let ci = bootstrap_ci(&[3.0; 50], median, 200, 0.05, &mut rng);
        assert_eq!(ci.estimate, 3.0);
        assert_eq!(ci.lo, 3.0);
        assert_eq!(ci.hi, 3.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_rejects_empty() {
        quantile(&[], 0.5);
    }
}
