//! The word-level Monte-Carlo simulation loop.

use crate::error_model::ErrorModel;
use beer_ecc::LinearCode;
use beer_gf2::BitVec;
use rand::Rng;

/// Parameters of one simulation run.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Number of ECC words to simulate.
    pub words: u64,
    /// Pre-correction error model.
    pub model: ErrorModel,
}

/// Aggregated per-bit error statistics from a simulation run.
#[derive(Clone, Debug)]
pub struct PerBitStats {
    /// Codeword length.
    pub n: usize,
    /// Dataword length.
    pub k: usize,
    /// Words simulated.
    pub words: u64,
    /// Pre-correction error count per codeword position (length `n`).
    pub pre_errors: Vec<u64>,
    /// Post-correction error count per dataword position (length `k`).
    pub post_errors: Vec<u64>,
    /// Miscorrection count per dataword position (length `k`): how often
    /// the decoder flipped this bit although it had no error. This is the
    /// purely ECC-function-specific component of the post-correction
    /// distribution (§4.2.2).
    pub miscorrections: Vec<u64>,
    /// Words with at least one pre-correction error.
    pub words_with_pre_errors: u64,
    /// Words whose post-correction dataword was wrong.
    pub uncorrectable_words: u64,
    /// Words where the decoder flipped a bit that had no error.
    pub miscorrected_words: u64,
}

impl PerBitStats {
    fn new(n: usize, k: usize) -> Self {
        PerBitStats {
            n,
            k,
            words: 0,
            pre_errors: vec![0; n],
            post_errors: vec![0; k],
            miscorrections: vec![0; k],
            words_with_pre_errors: 0,
            uncorrectable_words: 0,
            miscorrected_words: 0,
        }
    }

    /// Merges another run's counts into this one.
    ///
    /// # Panics
    ///
    /// Panics if the code dimensions differ.
    pub fn merge(&mut self, other: &PerBitStats) {
        assert_eq!((self.n, self.k), (other.n, other.k), "dimension mismatch");
        self.words += other.words;
        for (a, b) in self.pre_errors.iter_mut().zip(&other.pre_errors) {
            *a += b;
        }
        for (a, b) in self.post_errors.iter_mut().zip(&other.post_errors) {
            *a += b;
        }
        for (a, b) in self.miscorrections.iter_mut().zip(&other.miscorrections) {
            *a += b;
        }
        self.words_with_pre_errors += other.words_with_pre_errors;
        self.uncorrectable_words += other.uncorrectable_words;
        self.miscorrected_words += other.miscorrected_words;
    }

    /// Total pre-correction errors.
    pub fn total_pre_errors(&self) -> u64 {
        self.pre_errors.iter().sum()
    }

    /// Total post-correction errors.
    pub fn total_post_errors(&self) -> u64 {
        self.post_errors.iter().sum()
    }

    /// Per-bit share of all post-correction errors (Figure 1's "relative
    /// error probability"); all-zero if no errors were observed.
    pub fn post_error_shares(&self) -> Vec<f64> {
        let total = self.total_post_errors();
        if total == 0 {
            return vec![0.0; self.k];
        }
        self.post_errors
            .iter()
            .map(|&c| c as f64 / total as f64)
            .collect()
    }

    /// Per-bit share of all observed data-bit miscorrections; all-zero if
    /// none were observed.
    pub fn miscorrection_shares(&self) -> Vec<f64> {
        let total: u64 = self.miscorrections.iter().sum();
        if total == 0 {
            return vec![0.0; self.k];
        }
        self.miscorrections
            .iter()
            .map(|&c| c as f64 / total as f64)
            .collect()
    }

    /// Raw pre-correction bit error rate over the run.
    pub fn pre_ber(&self) -> f64 {
        if self.words == 0 {
            return 0.0;
        }
        self.total_pre_errors() as f64 / (self.words as f64 * self.n as f64)
    }

    /// Post-correction bit error rate over the data bits.
    pub fn post_ber(&self) -> f64 {
        if self.words == 0 {
            return 0.0;
        }
        self.total_post_errors() as f64 / (self.words as f64 * self.k as f64)
    }
}

/// Appends positions drawn by geometric gap sampling: each of `limit`
/// slots is selected independently with probability `p`.
fn sample_positions<R: Rng + ?Sized>(p: f64, limit: usize, rng: &mut R, out: &mut Vec<usize>) {
    if p <= 0.0 || limit == 0 {
        return;
    }
    if p >= 1.0 {
        out.extend(0..limit);
        return;
    }
    let ln_q = (1.0 - p).ln(); // < 0
    let mut pos = 0usize;
    loop {
        let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        let gap = (u.ln() / ln_q).floor();
        if gap >= (limit - pos) as f64 {
            return;
        }
        pos += gap as usize;
        out.push(pos);
        pos += 1;
        if pos >= limit {
            return;
        }
    }
}

/// Simulates `cfg.words` ECC words holding `data`, injecting errors from
/// `cfg.model`, and decoding with `code`'s syndrome decoder.
///
/// # Panics
///
/// Panics if `data.len() != code.k()` or the model fails validation.
pub fn simulate<R: Rng + ?Sized>(
    code: &LinearCode,
    data: &BitVec,
    cfg: &SimConfig,
    rng: &mut R,
) -> PerBitStats {
    assert_eq!(data.len(), code.k(), "dataword length mismatch");
    cfg.model.validate(code.n());
    let n = code.n();
    let k = code.k();
    let mut stats = PerBitStats::new(n, k);
    stats.words = cfg.words;

    // The stored codeword (identical for every simulated word).
    let codeword = code.encode(data);
    let charged: Vec<usize> = codeword.iter_ones().collect();

    let mut positions: Vec<usize> = Vec::with_capacity(8);
    let mut scratch: Vec<usize> = Vec::with_capacity(8);
    for _ in 0..cfg.words {
        positions.clear();
        match &cfg.model {
            ErrorModel::UniformRandom { ber } => {
                sample_positions(*ber, n, rng, &mut positions);
            }
            ErrorModel::Retention { ber } => {
                scratch.clear();
                sample_positions(*ber, charged.len(), rng, &mut scratch);
                positions.extend(scratch.iter().map(|&i| charged[i]));
            }
            ErrorModel::WeakCells {
                cells,
                fail_probability,
            } => {
                for &c in cells {
                    // Retention semantics: only charged cells can fail.
                    if codeword.get(c) && rng.random::<f64>() < *fail_probability {
                        positions.push(c);
                    }
                }
            }
        }
        if positions.is_empty() {
            continue;
        }
        stats.words_with_pre_errors += 1;
        let mut syndrome = beer_gf2::SynMask::zero(code.parity_bits());
        for &pos in &positions {
            stats.pre_errors[pos] += 1;
            syndrome ^= code.column(pos);
        }
        // Post-correction error set = pre-correction errors, with the
        // decoder's flip toggling membership of one position.
        let correction = code.position_of_syndrome(syndrome);
        let mut uncorrectable = false;
        if let Some(cpos) = correction {
            if let Some(idx) = positions.iter().position(|&p| p == cpos) {
                positions.swap_remove(idx); // genuine correction
            } else {
                positions.push(cpos); // miscorrection
                stats.miscorrected_words += 1;
                if cpos < k {
                    stats.miscorrections[cpos] += 1;
                }
            }
        }
        for &pos in &positions {
            if pos < k {
                stats.post_errors[pos] += 1;
                uncorrectable = true;
            }
        }
        if uncorrectable {
            stats.uncorrectable_words += 1;
        }
    }
    stats
}

/// Runs `batches` independent simulations of `words_per_batch` words each,
/// returning per-batch statistics (the batching feeds the bootstrap
/// confidence intervals of Figure 1).
pub fn simulate_batches<R: Rng + ?Sized>(
    code: &LinearCode,
    data: &BitVec,
    model: &ErrorModel,
    words_per_batch: u64,
    batches: usize,
    rng: &mut R,
) -> Vec<PerBitStats> {
    (0..batches)
        .map(|_| {
            let cfg = SimConfig {
                words: words_per_batch,
                model: model.clone(),
            };
            simulate(code, data, &cfg, rng)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use beer_ecc::hamming;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    #[test]
    fn zero_ber_means_zero_errors() {
        let code = hamming::eq1_code();
        let data = BitVec::ones(4);
        let cfg = SimConfig {
            words: 10_000,
            model: ErrorModel::UniformRandom { ber: 0.0 },
        };
        let s = simulate(&code, &data, &cfg, &mut rng(1));
        assert_eq!(s.total_pre_errors(), 0);
        assert_eq!(s.total_post_errors(), 0);
        assert_eq!(s.words_with_pre_errors, 0);
    }

    #[test]
    fn pre_ber_matches_configured_rate() {
        let code = hamming::shortened(32);
        let data = BitVec::ones(32);
        let ber = 1e-2;
        let cfg = SimConfig {
            words: 200_000,
            model: ErrorModel::UniformRandom { ber },
        };
        let s = simulate(&code, &data, &cfg, &mut rng(2));
        let measured = s.pre_ber();
        assert!(
            (measured / ber - 1.0).abs() < 0.05,
            "measured {measured:e} vs configured {ber:e}"
        );
    }

    #[test]
    fn single_errors_never_reach_post_correction() {
        // With BER so low that multi-error words are negligible, the SEC
        // code corrects everything.
        let code = hamming::eq1_code();
        let data = BitVec::ones(4);
        let cfg = SimConfig {
            // Expect ~35 raw errors: a zero-error run is astronomically
            // unlikely for any healthy RNG stream.
            words: 500_000,
            model: ErrorModel::UniformRandom { ber: 1e-5 },
        };
        let s = simulate(&code, &data, &cfg, &mut rng(3));
        assert!(s.words_with_pre_errors > 0, "expected some raw errors");
        assert_eq!(
            s.total_post_errors(),
            0,
            "single errors must all be corrected"
        );
    }

    #[test]
    fn retention_errors_only_hit_charged_cells() {
        let code = hamming::eq1_code();
        // Data 1000 → codeword 1000111: charged cells {0, 4, 5, 6}.
        let data = BitVec::from_bits(&[true, false, false, false]);
        let cfg = SimConfig {
            words: 20_000,
            model: ErrorModel::Retention { ber: 0.3 },
        };
        let s = simulate(&code, &data, &cfg, &mut rng(4));
        for (pos, &count) in s.pre_errors.iter().enumerate() {
            let charged = [0usize, 4, 5, 6].contains(&pos);
            if charged {
                assert!(count > 0, "charged cell {pos} never failed");
            } else {
                assert_eq!(count, 0, "discharged cell {pos} failed");
            }
        }
    }

    #[test]
    fn high_ber_produces_miscorrections() {
        let code = hamming::shortened(16);
        let data = BitVec::ones(16);
        let cfg = SimConfig {
            words: 20_000,
            model: ErrorModel::Retention { ber: 0.1 },
        };
        let s = simulate(&code, &data, &cfg, &mut rng(5));
        assert!(s.miscorrected_words > 0);
        assert!(s.uncorrectable_words > 0);
        assert!(s.total_post_errors() > 0);
    }

    #[test]
    fn weak_cells_fail_at_configured_rate() {
        let code = hamming::shortened(8);
        let data = BitVec::ones(8);
        let cfg = SimConfig {
            words: 100_000,
            model: ErrorModel::WeakCells {
                cells: vec![3],
                fail_probability: 0.25,
            },
        };
        let s = simulate(&code, &data, &cfg, &mut rng(6));
        let rate = s.pre_errors[3] as f64 / s.words as f64;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
        // A single weak cell is always corrected by the SEC code.
        assert_eq!(s.total_post_errors(), 0);
    }

    #[test]
    fn weak_cells_respect_charge() {
        let code = hamming::shortened(8);
        let data = BitVec::zeros(8); // all cells discharged
        let cfg = SimConfig {
            words: 10_000,
            model: ErrorModel::WeakCells {
                cells: vec![0, 5],
                fail_probability: 1.0,
            },
        };
        let s = simulate(&code, &data, &cfg, &mut rng(7));
        assert_eq!(s.total_pre_errors(), 0, "discharged cells cannot decay");
    }

    #[test]
    fn different_ecc_functions_shape_miscorrections_differently() {
        // The Figure 1 observation, in miniature: the miscorrection
        // component of the post-correction distribution is ECC-function
        // specific.
        use beer_ecc::design::{vendor_code, Manufacturer};
        let data = BitVec::ones(16);
        let model = ErrorModel::UniformRandom { ber: 3e-2 };
        let shares: Vec<Vec<f64>> = [Manufacturer::B, Manufacturer::C]
            .iter()
            .map(|&m| {
                let code = vendor_code(m, 16, 0);
                let cfg = SimConfig {
                    words: 150_000,
                    model: model.clone(),
                };
                simulate(&code, &data, &cfg, &mut rng(8)).miscorrection_shares()
            })
            .collect();
        let diff: f64 = shares[0]
            .iter()
            .zip(&shares[1])
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 0.05, "profiles too similar: L1 distance {diff}");
    }

    #[test]
    fn merge_accumulates() {
        let code = hamming::eq1_code();
        let data = BitVec::ones(4);
        let cfg = SimConfig {
            words: 5_000,
            model: ErrorModel::UniformRandom { ber: 1e-2 },
        };
        let mut a = simulate(&code, &data, &cfg, &mut rng(9));
        let b = simulate(&code, &data, &cfg, &mut rng(10));
        let total = a.total_pre_errors() + b.total_pre_errors();
        a.merge(&b);
        assert_eq!(a.words, 10_000);
        assert_eq!(a.total_pre_errors(), total);
    }

    #[test]
    fn batches_are_independent_but_same_size() {
        let code = hamming::eq1_code();
        let data = BitVec::ones(4);
        let batches = simulate_batches(
            &code,
            &data,
            &ErrorModel::UniformRandom { ber: 1e-2 },
            1_000,
            8,
            &mut rng(11),
        );
        assert_eq!(batches.len(), 8);
        assert!(batches.iter().all(|b| b.words == 1_000));
        let counts: Vec<u64> = batches.iter().map(|b| b.total_pre_errors()).collect();
        assert!(counts.windows(2).any(|w| w[0] != w[1]), "batches identical");
    }

    #[test]
    fn sample_positions_density() {
        let mut out = Vec::new();
        let mut r = rng(12);
        let trials = 20_000;
        let mut total = 0usize;
        for _ in 0..trials {
            out.clear();
            sample_positions(0.05, 40, &mut r, &mut out);
            total += out.len();
            assert!(out.windows(2).all(|w| w[0] < w[1]), "not sorted/unique");
            assert!(out.iter().all(|&p| p < 40));
        }
        let mean = total as f64 / trials as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean errors {mean}, expected 2.0");
    }
}
