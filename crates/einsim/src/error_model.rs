//! Pre-correction error models.

/// How raw (pre-correction) errors are injected into stored codewords.
#[derive(Clone, Debug, PartialEq)]
pub enum ErrorModel {
    /// Every codeword bit flips independently with probability `ber`,
    /// regardless of its value (the model behind Figure 1).
    UniformRandom {
        /// Raw bit error rate.
        ber: f64,
    },
    /// Data-retention errors: only CHARGED cells (codeword bits storing 1
    /// under the true-cell convention) decay, each with probability `ber`
    /// per test (§3.2's unidirectional, uniform-random model).
    Retention {
        /// Per-charged-cell failure probability.
        ber: f64,
    },
    /// A fixed set of weak codeword positions, each failing (CHARGED →
    /// DISCHARGED) with probability `fail_probability` per word — the
    /// per-bit error probability model of Figure 9.
    WeakCells {
        /// Codeword positions of the weak cells.
        cells: Vec<usize>,
        /// Per-trial failure probability of each weak cell.
        fail_probability: f64,
    },
}

impl ErrorModel {
    /// Validates the model against a codeword length.
    ///
    /// # Panics
    ///
    /// Panics if a probability is outside `[0, 1]` or a weak-cell position
    /// is out of range.
    pub fn validate(&self, n: usize) {
        match self {
            ErrorModel::UniformRandom { ber } | ErrorModel::Retention { ber } => {
                assert!((0.0..=1.0).contains(ber), "BER {ber} out of [0,1]");
            }
            ErrorModel::WeakCells {
                cells,
                fail_probability,
            } => {
                assert!(
                    (0.0..=1.0).contains(fail_probability),
                    "probability {fail_probability} out of [0,1]"
                );
                for &c in cells {
                    assert!(c < n, "weak cell {c} out of codeword range {n}");
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_accepts_reasonable_models() {
        ErrorModel::UniformRandom { ber: 1e-4 }.validate(38);
        ErrorModel::Retention { ber: 0.5 }.validate(38);
        ErrorModel::WeakCells {
            cells: vec![0, 37],
            fail_probability: 1.0,
        }
        .validate(38);
    }

    #[test]
    #[should_panic(expected = "out of [0,1]")]
    fn validation_rejects_bad_ber() {
        ErrorModel::UniformRandom { ber: 1.5 }.validate(38);
    }

    #[test]
    #[should_panic(expected = "out of codeword range")]
    fn validation_rejects_bad_cell() {
        ErrorModel::WeakCells {
            cells: vec![38],
            fail_probability: 0.5,
        }
        .validate(38);
    }
}
