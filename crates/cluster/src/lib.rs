//! # `beer_cluster`: a fingerprint-sharded multi-node recovery cluster
//!
//! One [`RecoveryService`] dedups perfectly but solves on one machine.
//! This crate shards the work across N nodes with a consistent-hash
//! [`Ring`] over [`ProfileTrace::fingerprint`]: every fingerprint has
//! exactly one owning node, so the cluster keeps the single-service
//! guarantee that matters — *a given profile is solved once* — while
//! unique profiles scale across machines.
//!
//! ```text
//!              Ring (epoch e): fingerprint ──▶ owning node
//!   client ──submit──▶ owner          (ring-aware: routed directly)
//!   client ──submit──▶ non-owner ──SubmitForwarded──▶ owner
//!                         │  (trace in hand: proxied, loop-guarded)
//!                         └──WrongNode{owner}──▶ client re-dials
//!                            (no trace uploaded: typed redirect)
//! ```
//!
//! Three cooperating pieces:
//!
//! * [`Cluster`] — launches N [`NetServer`]s over their services, binds
//!   them, then installs the epoch-1 [`Ring`] built from the bound
//!   addresses on every node (two-phase: addresses exist only after
//!   bind). [`Cluster::install_ring`] swaps membership at a higher
//!   epoch; v3 peers learn of it via `RingChanged` pushes.
//! * Server-side forwarding (in `beer_net`) — a non-owner node holding
//!   the trace proxies the submit to the owner over beer-wire and
//!   relays events and the result back; the proxied submit travels as
//!   `SubmitForwarded`, which an un-owning receiver answers with a
//!   typed [`ErrorKind::WrongNode`] instead of forwarding again — the
//!   loop guard.
//! * [`ClusterClient`] — routes each submit to the fingerprint's owner
//!   using the ring learned at Hello, follows `WrongNode` redirects
//!   (bounded hops), and when the owner is unreachable fails over to
//!   any reachable member by uploading the trace there first, which
//!   engages the server-side forwarding path.
//!
//! See DESIGN.md §"Cluster architecture" and the `cluster_throughput`
//! bench for the scaling methodology.

use beer_core::trace::{Fingerprint, ProfileTrace};
use beer_net::{
    Client, ClientConfig, ClientError, ClusterConfig, ErrorKind, NetServer, NetServerConfig,
    RemoteJob, Ring, RingError, RingMember, WireResult, WireStats,
};
use beer_service::{Priority, RecoveryService};
use std::collections::HashMap;
use std::fmt;
use std::io;
use std::sync::Arc;
use std::time::Duration;

/// Virtual nodes per member when [`Cluster::launch`] builds the ring.
pub const DEFAULT_VNODES: u32 = 64;
/// `WrongNode` redirects a [`ClusterClient`] follows per submit before
/// giving up (a stable ring resolves in one).
const MAX_REDIRECTS: usize = 3;

// ---------------------------------------------------------------------------
// Cluster: N nodes, one ring
// ---------------------------------------------------------------------------

/// One launched node: its service, its network edge, and its ring name.
pub struct ClusterNode {
    /// Ring member name (`node-<i>` when launched by [`Cluster::launch`]).
    pub name: String,
    service: Arc<RecoveryService>,
    server: NetServer,
}

impl ClusterNode {
    /// The node's recovery service (shared; stays up after shutdown of
    /// the network edge).
    pub fn service(&self) -> &Arc<RecoveryService> {
        &self.service
    }

    /// The node's network edge.
    pub fn server(&self) -> &NetServer {
        &self.server
    }

    /// The node's bound address as a dialable string.
    pub fn addr(&self) -> String {
        self.server.local_addr().to_string()
    }
}

/// Errors launching a [`Cluster`].
#[derive(Debug)]
pub enum LaunchError {
    /// A cluster needs at least one service.
    NoServices,
    /// Binding a node's listener failed.
    Io(io::Error),
    /// The generated membership was rejected by [`Ring::new`].
    Ring(RingError),
}

impl fmt::Display for LaunchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LaunchError::NoServices => write!(f, "a cluster needs at least one service"),
            LaunchError::Io(e) => write!(f, "binding a cluster node failed: {e}"),
            LaunchError::Ring(e) => write!(f, "cluster membership rejected: {e}"),
        }
    }
}

impl std::error::Error for LaunchError {}

impl From<io::Error> for LaunchError {
    fn from(e: io::Error) -> LaunchError {
        LaunchError::Io(e)
    }
}

impl From<RingError> for LaunchError {
    fn from(e: RingError) -> LaunchError {
        LaunchError::Ring(e)
    }
}

/// N recovery nodes sharing one consistent-hash ring (see the module
/// docs). Owns the network edges; the services are shared.
pub struct Cluster {
    nodes: Vec<ClusterNode>,
    ring: Ring,
}

impl Cluster {
    /// Launches one [`NetServer`] per service on ephemeral loopback
    /// ports, then installs the epoch-1 ring over the bound addresses
    /// on every node. Node `i` becomes ring member `node-i`.
    ///
    /// # Errors
    ///
    /// [`LaunchError::NoServices`] for an empty service list; bind and
    /// ring-validation failures otherwise.
    pub fn launch(services: Vec<Arc<RecoveryService>>) -> Result<Cluster, LaunchError> {
        Cluster::launch_with(services, NetServerConfig::new(), DEFAULT_VNODES)
    }

    /// [`Cluster::launch`] with a base server configuration (its
    /// `cluster` field is overwritten per node) and an explicit
    /// virtual-node count.
    pub fn launch_with(
        services: Vec<Arc<RecoveryService>>,
        base: NetServerConfig,
        vnodes: u32,
    ) -> Result<Cluster, LaunchError> {
        if services.is_empty() {
            return Err(LaunchError::NoServices);
        }
        // Phase 1: bind every node. Addresses exist only after bind, so
        // the ring cannot be built (or installed) before this completes.
        let mut nodes = Vec::with_capacity(services.len());
        for (i, service) in services.into_iter().enumerate() {
            let name = format!("node-{i}");
            let config = base
                .clone()
                .with_server_name(name.clone())
                .with_cluster(ClusterConfig::new(name.clone()));
            let server = NetServer::bind(Arc::clone(&service), "127.0.0.1:0", config)?;
            nodes.push(ClusterNode {
                name,
                service,
                server,
            });
        }
        // Phase 2: build the epoch-1 ring from the bound addresses and
        // install it everywhere.
        let members: Vec<RingMember> = nodes
            .iter()
            .map(|node| RingMember {
                name: node.name.clone(),
                addr: node.addr(),
            })
            .collect();
        let ring = Ring::new(1, vnodes, members)?;
        for node in &nodes {
            node.server.set_ring(ring.clone());
        }
        Ok(Cluster { nodes, ring })
    }

    /// The launched nodes.
    pub fn nodes(&self) -> &[ClusterNode] {
        &self.nodes
    }

    /// Every node's dialable address, in node order — a client's seed
    /// list.
    pub fn addrs(&self) -> Vec<String> {
        self.nodes.iter().map(ClusterNode::addr).collect()
    }

    /// The currently installed ring.
    pub fn ring(&self) -> &Ring {
        &self.ring
    }

    /// Installs `ring` on every node (v3 peers are pushed a
    /// `RingChanged`). The caller owns epoch discipline: clients only
    /// adopt rings with a *higher* epoch than the one they hold.
    pub fn install_ring(&mut self, ring: Ring) {
        for node in &self.nodes {
            node.server.set_ring(ring.clone());
        }
        self.ring = ring;
    }

    /// Shuts down every node's network edge (draining up to `drain`
    /// each). The services are left running — they are shared.
    pub fn shutdown(self, drain: Duration) {
        for node in self.nodes {
            node.server.shutdown(drain);
        }
    }
}

// ---------------------------------------------------------------------------
// ClusterClient: ring-aware routing
// ---------------------------------------------------------------------------

/// Errors from a [`ClusterClient`].
#[derive(Debug)]
pub enum ClusterError {
    /// The client has no members to talk to.
    NoMembers,
    /// Every route to the fingerprint's owner failed; the last error is
    /// attached.
    Unreachable {
        /// The owner that could not be reached.
        owner: String,
        /// The error from the final attempt.
        last: ClientError,
    },
    /// The cluster kept redirecting (`WrongNode`) past the hop bound —
    /// membership is churning faster than the client can follow.
    RedirectLoop {
        /// The fingerprint being routed.
        fingerprint: Fingerprint,
    },
    /// A non-routing client error (refusal, protocol violation, ...).
    Client(ClientError),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::NoMembers => write!(f, "no cluster members to talk to"),
            ClusterError::Unreachable { owner, last } => {
                write!(
                    f,
                    "owner {owner} unreachable and no forwarding route: {last}"
                )
            }
            ClusterError::RedirectLoop { fingerprint } => {
                write!(f, "redirect loop routing {fingerprint}: ring is churning")
            }
            ClusterError::Client(e) => write!(f, "cluster client error: {e}"),
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<ClientError> for ClusterError {
    fn from(e: ClientError) -> ClusterError {
        ClusterError::Client(e)
    }
}

/// A job accepted somewhere in the cluster: the node that acked it (the
/// owner, or a proxying non-owner) and the job handle there.
#[derive(Clone, Debug)]
pub struct ClusterJob {
    /// Address of the node that acked the submit — where to watch.
    pub addr: String,
    /// The job handle on that node.
    pub job: RemoteJob,
}

/// A ring-aware client: routes each submit straight to the owning node,
/// follows [`ErrorKind::WrongNode`] redirects when its ring is stale,
/// and falls back to any reachable member (engaging server-side
/// forwarding) when the owner is unreachable.
pub struct ClusterClient {
    tenant: String,
    token: String,
    config: ClientConfig,
    seeds: Vec<String>,
    ring: Option<Ring>,
    clients: HashMap<String, Client>,
}

impl ClusterClient {
    /// Connects to the first reachable seed and adopts the ring from
    /// its HelloAck.
    ///
    /// # Errors
    ///
    /// [`ClusterError::NoMembers`] for an empty seed list; the last
    /// connect error when no seed is reachable.
    pub fn connect(
        seeds: Vec<String>,
        tenant: impl Into<String>,
        token: impl Into<String>,
    ) -> Result<ClusterClient, ClusterError> {
        ClusterClient::connect_with(seeds, tenant, token, ClientConfig::new())
    }

    /// [`ClusterClient::connect`] with an explicit per-node client
    /// configuration.
    pub fn connect_with(
        seeds: Vec<String>,
        tenant: impl Into<String>,
        token: impl Into<String>,
        config: ClientConfig,
    ) -> Result<ClusterClient, ClusterError> {
        if seeds.is_empty() {
            return Err(ClusterError::NoMembers);
        }
        let mut cluster = ClusterClient {
            tenant: tenant.into(),
            token: token.into(),
            config,
            seeds: seeds.clone(),
            ring: None,
            clients: HashMap::new(),
        };
        let mut last = None;
        for seed in seeds {
            match cluster.client(&seed) {
                Ok(_) => return Ok(cluster),
                Err(e) => last = Some(e),
            }
        }
        Err(ClusterError::Unreachable {
            owner: cluster.seeds.join(","),
            last: last.expect("at least one seed was tried"),
        })
    }

    /// The ring the client is currently routing with.
    pub fn ring(&self) -> Option<&Ring> {
        self.ring.as_ref()
    }

    /// The connected client for `addr`, dialing if necessary, adopting
    /// any newer ring the node advertises in its HelloAck.
    fn client(&mut self, addr: &str) -> Result<&mut Client, ClientError> {
        if !self.clients.contains_key(addr) {
            let client = Client::connect_with(
                addr,
                self.tenant.clone(),
                self.token.clone(),
                self.config.clone(),
            )?;
            self.adopt(client.ring().cloned());
            self.clients.insert(addr.to_string(), client);
        }
        Ok(self.clients.get_mut(addr).expect("just inserted"))
    }

    /// Adopts `ring` if it is newer than the one held.
    fn adopt(&mut self, ring: Option<Ring>) {
        if let Some(ring) = ring {
            let newer = match &self.ring {
                Some(held) => ring.epoch() > held.epoch(),
                None => true,
            };
            if newer {
                self.ring = Some(ring);
            }
        }
    }

    /// Where a submit for `fingerprint` should go first: the ring owner
    /// when a ring is held, otherwise the first seed.
    fn route(&self, fingerprint: Fingerprint) -> String {
        match &self.ring {
            Some(ring) => ring.owner(fingerprint).addr.clone(),
            None => self.seeds[0].clone(),
        }
    }

    /// Submits `trace` with [`Priority::Normal`] and no deadline.
    ///
    /// # Errors
    ///
    /// As [`ClusterClient::submit_with`].
    pub fn submit(&mut self, trace: &ProfileTrace) -> Result<ClusterJob, ClusterError> {
        self.submit_with(trace, Priority::Normal, None)
    }

    /// Submits `trace` to the owning node: routed by the held ring,
    /// following up to 3 `WrongNode` redirects (adopting any fresher
    /// ring pushed along the way), and failing over to the remaining
    /// members — upload first, so the non-owner proxies the submit to
    /// the owner — when the owner itself is unreachable.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Unreachable`] when every route fails;
    /// [`ClusterError::RedirectLoop`] past the hop bound; any non-routing
    /// refusal as [`ClusterError::Client`].
    pub fn submit_with(
        &mut self,
        trace: &ProfileTrace,
        priority: Priority,
        deadline: Option<Duration>,
    ) -> Result<ClusterJob, ClusterError> {
        let fingerprint = trace.fingerprint();
        let mut addr = self.route(fingerprint);
        let mut transport_error = None;
        for _ in 0..=MAX_REDIRECTS {
            let outcome = match self.client(&addr) {
                Ok(client) => client.submit_with(trace, priority, deadline),
                Err(e) => {
                    transport_error = Some((addr.clone(), e));
                    break;
                }
            };
            match outcome {
                Ok(job) => {
                    let ring = self.clients.get(&addr).and_then(|c| c.ring().cloned());
                    self.adopt(ring);
                    return Ok(ClusterJob { addr, job });
                }
                Err(ClientError::Refused {
                    kind: ErrorKind::WrongNode { owner },
                    ..
                }) => {
                    // Our ring was stale: the node told us who owns the
                    // fingerprint now. Adopt whatever fresher ring it
                    // pushed, then follow the redirect.
                    let ring = self.clients.get(&addr).and_then(|c| c.ring().cloned());
                    self.adopt(ring);
                    if owner.is_empty() || owner == addr {
                        return Err(ClusterError::RedirectLoop { fingerprint });
                    }
                    addr = owner;
                }
                Err(e @ (ClientError::Io(_) | ClientError::Disconnected)) => {
                    transport_error = Some((addr.clone(), e));
                    break;
                }
                Err(e) => return Err(ClusterError::Client(e)),
            }
        }
        let Some((owner, last)) = transport_error else {
            return Err(ClusterError::RedirectLoop { fingerprint });
        };
        // The owner is unreachable from here. Any member holding the
        // trace will proxy the submit over its own link, so stage the
        // trace on each remaining member until one accepts.
        self.clients.remove(&owner);
        let mut last = last;
        let fallbacks: Vec<String> = self
            .seeds
            .iter()
            .filter(|seed| **seed != owner)
            .cloned()
            .collect();
        for fallback in fallbacks {
            let outcome = self.client(&fallback).and_then(|client| {
                client.upload_trace(trace)?;
                client.submit_with(trace, priority, deadline)
            });
            match outcome {
                Ok(job) => {
                    return Ok(ClusterJob {
                        addr: fallback,
                        job,
                    })
                }
                Err(e) => last = e,
            }
        }
        Err(ClusterError::Unreachable { owner, last })
    }

    /// Blocks until `job` completes on the node that acked it.
    ///
    /// # Errors
    ///
    /// Transport and refusal errors as [`ClusterError::Client`].
    pub fn wait(&mut self, job: &ClusterJob) -> Result<WireResult, ClusterError> {
        let client = self.client(&job.addr)?;
        Ok(client.wait(job.job)?)
    }

    /// [`ClusterClient::wait`] delivering every streamed event.
    ///
    /// # Errors
    ///
    /// As [`ClusterClient::wait`].
    pub fn wait_with(
        &mut self,
        job: &ClusterJob,
        on_event: impl FnMut(&beer_net::WireEvent),
    ) -> Result<WireResult, ClusterError> {
        let client = self.client(&job.addr)?;
        Ok(client.wait_with(job.job, on_event)?)
    }

    /// The stats answer from the node at `addr`.
    ///
    /// # Errors
    ///
    /// As [`ClusterClient::wait`].
    pub fn stats(&mut self, addr: &str) -> Result<WireStats, ClusterError> {
        Ok(self.client(addr)?.stats()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn launch_refuses_an_empty_cluster() {
        match Cluster::launch(Vec::new()) {
            Err(LaunchError::NoServices) => {}
            other => panic!("expected NoServices, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn connect_refuses_an_empty_seed_list() {
        match ClusterClient::connect(Vec::new(), "t", "") {
            Err(ClusterError::NoMembers) => {}
            other => panic!("expected NoMembers, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn route_falls_back_to_the_first_seed_without_a_ring() {
        let client = ClusterClient {
            tenant: "t".to_string(),
            token: String::new(),
            config: ClientConfig::new(),
            seeds: vec!["127.0.0.1:9".to_string(), "127.0.0.1:10".to_string()],
            ring: None,
            clients: HashMap::new(),
        };
        assert_eq!(client.route(Fingerprint(42)), "127.0.0.1:9");
    }

    #[test]
    fn route_follows_the_ring_owner() {
        let members = vec![
            RingMember {
                name: "a".to_string(),
                addr: "127.0.0.1:1".to_string(),
            },
            RingMember {
                name: "b".to_string(),
                addr: "127.0.0.1:2".to_string(),
            },
        ];
        let ring = Ring::new(1, 64, members).expect("valid ring");
        let client = ClusterClient {
            tenant: "t".to_string(),
            token: String::new(),
            config: ClientConfig::new(),
            seeds: vec!["127.0.0.1:1".to_string()],
            ring: Some(ring.clone()),
            clients: HashMap::new(),
        };
        for raw in [1u128, 7, 1 << 77, u128::MAX] {
            let fp = Fingerprint(raw);
            assert_eq!(client.route(fp), ring.owner(fp).addr);
        }
    }

    #[test]
    fn adopt_keeps_the_newest_epoch() {
        let member = |name: &str| RingMember {
            name: name.to_string(),
            addr: format!("127.0.0.1:{}", name.len()),
        };
        let mut client = ClusterClient {
            tenant: "t".to_string(),
            token: String::new(),
            config: ClientConfig::new(),
            seeds: vec!["127.0.0.1:1".to_string()],
            ring: None,
            clients: HashMap::new(),
        };
        client.adopt(Some(Ring::new(3, 8, vec![member("a")]).unwrap()));
        assert_eq!(client.ring().unwrap().epoch(), 3);
        // An older ring is ignored...
        client.adopt(Some(Ring::new(2, 8, vec![member("bb")]).unwrap()));
        assert_eq!(client.ring().unwrap().epoch(), 3);
        assert_eq!(client.ring().unwrap().members()[0].name, "a");
        // ...a newer one replaces.
        client.adopt(Some(Ring::new(4, 8, vec![member("cc")]).unwrap()));
        assert_eq!(client.ring().unwrap().members()[0].name, "cc");
        client.adopt(None);
        assert_eq!(client.ring().unwrap().epoch(), 4);
    }
}
