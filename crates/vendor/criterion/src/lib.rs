//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset used by this workspace's micro-benchmarks:
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Measurement is a
//! simple calibrated loop reporting the median per-iteration time — no
//! statistics engine, plots, or baselines.

use std::time::{Duration, Instant};

/// Batch-size hint for [`Bencher::iter_batched`] (accepted, unused).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the measurement-time budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up time per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\ngroup {name}");
        BenchmarkGroup {
            criterion: self,
            group: name,
            sample_size: None,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function(&mut self, name: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let settings = (self.sample_size, self.measurement_time, self.warm_up_time);
        run_benchmark(&name.into(), settings, f);
    }
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    group: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample size for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(&mut self, name: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let settings = (
            self.sample_size.unwrap_or(self.criterion.sample_size),
            self.criterion.measurement_time,
            self.criterion.warm_up_time,
        );
        run_benchmark(&format!("{}/{}", self.group, name.into()), settings, f);
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Collects timing samples for one benchmark routine.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    mode: BenchMode,
}

enum BenchMode {
    Calibrate,
    Measure,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        match self.mode {
            BenchMode::Calibrate => {
                // Find an iteration count taking ≥ ~1 ms per sample.
                let mut iters: u64 = 1;
                loop {
                    let start = Instant::now();
                    for _ in 0..iters {
                        std::hint::black_box(routine());
                    }
                    let elapsed = start.elapsed();
                    if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                        self.iters_per_sample = iters;
                        break;
                    }
                    iters *= 4;
                }
            }
            BenchMode::Measure => {
                let start = Instant::now();
                for _ in 0..self.iters_per_sample {
                    std::hint::black_box(routine());
                }
                let per_iter = start.elapsed() / self.iters_per_sample as u32;
                self.samples.push(per_iter);
            }
        }
    }

    /// Times `routine` over fresh inputs from `setup` (setup excluded from
    /// the timing).
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        match self.mode {
            BenchMode::Calibrate => {
                self.iters_per_sample = 1;
                let input = setup();
                std::hint::black_box(routine(input));
            }
            BenchMode::Measure => {
                let input = setup();
                let start = Instant::now();
                std::hint::black_box(routine(input));
                self.samples.push(start.elapsed());
            }
        }
    }
}

fn run_benchmark(
    name: &str,
    (sample_size, measurement_time, warm_up_time): (usize, Duration, Duration),
    mut f: impl FnMut(&mut Bencher),
) {
    // Calibration doubles as warm-up; keep invoking until the budget is
    // spent so cold-start effects wash out.
    let warm_start = Instant::now();
    let mut bencher = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
        mode: BenchMode::Calibrate,
    };
    f(&mut bencher);
    while warm_start.elapsed() < warm_up_time {
        f(&mut bencher);
    }

    bencher.mode = BenchMode::Measure;
    let measure_start = Instant::now();
    for _ in 0..sample_size {
        f(&mut bencher);
        if measure_start.elapsed() > measurement_time {
            break;
        }
    }

    if bencher.samples.is_empty() {
        println!("  {name:<40} (no samples)");
        return;
    }
    bencher.samples.sort_unstable();
    let median = bencher.samples[bencher.samples.len() / 2];
    let min = bencher.samples[0];
    let max = bencher.samples[bencher.samples.len() - 1];
    println!(
        "  {name:<40} median {:>12?}  (min {:?}, max {:?}, {} samples)",
        median,
        min,
        max,
        bencher.samples.len()
    );
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_produces_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(50))
            .warm_up_time(Duration::from_millis(1));
        // Smoke test: must terminate and not panic.
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
