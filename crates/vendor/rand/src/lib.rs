//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in network-isolated environments where crates.io
//! is unreachable, so the exact API subset the workspace uses is provided
//! locally: [`Rng`], [`SeedableRng`], [`rngs::StdRng`], [`rngs::SmallRng`],
//! [`seq::SliceRandom`], and [`seq::index::sample`].
//!
//! The generator is xoshiro256** seeded through SplitMix64 — statistically
//! solid for simulation workloads and deterministic for a given seed, which
//! is all the BEER reproduction requires. Streams differ from the real
//! `rand` crate; every consumer in this workspace treats seeds as opaque.

/// A source of random `u64` words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be drawn uniformly from an RNG via [`Rng::random`].
pub trait Standard: Sized {
    /// Draws a uniform value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for u8 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for u16 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for i32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as i32
    }
}

impl Standard for i64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::random_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws a uniform value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64 + 1;
                if span == 0 {
                    // Full-width range.
                    return <$t as Standard>::draw(rng);
                }
                start + (uniform_u64(rng, span) as $t)
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

/// Unbiased uniform draw in `0..span` by rejection sampling.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

/// User-facing random-value methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform value of type `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// A uniform value from a range.
    fn random_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The xoshiro256** core shared by [`rngs::StdRng`] and [`rngs::SmallRng`].
#[derive(Clone, Debug)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Xoshiro256 { s }
    }
}

impl RngCore for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256};

    /// Stand-in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng(Xoshiro256);

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng(Xoshiro256::from_u64(seed ^ 0x5D52_A9E2_1F4B_7C36))
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Stand-in for `rand::rngs::SmallRng`.
    #[derive(Clone, Debug)]
    pub struct SmallRng(Xoshiro256);

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng(Xoshiro256::from_u64(seed))
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Slice shuffling.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::uniform_u64(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }

    /// Index sampling without replacement.
    pub mod index {
        use super::super::Rng;

        /// A sampled index set (stand-in for `rand::seq::index::IndexVec`).
        #[derive(Clone, Debug)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// The sampled indices as a vector.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;
            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        /// Samples `amount` distinct indices from `0..length` (partial
        /// Fisher–Yates; order is random).
        ///
        /// # Panics
        ///
        /// Panics if `amount > length`.
        pub fn sample<R: Rng + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(amount <= length, "cannot sample {amount} from {length}");
            let mut pool: Vec<usize> = (0..length).collect();
            for i in 0..amount {
                let j = i + super::super::uniform_u64(rng, (length - i) as u64) as usize;
                pool.swap(i, j);
            }
            pool.truncate(amount);
            IndexVec(pool)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::{SmallRng, StdRng};
    use super::seq::index::sample;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = r.random::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02, "mean far from 0.5");
    }

    #[test]
    fn range_sampling_in_bounds() {
        let mut r = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x = r.random_range(10usize..20);
            assert!((10..20).contains(&x));
            let y = r.random_range(5u32..=7);
            assert!((5..=7).contains(&y));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left the slice sorted (astronomically unlikely)"
        );
    }

    #[test]
    fn sample_yields_distinct_indices() {
        let mut r = StdRng::seed_from_u64(4);
        let s: Vec<usize> = sample(&mut r, 100, 10).into_iter().collect();
        assert_eq!(s.len(), 10);
        let set: std::collections::HashSet<_> = s.iter().collect();
        assert_eq!(set.len(), 10);
        assert!(s.iter().all(|&i| i < 100));
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut r = SmallRng::seed_from_u64(5);
        let trues = (0..10_000).filter(|_| r.random::<bool>()).count();
        assert!((4500..5500).contains(&trues), "got {trues} trues");
    }
}
