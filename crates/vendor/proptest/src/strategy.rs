//! Value-generation strategies.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of an associated type.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Chains generation: the mapped function returns a new strategy that
    /// is sampled for the final value.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// The [`Strategy::prop_flat_map`] adapter.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The strategy returned by [`crate::arbitrary::any`].
pub struct AnyStrategy<T>(pub(crate) PhantomData<T>);

macro_rules! impl_any_uint {
    ($($t:ty),*) => {$(
        impl Strategy for AnyStrategy<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_any_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyStrategy<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

impl Strategy for AnyStrategy<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end - start) as u64 + 1;
                start + rng.below(span) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_test("ranges");
        for _ in 0..500 {
            let a = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&a));
            let b = (1u32..=4).generate(&mut rng);
            assert!((1..=4).contains(&b));
            let c = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&c));
        }
    }

    #[test]
    fn map_and_tuple_compose() {
        let mut rng = TestRng::for_test("compose");
        let strat = (0usize..10, any::<bool>()).prop_map(|(n, b)| if b { n } else { n + 100 });
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!(v < 10 || (100..110).contains(&v));
        }
    }
}
