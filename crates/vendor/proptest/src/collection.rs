//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A length specification for collection strategies.
#[derive(Clone, Debug)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max_inclusive: *r.end(),
        }
    }
}

/// A strategy generating `Vec`s of values from an element strategy.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max_inclusive - self.size.min) as u64 + 1;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A vector strategy with the given element strategy and length range.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn fixed_and_ranged_lengths() {
        let mut rng = TestRng::for_test("veclen");
        for _ in 0..100 {
            assert_eq!(vec(any::<bool>(), 7).generate(&mut rng).len(), 7);
            let l = vec(any::<u8>(), 1..4).generate(&mut rng).len();
            assert!((1..4).contains(&l));
            let m = vec(any::<u8>(), 2..=5).generate(&mut rng).len();
            assert!((2..=5).contains(&m));
        }
    }
}
