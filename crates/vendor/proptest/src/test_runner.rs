//! Test configuration, case errors, and the deterministic generation RNG.

use std::fmt;

/// Per-test configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the SAT-heavy property
        // tests in this workspace fast while preserving coverage.
        ProptestConfig { cases: 64 }
    }
}

/// Why a test case did not succeed.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case failed an assertion.
    Fail(String),
    /// The case was rejected by `prop_assume!` (re-drawn, not counted).
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection with the given message.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// Result of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The deterministic generation RNG (SplitMix64-seeded xorshift-star).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from the test function name, so every test has a
    /// reproducible stream independent of execution order.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        // SplitMix64.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..span` (rejection-free for test purposes).
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        // 128-bit multiply-shift: unbiased enough for test generation.
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }

    /// Uniform f64 in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::for_test("foo");
        let mut b = TestRng::for_test("foo");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_test("bar");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = TestRng::for_test("bound");
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }
}
