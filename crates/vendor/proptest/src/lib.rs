//! Offline stand-in for the `proptest` crate.
//!
//! Provides the exact API subset this workspace's property tests use:
//! the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! [`strategy::Strategy`] with `prop_map`, range / `any` / tuple / vec
//! strategies, and the `prop_assert*` / `prop_assume!` macros.
//!
//! Unlike real proptest there is no shrinking: a failing case panics with
//! the case number and message. Generation is deterministic per test
//! function (seeded from the test name), so failures are reproducible.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Marker-based uniform generation, mirroring `proptest::arbitrary::any`.
pub mod arbitrary {
    use crate::strategy::AnyStrategy;
    use std::marker::PhantomData;

    /// A strategy producing uniform values of `T`.
    pub fn any<T>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

/// The common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespaced module tree (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests.
///
/// Supports the standard form: an optional `#![proptest_config(expr)]`
/// inner attribute followed by `#[test] fn name(arg in strategy, ...) { body }`
/// items. Each test runs `config.cases` generated cases; `prop_assume!`
/// rejections are retried without counting as cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                let mut cases_run: u32 = 0;
                let mut rejected: u32 = 0;
                while cases_run < config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                    let outcome: $crate::test_runner::TestCaseResult =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    match outcome {
                        ::core::result::Result::Ok(()) => cases_run += 1,
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                            rejected += 1;
                            assert!(
                                rejected <= config.cases.saturating_mul(20).max(1000),
                                "too many prop_assume! rejections ({rejected})"
                            );
                        }
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("proptest case {cases_run} failed: {msg}");
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: `{:?}` == `{:?}`", l, r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: `{:?}` == `{:?}`: {}", l, r, format!($($fmt)*)
                );
            }
        }
    };
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l != *r,
                    "assertion failed: `{:?}` != `{:?}`", l, r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l != *r,
                    "assertion failed: `{:?}` != `{:?}`: {}", l, r, format!($($fmt)*)
                );
            }
        }
    };
}

/// Rejects the current case (it is re-drawn and not counted).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}
