//! The BEER → BEEP bridge: using a recovery session's outcome as BEEP's
//! code source.
//!
//! BEEP needs the chip's exact ECC function (§7.1 assumes it was
//! recovered with BEER). Instead of threading a bare [`LinearCode`]
//! through by hand, callers can hand the typed
//! [`RecoveryOutcome`] of a `beer_core::recovery::RecoverySession`
//! straight to the profiler; anything short of a unique recovery is a
//! typed refusal, because profiling against an ambiguous or inconsistent
//! function would attribute errors to the wrong cells.

use crate::profiler::{profile_word, BeepConfig, BeepResult};
use crate::target::WordTarget;
use beer_core::recovery::RecoveryOutcome;
use beer_ecc::LinearCode;
use std::fmt;

/// Why a recovery outcome cannot serve as BEEP's code source.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RecoveredCodeError {
    /// Several functions remain consistent; BEEP needs exactly one.
    Ambiguous {
        /// Witness count (a lower bound if the enumeration was capped).
        count: usize,
    },
    /// No function is consistent with the profile.
    Inconsistent,
    /// The session stopped on a budget before deciding.
    BudgetExhausted,
}

impl fmt::Display for RecoveredCodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveredCodeError::Ambiguous { count } => write!(
                f,
                "recovery left {count} candidate ECC functions; BEEP needs a unique one \
                 (collect more patterns, e.g. the {{1,2}}-CHARGED schedule)"
            ),
            RecoveredCodeError::Inconsistent => {
                write!(f, "recovery found no consistent ECC function")
            }
            RecoveredCodeError::BudgetExhausted => {
                write!(
                    f,
                    "recovery stopped on a budget before the function was unique"
                )
            }
        }
    }
}

impl std::error::Error for RecoveredCodeError {}

/// The uniquely recovered code, or a typed refusal.
///
/// # Errors
///
/// Returns a [`RecoveredCodeError`] for every non-[`RecoveryOutcome::Unique`]
/// outcome.
pub fn code_from_outcome(outcome: &RecoveryOutcome) -> Result<&LinearCode, RecoveredCodeError> {
    match outcome {
        RecoveryOutcome::Unique(code) => Ok(code),
        RecoveryOutcome::Ambiguous { count, .. } => {
            Err(RecoveredCodeError::Ambiguous { count: *count })
        }
        RecoveryOutcome::Inconsistent => Err(RecoveredCodeError::Inconsistent),
        RecoveryOutcome::BudgetExhausted { .. } => Err(RecoveredCodeError::BudgetExhausted),
    }
}

/// Runs the full BEEP profiling loop with a recovery outcome as the code
/// source — the composed BEER → BEEP pipeline of §7.1.
///
/// # Errors
///
/// The conditions of [`code_from_outcome`].
pub fn profile_recovered_word(
    outcome: &RecoveryOutcome,
    target: &mut dyn WordTarget,
    config: &BeepConfig,
) -> Result<BeepResult, RecoveredCodeError> {
    let code = code_from_outcome(outcome)?;
    Ok(profile_word(code, target, config))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::target::SimWordTarget;
    use beer_ecc::hamming;

    #[test]
    fn unique_outcome_profiles_like_a_bare_code() {
        let code = hamming::full_length(5);
        let weak = vec![3usize, 17, 29];
        let outcome = RecoveryOutcome::Unique(code.clone());
        let mut target = SimWordTarget::new(code, weak.clone(), 1.0, 99);
        let result = profile_recovered_word(&outcome, &mut target, &BeepConfig::default())
            .expect("unique outcome");
        assert_eq!(result.discovered_sorted(), weak);
    }

    #[test]
    fn non_unique_outcomes_are_typed_refusals() {
        let code = hamming::eq1_code();
        let ambiguous = RecoveryOutcome::Ambiguous {
            count: 3,
            truncated: false,
            witnesses: vec![code.clone(); 3],
        };
        assert_eq!(
            code_from_outcome(&ambiguous),
            Err(RecoveredCodeError::Ambiguous { count: 3 })
        );
        assert_eq!(
            code_from_outcome(&RecoveryOutcome::Inconsistent),
            Err(RecoveredCodeError::Inconsistent)
        );
        let exhausted = RecoveryOutcome::BudgetExhausted {
            reason: beer_core::recovery::BudgetReason::Deadline,
            partial: vec![code],
        };
        assert_eq!(
            code_from_outcome(&exhausted),
            Err(RecoveredCodeError::BudgetExhausted)
        );
        assert!(code_from_outcome(&ambiguous)
            .unwrap_err()
            .to_string()
            .contains("3 candidate"));
    }
}
