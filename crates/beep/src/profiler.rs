//! The BEEP profiling loop (Figure 7).

use crate::craft::craft_with_fallback;
use crate::decode::decode_read;
use crate::target::WordTarget;
use beer_ecc::LinearCode;
use beer_gf2::BitVec;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// Configuration of a BEEP run.
#[derive(Clone, Copy, Debug)]
pub struct BeepConfig {
    /// Full traversals of the codeword (Figure 8 compares 1 vs 2).
    pub passes: usize,
    /// Retention trials per crafted pattern (more trials catch
    /// low-probability errors, Figure 9).
    pub trials_per_pattern: usize,
    /// Random seed patterns run before the first pass to bootstrap the
    /// known-error set (see the crate docs).
    pub seed_patterns: usize,
    /// RNG seed for the bootstrap patterns.
    pub seed: u64,
}

impl Default for BeepConfig {
    fn default() -> Self {
        BeepConfig {
            passes: 1,
            trials_per_pattern: 4,
            seed_patterns: 16,
            seed: 0xBEE9,
        }
    }
}

/// The outcome of profiling one ECC word.
#[derive(Clone, Debug)]
pub struct BeepResult {
    /// Codeword positions identified as error-prone (bit-exact, including
    /// parity positions).
    pub discovered: BTreeSet<usize>,
    /// Patterns that could not be crafted (no miscorrection reachable).
    pub skipped_bits: usize,
    /// Total crafted patterns tested.
    pub patterns_tested: usize,
    /// Total retention trials executed.
    pub trials_run: usize,
}

impl BeepResult {
    /// The discovered positions as a sorted vector.
    pub fn discovered_sorted(&self) -> Vec<usize> {
        self.discovered.iter().copied().collect()
    }
}

/// Runs BEEP against one word: bootstrap with random seed patterns, then
/// `config.passes` traversals crafting one pattern per codeword bit.
///
/// Every decoded miscorrection contributes its exact pre-correction error
/// set to the discovered list; visible 1→0 decays (partial corrections)
/// contribute their data positions directly.
///
/// # Panics
///
/// Panics if `target.k() != code.k()`.
pub fn profile_word(
    code: &LinearCode,
    target: &mut dyn WordTarget,
    config: &BeepConfig,
) -> BeepResult {
    assert_eq!(target.k(), code.k(), "code/target dataword mismatch");
    let k = code.k();
    let n = code.n();
    // Two tiers of knowledge:
    //  * `confirmed` — positions proven by an exact miscorrection decode
    //    (Equation 4); these are reported.
    //  * `candidates` — `confirmed` plus ambiguous 1→0 decays at CHARGED
    //    bits (the paper's '?' class); a decay there is *either* a real
    //    error or a miscorrection onto a charged bit, so candidates only
    //    guide pattern crafting and are never reported.
    let mut confirmed: BTreeSet<usize> = BTreeSet::new();
    let mut candidates: BTreeSet<usize> = BTreeSet::new();
    let mut result_counters = (0usize, 0usize, 0usize); // skipped, patterns, trials
    let mut rng = SmallRng::seed_from_u64(config.seed);

    let run_pattern = |data: &BitVec,
                       target: &mut dyn WordTarget,
                       confirmed: &mut BTreeSet<usize>,
                       candidates: &mut BTreeSet<usize>,
                       trials: usize| {
        let mut ran = 0;
        for _ in 0..trials {
            let read = target.run_trial(data);
            ran += 1;
            if read == *data {
                continue;
            }
            let trial = decode_read(code, data, &read);
            if let Some(errors) = trial.errors {
                confirmed.extend(errors.iter().copied());
                candidates.extend(errors);
            } else {
                candidates.extend(trial.visible_decays);
            }
        }
        ran
    };

    // Bootstrap: random half-density patterns expose initial errors via
    // lucky miscorrections.
    for _ in 0..config.seed_patterns {
        let data: BitVec = (0..k).map(|_| rng.random::<bool>()).collect();
        result_counters.2 += run_pattern(
            &data,
            target,
            &mut confirmed,
            &mut candidates,
            config.trials_per_pattern,
        );
    }

    // Targeted passes over every codeword bit. Crafting conditions the
    // planned syndrome only on *proven* errors; unproven candidates are
    // kept DISCHARGED so a surprise decay cannot corrupt the plan. With no
    // proven errors yet, the ambiguous candidates are the best available
    // conditioning set.
    for _pass in 0..config.passes {
        for bit in 0..n {
            let (known, avoid): (Vec<usize>, Vec<usize>) = if confirmed.is_empty() {
                (candidates.iter().copied().collect(), Vec::new())
            } else {
                (
                    confirmed.iter().copied().collect(),
                    candidates.difference(&confirmed).copied().collect(),
                )
            };
            match craft_with_fallback(code, bit, &known, &avoid) {
                Some((data, _strict)) => {
                    result_counters.1 += 1;
                    result_counters.2 += run_pattern(
                        &data,
                        target,
                        &mut confirmed,
                        &mut candidates,
                        config.trials_per_pattern,
                    );
                }
                None => {
                    result_counters.0 += 1;
                }
            }
        }
    }

    BeepResult {
        discovered: confirmed,
        skipped_bits: result_counters.0,
        patterns_tested: result_counters.1,
        trials_run: result_counters.2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::target::SimWordTarget;
    use beer_ecc::hamming;

    #[test]
    fn finds_deterministic_weak_cells_exactly() {
        let code = hamming::full_length(5); // (31, 26)
        let weak = vec![2usize, 11, 30];
        let mut target = SimWordTarget::new(code.clone(), weak.clone(), 1.0, 7);
        let config = BeepConfig {
            passes: 2,
            ..BeepConfig::default()
        };
        let result = profile_word(&code, &mut target, &config);
        assert_eq!(result.discovered_sorted(), weak);
        assert!(result.patterns_tested > 0);
        assert!(result.trials_run > 0);
    }

    #[test]
    fn finds_parity_weak_cells() {
        let code = hamming::full_length(4); // (15, 11)
        let weak = vec![11usize, 13]; // both in the parity section
        let mut target = SimWordTarget::new(code.clone(), weak.clone(), 1.0, 8);
        let result = profile_word(&code, &mut target, &BeepConfig::default());
        assert_eq!(result.discovered_sorted(), weak);
    }

    #[test]
    fn clean_word_discovers_nothing() {
        let code = hamming::full_length(4);
        let mut target = SimWordTarget::new(code.clone(), vec![], 1.0, 9);
        let result = profile_word(&code, &mut target, &BeepConfig::default());
        assert!(result.discovered.is_empty());
        // With no errors ever discovered, every targeted bit is skipped
        // (no miscorrection is reachable from an empty known set).
        assert_eq!(result.skipped_bits, code.n());
    }

    #[test]
    fn no_false_positives_on_probabilistic_cells() {
        let code = hamming::full_length(5);
        let weak = vec![4usize, 18, 25, 29];
        let mut target = SimWordTarget::new(code.clone(), weak.clone(), 0.75, 10);
        let config = BeepConfig {
            passes: 2,
            ..BeepConfig::default()
        };
        let result = profile_word(&code, &mut target, &config);
        for &d in &result.discovered {
            assert!(weak.contains(&d), "false positive at {d}");
        }
        // With P=0.75 and two passes, expect to find most of them.
        assert!(
            result.discovered.len() >= 3,
            "found only {:?}",
            result.discovered
        );
    }

    #[test]
    fn second_pass_improves_or_matches_first() {
        let code = hamming::full_length(4);
        let weak = vec![1usize, 6, 12];
        let one_pass = {
            let mut t = SimWordTarget::new(code.clone(), weak.clone(), 0.5, 11);
            profile_word(
                &code,
                &mut t,
                &BeepConfig {
                    passes: 1,
                    ..BeepConfig::default()
                },
            )
        };
        let two_pass = {
            let mut t = SimWordTarget::new(code.clone(), weak.clone(), 0.5, 11);
            profile_word(
                &code,
                &mut t,
                &BeepConfig {
                    passes: 2,
                    ..BeepConfig::default()
                },
            )
        };
        assert!(two_pass.discovered.len() >= one_pass.discovered.len());
    }
}
