//! BEEP: Bit-Exact Error Profiling (paper §7.1).
//!
//! BEEP uses a *known* on-die ECC function (recovered with BEER) to find
//! the number and bit-exact locations of pre-correction error-prone cells
//! — including cells in the chip-invisible parity bits. The three phases
//! of Figure 7:
//!
//! 1. **Craft test patterns** ([`craft`]): a SAT query produces a dataword
//!    whose codeword charges the target cell, discharges its neighbours
//!    (worst-case coupling), and guarantees an *observable miscorrection*
//!    if the target fails together with already-known error cells.
//! 2. **Run experiments** ([`WordTarget`]): write the pattern, lengthen
//!    the refresh window, read back.
//! 3. **Calculate pre-correction errors** ([`decode`]): every observed
//!    miscorrection reveals its syndrome, from which the full erroneous
//!    codeword — and therefore the exact error set — follows (Equation 4).
//!
//! The paper leaves BEEP's bootstrap unspecified (crafting needs known
//! errors, but initially none are known): this implementation seeds the
//! loop with a handful of random-data patterns whose definite
//! miscorrections are decoded exactly (documented in DESIGN.md §4).
//!
//! # Examples
//!
//! ```
//! use beer_beep::{profile_word, BeepConfig, SimWordTarget};
//! use beer_ecc::hamming;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let code = hamming::full_length(5); // (31, 26)
//! let weak = vec![3usize, 17, 29];    // secret error-prone cells
//! let mut target = SimWordTarget::new(code.clone(), weak.clone(), 1.0, 99);
//! let result = profile_word(&code, &mut target, &BeepConfig::default());
//! assert_eq!(result.discovered_sorted(), weak);
//! ```

mod craft;
mod decode;
mod eval;
mod profiler;
mod recovered;
mod target;

pub use craft::{craft_pattern, CraftRequest};
pub use decode::{decode_read, DecodedTrial};
pub use eval::{evaluate, EvalConfig, EvalOutcome};
pub use profiler::{profile_word, BeepConfig, BeepResult};
pub use recovered::{code_from_outcome, profile_recovered_word, RecoveredCodeError};
pub use target::{DramWordTarget, SimWordTarget, WordTarget};
