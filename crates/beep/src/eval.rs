//! Monte-Carlo evaluation of BEEP's success rate (Figures 8 and 9).
//!
//! Each evaluated word draws a random SEC code of the configured codeword
//! length, plants `errors_injected` weak cells at random positions, runs
//! BEEP, and counts success when the discovered set equals the planted set
//! exactly.

use crate::profiler::{profile_word, BeepConfig};
use crate::target::SimWordTarget;
use beer_ecc::hamming;
use rand::rngs::StdRng;
use rand::seq::index::sample;
use rand::SeedableRng;

/// Configuration of one evaluation point (one bar of Figure 8/9).
#[derive(Clone, Copy, Debug)]
pub struct EvalConfig {
    /// Codeword length `n` (31, 63, 127 and 255 in the paper — full-length
    /// Hamming codes).
    pub codeword_len: usize,
    /// Number of weak cells injected per codeword.
    pub errors_injected: usize,
    /// Per-trial failure probability of each weak cell.
    pub p_error: f64,
    /// BEEP passes.
    pub passes: usize,
    /// Retention trials per crafted pattern.
    pub trials_per_pattern: usize,
    /// Codewords evaluated (100 in the paper).
    pub words: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl EvalConfig {
    /// A Figure-8-style point: deterministic weak cells.
    pub fn figure8(
        codeword_len: usize,
        errors_injected: usize,
        passes: usize,
        words: usize,
    ) -> Self {
        EvalConfig {
            codeword_len,
            errors_injected,
            p_error: 1.0,
            passes,
            trials_per_pattern: 2,
            words,
            seed: 0xF18_8EE9,
        }
    }

    /// A Figure-9-style point: probabilistic weak cells, single pass.
    pub fn figure9(
        codeword_len: usize,
        errors_injected: usize,
        p_error: f64,
        words: usize,
    ) -> Self {
        EvalConfig {
            codeword_len,
            errors_injected,
            p_error,
            passes: 1,
            trials_per_pattern: 4,
            words,
            seed: 0xF19_8EE9,
        }
    }
}

/// Aggregate outcome of an evaluation point.
#[derive(Clone, Copy, Debug)]
pub struct EvalOutcome {
    /// Words where BEEP identified the planted set exactly.
    pub successes: usize,
    /// Words evaluated.
    pub words: usize,
    /// Words with at least one false positive (never expected).
    pub false_positive_words: usize,
    /// Mean fraction of planted cells discovered (recall).
    pub mean_recall: f64,
}

impl EvalOutcome {
    /// Success rate in `[0, 1]`.
    pub fn success_rate(&self) -> f64 {
        if self.words == 0 {
            0.0
        } else {
            self.successes as f64 / self.words as f64
        }
    }
}

/// Parity bits of the full-length code with codeword length `n = 2^p − 1`.
///
/// # Panics
///
/// Panics if `n` is not of the form `2^p − 1` with `p ∈ 3..=8`.
pub fn parity_bits_of_len(n: usize) -> usize {
    for p in 3..=8 {
        if n == (1 << p) - 1 {
            return p;
        }
    }
    panic!("codeword length {n} is not 2^p - 1");
}

/// Runs one evaluation point.
///
/// # Panics
///
/// Panics if `codeword_len` is unsupported (see [`parity_bits_of_len`]) or
/// more errors are requested than codeword bits.
pub fn evaluate(config: &EvalConfig) -> EvalOutcome {
    let p = parity_bits_of_len(config.codeword_len);
    let k = hamming::full_length_k(p);
    assert!(
        config.errors_injected <= config.codeword_len,
        "more errors than codeword bits"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let beep = BeepConfig {
        passes: config.passes,
        trials_per_pattern: config.trials_per_pattern,
        seed_patterns: 16,
        seed: config.seed ^ 0x5EED,
    };

    let mut successes = 0;
    let mut false_positive_words = 0;
    let mut recall_sum = 0.0;
    for w in 0..config.words {
        // A fresh random full-length code per word samples the design
        // space, as the paper's simulations do.
        let code = hamming::random_sec(k, &mut rng);
        let weak: Vec<usize> = {
            let mut v: Vec<usize> = sample(&mut rng, code.n(), config.errors_injected)
                .into_iter()
                .collect();
            v.sort_unstable();
            v
        };
        let mut target = SimWordTarget::new(
            code.clone(),
            weak.clone(),
            config.p_error,
            config.seed ^ (w as u64).wrapping_mul(0x9E37_79B9),
        );
        let result = profile_word(&code, &mut target, &beep);
        let found = result.discovered_sorted();
        let true_positives = found.iter().filter(|f| weak.contains(f)).count();
        if found.iter().any(|f| !weak.contains(f)) {
            false_positive_words += 1;
        }
        recall_sum += true_positives as f64 / weak.len().max(1) as f64;
        if found == weak {
            successes += 1;
        }
    }
    EvalOutcome {
        successes,
        words: config.words,
        false_positive_words,
        mean_recall: recall_sum / config.words.max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parity_bits_for_paper_lengths() {
        assert_eq!(parity_bits_of_len(31), 5);
        assert_eq!(parity_bits_of_len(63), 6);
        assert_eq!(parity_bits_of_len(127), 7);
        assert_eq!(parity_bits_of_len(255), 8);
    }

    #[test]
    #[should_panic(expected = "not 2^p - 1")]
    fn rejects_non_hamming_lengths() {
        parity_bits_of_len(64);
    }

    #[test]
    fn deterministic_errors_on_31_bit_codes_mostly_succeed() {
        let outcome = evaluate(&EvalConfig::figure8(31, 2, 1, 12));
        assert!(
            outcome.success_rate() >= 0.5,
            "success rate {} too low",
            outcome.success_rate()
        );
        assert_eq!(outcome.false_positive_words, 0);
    }

    #[test]
    fn recall_degrades_gracefully_with_low_p_error() {
        let high = evaluate(&EvalConfig::figure9(31, 3, 1.0, 8));
        let low = evaluate(&EvalConfig::figure9(31, 3, 0.25, 8));
        assert!(high.mean_recall >= low.mean_recall);
    }
}
