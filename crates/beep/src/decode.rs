//! Phase 3: calculating pre-correction errors from observed
//! miscorrections (paper §7.1.3, Equation 4).

use beer_ecc::LinearCode;
use beer_gf2::BitVec;

/// What one retention trial revealed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecodedTrial {
    /// The exact pre-correction error positions (codeword coordinates,
    /// including parity bits), if a definite miscorrection was observed.
    pub errors: Option<Vec<usize>>,
    /// The data bit the decoder miscorrected, if any.
    pub miscorrected_bit: Option<usize>,
    /// Data bits that flipped 1 → 0: uncorrected or partially corrected
    /// retention errors, directly visible (these are also exact error
    /// locations, but reveal nothing about the parity bits).
    pub visible_decays: Vec<usize>,
}

/// Analyzes one trial's read-back against the written dataword.
///
/// A post-correction 0 → 1 flip can only come from the ECC decoder (the
/// true-cell retention process never charges a cell), so it identifies the
/// miscorrected bit and thereby the internal syndrome `H_j`. The full
/// erroneous codeword follows from Equation 4, and XOR against the written
/// codeword yields the **bit-exact pre-correction error pattern** —
/// including errors inside the invisible parity bits.
///
/// Returns `errors: None` when no miscorrection was observed (visible 1→0
/// decays are still reported). Trials whose reconstruction is inconsistent
/// (an implied error at a DISCHARGED cell — impossible for retention, so
/// the observation must be noise) also return `None`.
///
/// # Panics
///
/// Panics if lengths are inconsistent with `code`.
pub fn decode_read(code: &LinearCode, written: &BitVec, read: &BitVec) -> DecodedTrial {
    assert_eq!(written.len(), code.k(), "written dataword length mismatch");
    assert_eq!(read.len(), code.k(), "read dataword length mismatch");

    let mut miscorrected_bit = None;
    let mut visible_decays = Vec::new();
    for j in 0..code.k() {
        match (written.get(j), read.get(j)) {
            (false, true) => {
                debug_assert!(
                    miscorrected_bit.is_none(),
                    "two 0→1 flips are impossible with a single-bit decoder"
                );
                miscorrected_bit = Some(j);
            }
            (true, false) => visible_decays.push(j),
            _ => {}
        }
    }

    let Some(j) = miscorrected_bit else {
        return DecodedTrial {
            errors: None,
            miscorrected_bit: None,
            visible_decays,
        };
    };

    // Equation 4: reconstruct the full pre-correction codeword.
    let written_codeword = code.encode(written);
    let erroneous = code.reconstruct_precorrection_codeword(read, j);
    let error_vector = &written_codeword ^ &erroneous;
    let errors: Vec<usize> = error_vector.iter_ones().collect();

    // Consistency: retention errors only discharge CHARGED cells, so every
    // implied error must sit where the written codeword stored a 1.
    let consistent = errors.iter().all(|&e| written_codeword.get(e));
    DecodedTrial {
        errors: consistent.then_some(errors),
        miscorrected_bit: Some(j),
        visible_decays,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beer_ecc::hamming;

    /// Helper: apply retention errors at `positions` and decode the word.
    fn run(code: &LinearCode, data: &BitVec, positions: &[usize]) -> BitVec {
        let mut cw = code.encode(data);
        for &p in positions {
            assert!(cw.get(p), "test error at a discharged cell");
            cw.set(p, false);
        }
        code.decode(&cw).data
    }

    #[test]
    fn decodes_exact_error_set_from_miscorrection() {
        let code = hamming::full_length(4); // (15, 11)
        let k = code.k();
        // Search for a double error producing a miscorrection at a
        // discharged bit, then check the decoder recovers it exactly.
        let mut data = BitVec::ones(k);
        data.set(2, false);
        data.set(5, false);
        let mut verified = 0;
        let cw = code.encode(&data);
        let charged: Vec<usize> = cw.iter_ones().collect();
        for i in 0..charged.len() {
            for l in (i + 1)..charged.len() {
                let errs = [charged[i], charged[l]];
                let read = run(&code, &data, &errs);
                let trial = decode_read(&code, &data, &read);
                if let Some(found) = trial.errors {
                    assert_eq!(found, errs.to_vec(), "wrong error set");
                    verified += 1;
                }
            }
        }
        assert!(verified > 0, "no miscorrection-revealing pair found");
    }

    #[test]
    fn parity_bit_errors_are_located_exactly() {
        // The headline BEEP capability: errors inside the invisible parity
        // bits are recovered bit-exactly. The dataword must keep some bits
        // DISCHARGED so a miscorrection is observable as a 0→1 flip.
        let code = hamming::full_length(4);
        let k = code.k();
        let mut verified = 0;
        for data_val in 1u64..200 {
            let data = BitVec::from_u64(k, data_val);
            let cw = code.encode(&data);
            let parity_charged: Vec<usize> = (k..code.n()).filter(|&p| cw.get(p)).collect();
            for i in 0..parity_charged.len() {
                for l in (i + 1)..parity_charged.len() {
                    let errs = [parity_charged[i], parity_charged[l]];
                    let read = run(&code, &data, &errs);
                    let trial = decode_read(&code, &data, &read);
                    if let Some(found) = trial.errors {
                        assert_eq!(found, errs.to_vec());
                        assert!(found.iter().all(|&e| e >= k), "errors are in parity");
                        verified += 1;
                    }
                }
            }
        }
        assert!(verified > 0, "no parity-pair miscorrection found");
    }

    #[test]
    fn clean_read_decodes_to_nothing() {
        let code = hamming::eq1_code();
        let data = BitVec::from_bits(&[true, true, false, true]);
        let trial = decode_read(&code, &data, &data);
        assert_eq!(trial.errors, None);
        assert_eq!(trial.miscorrected_bit, None);
        assert!(trial.visible_decays.is_empty());
    }

    #[test]
    fn visible_decays_are_reported_without_miscorrection() {
        // Find a double data error that produces no 0→1 flip and whose
        // visible 1→0 flips are exactly a subset of the injected errors (a
        // partial correction). Miscorrections onto *charged* bits also show
        // up as 1→0 flips — those runs are skipped, matching the paper's
        // '?' ambiguity.
        let code = hamming::full_length(4);
        let k = code.k();
        let data = BitVec::ones(k);
        for a in 0..k {
            for b in (a + 1)..k {
                let read = run(&code, &data, &[a, b]);
                let trial = decode_read(&code, &data, &read);
                if trial.miscorrected_bit.is_none()
                    && !trial.visible_decays.is_empty()
                    && trial.visible_decays.iter().all(|&d| d == a || d == b)
                {
                    assert_eq!(trial.errors, None);
                    return;
                }
            }
        }
        panic!("no partial correction found");
    }
}
