//! The device-under-test abstraction: one ECC word that BEEP probes.

use beer_ecc::LinearCode;
use beer_gf2::BitVec;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One ECC word that can be written, stressed, and read back through its
/// (known) on-die ECC. The true-cell convention applies: a stored 1 is
/// CHARGED, and retention errors flip 1 → 0.
pub trait WordTarget {
    /// Dataword length.
    fn k(&self) -> usize;

    /// Writes `data`, runs one retention trial (refresh pause), and reads
    /// the post-correction dataword back.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `data.len() != k()`.
    fn run_trial(&mut self, data: &BitVec) -> BitVec;
}

/// A simulated [`WordTarget`]: a codeword with a planted set of weak cells,
/// each failing independently with a configurable probability per trial —
/// the evaluation model of Figures 8 and 9.
///
/// # Examples
///
/// ```
/// use beer_beep::{SimWordTarget, WordTarget};
/// use beer_ecc::hamming;
/// use beer_gf2::BitVec;
///
/// let code = hamming::eq1_code();
/// // Weak cell at codeword position 0, always failing.
/// let mut t = SimWordTarget::new(code, vec![0], 1.0, 1);
/// let data = BitVec::from_bits(&[true, false, false, false]);
/// // Bit 0 fails but the SEC code corrects the single error.
/// assert_eq!(t.run_trial(&data), data);
/// ```
pub struct SimWordTarget {
    code: LinearCode,
    weak_cells: Vec<usize>,
    fail_probability: f64,
    rng: SmallRng,
    trials: u64,
}

impl SimWordTarget {
    /// Creates a target with the given weak codeword positions.
    ///
    /// # Panics
    ///
    /// Panics if a weak cell is out of range or the probability is outside
    /// `[0, 1]`.
    pub fn new(code: LinearCode, weak_cells: Vec<usize>, fail_probability: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fail_probability),
            "probability out of range"
        );
        for &c in &weak_cells {
            assert!(c < code.n(), "weak cell {c} out of codeword range");
        }
        SimWordTarget {
            code,
            weak_cells,
            fail_probability,
            rng: SmallRng::seed_from_u64(seed),
            trials: 0,
        }
    }

    /// The planted weak cells (ground truth for evaluation).
    pub fn weak_cells(&self) -> &[usize] {
        &self.weak_cells
    }

    /// Trials executed so far.
    pub fn trials(&self) -> u64 {
        self.trials
    }
}

impl WordTarget for SimWordTarget {
    fn k(&self) -> usize {
        self.code.k()
    }

    fn run_trial(&mut self, data: &BitVec) -> BitVec {
        assert_eq!(data.len(), self.code.k(), "dataword length mismatch");
        self.trials += 1;
        let mut cw = self.code.encode(data);
        for &w in &self.weak_cells {
            // Unidirectional: only CHARGED cells can decay.
            if cw.get(w) && self.rng.random::<f64>() < self.fail_probability {
                cw.set(w, false);
            }
        }
        self.code.decode(&cw).data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beer_ecc::hamming;

    #[test]
    fn deterministic_weak_cells_always_fire_when_charged() {
        let code = hamming::full_length(4);
        let mut t = SimWordTarget::new(code.clone(), vec![0, 1], 1.0, 3);
        let data = BitVec::ones(code.k());
        // Two guaranteed failures: the decoder cannot fully fix the word.
        let read = t.run_trial(&data);
        assert_ne!(read, data);
        assert_eq!(t.trials(), 1);
    }

    #[test]
    fn discharged_weak_cells_never_fire() {
        let code = hamming::full_length(4);
        let k = code.k();
        let mut t = SimWordTarget::new(code, vec![0, 1], 1.0, 4);
        let mut data = BitVec::ones(k);
        data.set(0, false);
        data.set(1, false);
        // Weak data cells 0 and 1 are DISCHARGED: whether the word decodes
        // cleanly depends only on the parity cells, which are not weak.
        assert_eq!(t.run_trial(&data), data);
    }

    #[test]
    fn zero_probability_is_error_free() {
        let code = hamming::full_length(4);
        let k = code.k();
        let mut t = SimWordTarget::new(code, vec![2, 3, 4], 0.0, 5);
        let data = BitVec::ones(k);
        for _ in 0..10 {
            assert_eq!(t.run_trial(&data), data);
        }
    }

    #[test]
    #[should_panic(expected = "out of codeword range")]
    fn rejects_out_of_range_weak_cell() {
        SimWordTarget::new(hamming::eq1_code(), vec![7], 1.0, 6);
    }
}
