//! The device-under-test abstraction: one ECC word that BEEP probes.

use beer_dram::{CellType, DramInterface, WordLayout};
use beer_ecc::LinearCode;
use beer_gf2::BitVec;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One ECC word that can be written, stressed, and read back through its
/// (known) on-die ECC. The true-cell convention applies: a stored 1 is
/// CHARGED, and retention errors flip 1 → 0.
pub trait WordTarget {
    /// Dataword length.
    fn k(&self) -> usize;

    /// Writes `data`, runs one retention trial (refresh pause), and reads
    /// the post-correction dataword back.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `data.len() != k()`.
    fn run_trial(&mut self, data: &BitVec) -> BitVec;
}

/// A simulated [`WordTarget`]: a codeword with a planted set of weak cells,
/// each failing independently with a configurable probability per trial —
/// the evaluation model of Figures 8 and 9.
///
/// # Examples
///
/// ```
/// use beer_beep::{SimWordTarget, WordTarget};
/// use beer_ecc::hamming;
/// use beer_gf2::BitVec;
///
/// let code = hamming::eq1_code();
/// // Weak cell at codeword position 0, always failing.
/// let mut t = SimWordTarget::new(code, vec![0], 1.0, 1);
/// let data = BitVec::from_bits(&[true, false, false, false]);
/// // Bit 0 fails but the SEC code corrects the single error.
/// assert_eq!(t.run_trial(&data), data);
/// ```
pub struct SimWordTarget {
    code: LinearCode,
    weak_cells: Vec<usize>,
    fail_probability: f64,
    rng: SmallRng,
    trials: u64,
}

impl SimWordTarget {
    /// Creates a target with the given weak codeword positions.
    ///
    /// # Panics
    ///
    /// Panics if a weak cell is out of range or the probability is outside
    /// `[0, 1]`.
    pub fn new(code: LinearCode, weak_cells: Vec<usize>, fail_probability: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fail_probability),
            "probability out of range"
        );
        for &c in &weak_cells {
            assert!(c < code.n(), "weak cell {c} out of codeword range");
        }
        SimWordTarget {
            code,
            weak_cells,
            fail_probability,
            rng: SmallRng::seed_from_u64(seed),
            trials: 0,
        }
    }

    /// The planted weak cells (ground truth for evaluation).
    pub fn weak_cells(&self) -> &[usize] {
        &self.weak_cells
    }

    /// Trials executed so far.
    pub fn trials(&self) -> u64 {
        self.trials
    }
}

impl WordTarget for SimWordTarget {
    fn k(&self) -> usize {
        self.code.k()
    }

    fn run_trial(&mut self, data: &BitVec) -> BitVec {
        assert_eq!(data.len(), self.code.k(), "dataword length mismatch");
        self.trials += 1;
        let mut cw = self.code.encode(data);
        for &w in &self.weak_cells {
            // Unidirectional: only CHARGED cells can decay.
            if cw.get(w) && self.rng.random::<f64>() < self.fail_probability {
                cw.set(w, false);
            }
        }
        self.code.decode(&cw).data
    }
}

/// One word of a chip behind [`beer_dram::DramInterface`] as a BEEP
/// target: each trial programs the word through the chip's byte interface,
/// pauses refresh for the configured window, and reads the post-correction
/// dataword back. This is how BEEP runs against the same backends as the
/// BEER collection engine.
///
/// BEEP's dataword uses the true-cell convention (1 = CHARGED); the target
/// translates per the word's cell type, so anti-cell words stress the same
/// charge patterns instead of silently inverting them.
///
/// Word I/O goes through one contiguous byte span covering the word's
/// addresses (one chip read + one chip write per trial). Interleaved
/// neighbours inside that span are read and rewritten with their current
/// post-correction contents — harmless to BEEP, which only interprets the
/// targeted word.
pub struct DramWordTarget<'a> {
    chip: &'a mut dyn DramInterface,
    layout: WordLayout,
    word: usize,
    cell_type: CellType,
    trefw: f64,
    /// Smallest contiguous address span containing every byte of the word
    /// (fixed per target; precomputed off the per-trial hot path).
    span_lo: usize,
    span_len: usize,
}

impl<'a> DramWordTarget<'a> {
    /// Targets a true-cell `word` (under `layout`) with refresh pauses of
    /// `trefw` seconds per trial.
    pub fn new(
        chip: &'a mut dyn DramInterface,
        layout: WordLayout,
        word: usize,
        trefw: f64,
    ) -> Self {
        Self::with_cell_type(chip, layout, word, CellType::True, trefw)
    }

    /// Targets a word whose cells are of the given type.
    pub fn with_cell_type(
        chip: &'a mut dyn DramInterface,
        layout: WordLayout,
        word: usize,
        cell_type: CellType,
        trefw: f64,
    ) -> Self {
        let addrs = (0..layout.word_bytes()).map(|b| layout.addr_of(word, b));
        let lo = addrs.clone().min().expect("word has bytes");
        let hi = addrs.max().expect("word has bytes");
        DramWordTarget {
            chip,
            layout,
            word,
            cell_type,
            trefw,
            span_lo: lo,
            span_len: hi - lo + 1,
        }
    }

    /// Maps between the BEEP charge convention and this word's logical bits
    /// (the involution is its own inverse: anti cells invert, true cells
    /// pass through).
    fn translate(&self, v: &BitVec) -> BitVec {
        match self.cell_type {
            CellType::True => v.clone(),
            CellType::Anti => v ^ &BitVec::ones(v.len()),
        }
    }
}

impl WordTarget for DramWordTarget<'_> {
    fn k(&self) -> usize {
        self.layout.word_bytes() * 8
    }

    fn run_trial(&mut self, data: &BitVec) -> BitVec {
        let k = self.k();
        assert_eq!(data.len(), k, "dataword length mismatch");
        let logical = self.translate(data);
        let (lo, len) = (self.span_lo, self.span_len);

        // Read the span once, patch this word's bytes, write it back whole
        // (a full overwrite of every word in the span — no per-byte
        // read-modify-write through the decoder).
        let mut span = self.chip.read_bytes(lo, len);
        for byte in 0..self.layout.word_bytes() {
            let mut v = 0u8;
            for bit in 0..8 {
                if logical.get(byte * 8 + bit) {
                    v |= 1 << bit;
                }
            }
            span[self.layout.addr_of(self.word, byte) - lo] = v;
        }
        self.chip.write_bytes(lo, &span);

        self.chip.retention_test(self.trefw);

        let span = self.chip.read_bytes(lo, len);
        let mut logical_read = BitVec::zeros(k);
        for byte in 0..self.layout.word_bytes() {
            let v = span[self.layout.addr_of(self.word, byte) - lo];
            for bit in 0..8 {
                if v >> bit & 1 == 1 {
                    logical_read.set(byte * 8 + bit, true);
                }
            }
        }
        // Back to the BEEP charge convention.
        self.translate(&logical_read)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beer_ecc::hamming;

    #[test]
    fn deterministic_weak_cells_always_fire_when_charged() {
        let code = hamming::full_length(4);
        let mut t = SimWordTarget::new(code.clone(), vec![0, 1], 1.0, 3);
        let data = BitVec::ones(code.k());
        // Two guaranteed failures: the decoder cannot fully fix the word.
        let read = t.run_trial(&data);
        assert_ne!(read, data);
        assert_eq!(t.trials(), 1);
    }

    #[test]
    fn discharged_weak_cells_never_fire() {
        let code = hamming::full_length(4);
        let k = code.k();
        let mut t = SimWordTarget::new(code, vec![0, 1], 1.0, 4);
        let mut data = BitVec::ones(k);
        data.set(0, false);
        data.set(1, false);
        // Weak data cells 0 and 1 are DISCHARGED: whether the word decodes
        // cleanly depends only on the parity cells, which are not weak.
        assert_eq!(t.run_trial(&data), data);
    }

    #[test]
    fn zero_probability_is_error_free() {
        let code = hamming::full_length(4);
        let k = code.k();
        let mut t = SimWordTarget::new(code, vec![2, 3, 4], 0.0, 5);
        let data = BitVec::ones(k);
        for _ in 0..10 {
            assert_eq!(t.run_trial(&data), data);
        }
    }

    #[test]
    #[should_panic(expected = "out of codeword range")]
    fn rejects_out_of_range_weak_cell() {
        SimWordTarget::new(hamming::eq1_code(), vec![7], 1.0, 6);
    }

    #[test]
    fn dram_word_target_roundtrips_both_cell_types() {
        use beer_dram::{CellLayout, ChipConfig, SimChip};

        for (cell_layout, cell_type) in [
            (CellLayout::AllTrue, CellType::True),
            (CellLayout::AllAnti, CellType::Anti),
        ] {
            let mut chip = SimChip::new(ChipConfig {
                cell_layout,
                ..ChipConfig::small_test_chip(77)
            });
            let layout = chip.config().word_layout;
            let k = chip.k();
            let mut target = DramWordTarget::with_cell_type(&mut chip, layout, 3, cell_type, 0.0);
            // A zero-length refresh pause induces no errors, so the trial
            // must read back exactly the charge pattern it wrote —
            // whichever logical polarity the cells store it in.
            let data = BitVec::from_indices(k, &[0, 5, 20, 31]);
            assert_eq!(target.run_trial(&data), data, "{cell_type:?}");
        }
    }

    #[test]
    fn dram_word_target_leaves_neighbours_intact() {
        use beer_dram::{ChipConfig, SimChip};

        // Word 2 and word 3 interleave within one span; driving word 3
        // must preserve word 2's data.
        let mut chip = SimChip::new(ChipConfig::small_test_chip(78));
        let layout = chip.config().word_layout;
        let k = chip.k();
        let neighbour = BitVec::from_indices(k, &[1, 9, 30]);
        chip.write_dataword(2, &neighbour);
        let mut target = DramWordTarget::new(&mut chip, layout, 3, 0.0);
        let _ = target.run_trial(&BitVec::ones(k));
        assert_eq!(chip.read_dataword(2), neighbour);
    }
}
