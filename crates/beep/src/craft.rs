//! Phase 1: SAT-crafted test patterns (paper §7.1.2).
//!
//! For a target codeword bit, the crafted dataword must
//!
//! 1. charge the target cell and discharge its neighbours (worst-case
//!    circuit coupling, the paper's assumption for data-retention
//!    stress), and
//! 2. make at least one miscorrection *observable* if the target fails
//!    together with some combination of already-identified error cells —
//!    concretely: if the target and every CHARGED known-error cell decay,
//!    the resulting syndrome equals the column of some DISCHARGED,
//!    error-free data bit.
//!
//! If no pattern satisfies both constraints the crafting retries with
//! constraint 2 alone (it is the one essential to observing
//! miscorrections); if that also fails the bit is skipped for this pass,
//! exactly as the paper describes.

use beer_ecc::LinearCode;
use beer_gf2::BitVec;
use beer_sat::{CnfBuilder, Lit, SatResult};

/// A pattern-crafting request for one target bit.
#[derive(Clone, Debug)]
pub struct CraftRequest<'a> {
    /// The (known) ECC function.
    pub code: &'a LinearCode,
    /// Target codeword position to stress (data or parity).
    pub target: usize,
    /// Codeword positions of already-identified error-prone cells.
    pub known_errors: &'a [usize],
    /// Codeword positions suspected (but not proven) to be error-prone:
    /// the pattern keeps them DISCHARGED so an unmodeled decay cannot
    /// corrupt the planned syndrome.
    pub avoid_charged: &'a [usize],
    /// Whether to require DISCHARGED neighbours around the target.
    pub worst_case_neighbors: bool,
}

/// Crafts a dataword for the request, or `None` if the constraints are
/// unsatisfiable (e.g. no known errors yet — a miscorrection needs at
/// least two failing cells).
///
/// # Panics
///
/// Panics if `target` or a known error is out of codeword range.
#[allow(clippy::needless_range_loop)] // loops interleave CNF mutation with indexing
pub fn craft_pattern(request: &CraftRequest<'_>) -> Option<BitVec> {
    let code = request.code;
    let n = code.n();
    assert!(request.target < n, "target out of codeword range");
    for &e in request.known_errors {
        assert!(e < n, "known error out of codeword range");
    }

    let mut cnf = CnfBuilder::new();
    let k = code.k();
    let d: Vec<Lit> = (0..k).map(|_| cnf.new_lit()).collect();

    // Charge of each codeword cell as a literal over the dataword bits
    // (true-cell convention: charge == stored bit).
    let charge: Vec<Lit> = (0..n)
        .map(|pos| {
            if pos < k {
                d[pos]
            } else {
                let row = code.parity_submatrix().row(pos - k);
                let terms: Vec<Lit> = row.iter_ones().map(|c| d[c]).collect();
                cnf.xor_many(&terms)
            }
        })
        .collect();

    // Constraint 1 (optional): target CHARGED, neighbours DISCHARGED.
    cnf.assert_lit(charge[request.target]);
    if request.worst_case_neighbors {
        if request.target > 0 {
            cnf.assert_lit(!charge[request.target - 1]);
        }
        if request.target + 1 < n {
            cnf.assert_lit(!charge[request.target + 1]);
        }
    }

    // Unproven suspects stay DISCHARGED so they cannot decay and throw the
    // planned syndrome off (they are not conditioned on in constraint 2).
    for &c in request.avoid_charged {
        if c != request.target && !request.known_errors.contains(&c) {
            cnf.assert_lit(!charge[c]);
        }
    }

    // Constraint 2: the syndrome of {target} ∪ {charged known errors}
    // must equal the column of some DISCHARGED data bit.
    //
    // S_r = H[r][target] ⊕ ⊕_{e known, H[r][e]=1} charge_e.
    let p = code.parity_bits();
    let target_col = code.column(request.target);
    let known: Vec<usize> = request
        .known_errors
        .iter()
        .copied()
        .filter(|&e| e != request.target)
        .collect();
    let syndrome: Vec<Lit> = (0..p)
        .map(|r| {
            let terms: Vec<Lit> = known
                .iter()
                .filter(|&&e| code.column(e).get(r))
                .map(|&e| charge[e])
                .collect();
            let x = cnf.xor_many(&terms);
            if target_col.get(r) {
                !x
            } else {
                x
            }
        })
        .collect();

    let mut witnesses = Vec::new();
    for j in 0..k {
        if j == request.target {
            continue;
        }
        let m = cnf.new_lit();
        // m → data bit j DISCHARGED (hence error-free)...
        cnf.add_clause(&[!m, !charge[j]]);
        // ... and m → S == H[:, j].
        let col = code.data_column(j);
        for r in 0..p {
            if col.get(r) {
                cnf.add_clause(&[!m, syndrome[r]]);
            } else {
                cnf.add_clause(&[!m, !syndrome[r]]);
            }
        }
        witnesses.push(m);
    }
    if witnesses.is_empty() {
        return None;
    }
    cnf.at_least_one(&witnesses);

    let mut solver = cnf.into_solver();
    if solver.solve() != SatResult::Sat {
        return None;
    }
    let mut data = BitVec::zeros(k);
    for (c, &lit) in d.iter().enumerate() {
        if solver.lit_value(lit) == Some(true) {
            data.set(c, true);
        }
    }
    Some(data)
}

/// Crafts with the paper's fallback chain: worst-case neighbours and
/// discharged suspects first, then without the neighbour constraint, then
/// constraint 2 alone. Returns the pattern and whether the neighbour
/// constraint was kept.
pub fn craft_with_fallback(
    code: &LinearCode,
    target: usize,
    known_errors: &[usize],
    avoid_charged: &[usize],
) -> Option<(BitVec, bool)> {
    let strict = CraftRequest {
        code,
        target,
        known_errors,
        avoid_charged,
        worst_case_neighbors: true,
    };
    if let Some(p) = craft_pattern(&strict) {
        return Some((p, true));
    }
    let relaxed = CraftRequest {
        worst_case_neighbors: false,
        ..strict
    };
    if let Some(p) = craft_pattern(&relaxed) {
        return Some((p, false));
    }
    let bare = CraftRequest {
        avoid_charged: &[],
        ..relaxed
    };
    craft_pattern(&bare).map(|p| (p, false))
}

#[cfg(test)]
mod tests {
    use super::*;
    use beer_ecc::hamming;

    /// Checks the crafted pattern's guaranteed-miscorrection property by
    /// firing the target and all charged known errors through the decoder.
    fn assert_miscorrection_guaranteed(
        code: &LinearCode,
        data: &BitVec,
        target: usize,
        known: &[usize],
    ) {
        let mut cw = code.encode(data);
        let written = cw.clone();
        assert!(cw.get(target), "target not charged");
        cw.set(target, false);
        for &e in known {
            if written.get(e) {
                cw.set(e, false);
            }
        }
        let decoded = code.decode(&cw);
        // The decoder must have flipped a DISCHARGED, error-free data bit.
        let flipped: Vec<usize> = (0..code.k())
            .filter(|&j| decoded.data.get(j) && !data.get(j))
            .collect();
        assert_eq!(flipped.len(), 1, "no observable miscorrection");
    }

    #[test]
    fn crafting_without_known_errors_is_impossible() {
        let code = hamming::full_length(4);
        let req = CraftRequest {
            code: &code,
            target: 0,
            known_errors: &[],
            avoid_charged: &[],
            worst_case_neighbors: false,
        };
        assert_eq!(craft_pattern(&req), None);
    }

    #[test]
    fn crafted_pattern_guarantees_observable_miscorrection() {
        let code = hamming::full_length(5); // (31, 26)
        let known = [7usize, 19];
        for target in [0usize, 3, 12, 26, 30] {
            let (data, strict) =
                craft_with_fallback(&code, target, &known, &[]).expect("craft failed");
            assert_miscorrection_guaranteed(&code, &data, target, &known);
            if strict {
                // Verify the neighbour constraint held.
                let cw = code.encode(&data);
                if target > 0 {
                    assert!(!cw.get(target - 1), "left neighbour charged");
                }
                if target + 1 < code.n() {
                    assert!(!cw.get(target + 1), "right neighbour charged");
                }
            }
        }
    }

    #[test]
    fn parity_targets_are_craftable() {
        let code = hamming::full_length(4); // (15, 11)
        let known = [2usize];
        let k = code.k();
        let mut crafted = 0;
        for target in k..code.n() {
            if let Some((data, _)) = craft_with_fallback(&code, target, &known, &[]) {
                assert_miscorrection_guaranteed(&code, &data, target, &known);
                crafted += 1;
            }
        }
        assert!(crafted > 0, "no parity target craftable");
    }

    #[test]
    fn skipped_bits_return_none_not_panic() {
        // A shortened code with a single known error adjacent to the
        // target may be uncraftable; the API must degrade gracefully.
        let code = hamming::shortened(5);
        for target in 0..code.n() {
            let _ = craft_with_fallback(&code, target, &[0], &[]);
        }
    }
}
