//! # `beer_service`: a multi-tenant BEER recovery service
//!
//! BEER's end product — the recovered parity-check function of a chip
//! family — is a *reusable artifact*: manufacturers provision a small set
//! of on-die ECC functions across many chips (paper §1, §8), so most
//! recovery requests a production system sees are repeats. This crate
//! turns the one-shot [`RecoverySession`](beer_core::recovery) pipeline
//! into a long-running service shaped around that reuse:
//!
//! * **Job scheduling** ([`RecoveryService`]): a bounded, tenant-fair
//!   priority queue feeding a fixed worker pool; typed
//!   [`Rejected`] admission backpressure; per-job cancellation and
//!   submission-to-completion deadlines; per-job and service-wide
//!   [`JobEvent`] streams.
//! * **Fingerprint dedup**: submissions are keyed by the
//!   [`Fingerprint`](beer_core::trace::Fingerprint) of the normalized
//!   profile trace; identical in-flight profiles coalesce onto one
//!   running job, and completed profiles are answered from cache in O(1).
//! * **Persistent code registry** ([`Registry`]): an append-only log of
//!   job records and recovered canonical codes (deduplicated by
//!   [`canonical_hash`](beer_ecc::equivalence::canonical_hash)), with
//!   crash-tolerant replay on open and snapshot/compaction — a restarted
//!   service answers from history.
//!
//! # Example
//!
//! Two tenants, three submissions, one distinct profile solved once:
//!
//! ```
//! use beer_core::collect::CollectionPlan;
//! use beer_core::engine::AnalyticBackend;
//! use beer_core::pattern::PatternSet;
//! use beer_core::trace::ProfileTrace;
//! use beer_ecc::{equivalence, hamming};
//! use beer_service::{JobRequest, RecoveryService, ServiceConfig};
//!
//! // A tenant profiles a chip (here: the analytic model of a known code)
//! // and submits the recorded trace.
//! let secret = hamming::shortened(8);
//! let patterns = PatternSet::OneTwo.patterns(8);
//! let mut chip = AnalyticBackend::new(secret.clone());
//! let trace = ProfileTrace::record(&mut chip, &patterns, &CollectionPlan::quick());
//!
//! let service = RecoveryService::start(ServiceConfig::new().with_workers(2))?;
//! let a = service.submit(JobRequest::trace("alice", trace.clone())).unwrap();
//! let b = service.submit(JobRequest::trace("bob", trace.clone())).unwrap();
//! for id in [a, b] {
//!     let output = service.wait(id).expect("clean profile");
//!     let code = output.outcome.unique_code().expect("unique recovery");
//!     assert!(equivalence::equivalent(code, &secret));
//! }
//! // The profile was solved at most once: the duplicate either coalesced
//! // onto the in-flight job or hit the result cache.
//! let stats = service.stats();
//! assert_eq!(stats.coalesced + stats.cache_hits, 1);
//! # Ok::<(), std::io::Error>(())
//! ```
//!
//! See `DESIGN.md` §"The recovery service" for the architecture and
//! `EXPERIMENTS.md` for the `service_throughput` methodology.

mod job;
mod queue;
mod registry;
mod service;

pub use job::{
    CodeOutcome, JobError, JobEvent, JobId, JobInput, JobOutput, JobRequest, JobResult, JobState,
    Priority, Rejected,
};
pub use registry::{CodeEntry, JobRecord, Registry, REGISTRY_HEADER};
pub use service::{
    ConfigError, RecoveryService, RejectionStats, ServiceConfig, ServiceObs, ServiceStats,
    StartError,
};
