//! The long-running, multi-tenant recovery service.
//!
//! ```text
//!  tenants ──submit──▶ admission ──▶ fair queue ──▶ worker pool ──▶ registry
//!                        │  │            (bounded,     (guarded        (append-only
//!                        │  │             round-robin,  sessions,       log + cache)
//!                        │  └─ cache hit  priority)     serial engine)
//!                        └──── coalesce onto in-flight fingerprint
//! ```
//!
//! Submissions pass three gates before costing a worker: the *registry
//! cache* (a completed record for the same profile fingerprint answers in
//! O(1) without solving), *in-flight coalescing* (an identical queued or
//! running profile absorbs the submission as a waiter), and *admission
//! control* (typed [`Rejected`] backpressure once the bounded queue is
//! full). Jobs that do run are driven by a fixed worker pool through
//! [`run_session_guarded`] — the same guarded execution core as
//! [`RecoveryFleet`](beer_core::recovery::RecoveryFleet), so a panicking
//! backend becomes that job's typed failure, never the pool's.

use crate::job::{
    CodeOutcome, JobError, JobEvent, JobId, JobInput, JobOutput, JobRequest, JobResult, JobState,
    Priority, Rejected,
};
use crate::queue::FairScheduler;
use crate::registry::{CodeEntry, JobRecord, Registry};
use beer_core::engine::{EngineOptions, ProfileSource};
use beer_core::recovery::{
    lock_unpoisoned, run_session_guarded, BudgetReason, CancelToken, Fanout, FanoutNotify,
    RecoveryConfig, RecoveryEvent, RecoveryOutcome, SessionHooks,
};
use beer_core::trace::{Fingerprint, ProfileTrace, ReplayBackend};
use beer_ecc::{equivalence, LinearCode};
use beer_obs::{FlightRecorder, Histogram, MetricsRegistry, TraceId};
use std::collections::HashMap;
use std::fmt;
use std::io;
use std::path::PathBuf;
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// A typed configuration error from [`RecoveryService::start`]: the
/// settings describe a service that could never make progress, so the
/// service refuses to spawn instead of wedging.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// `workers == 0`: no thread would ever pop the queue.
    ZeroWorkers,
    /// `queue_capacity == 0`: every submission would be
    /// [`Rejected::QueueFull`].
    ZeroQueueCapacity,
    /// An explicit tenant set with no tenants in it: every submission
    /// would be [`Rejected::InvalidTenant`].
    EmptyTenantSet,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroWorkers => write!(f, "workers must be at least 1"),
            ConfigError::ZeroQueueCapacity => write!(f, "queue capacity must be at least 1"),
            ConfigError::EmptyTenantSet => {
                write!(f, "an explicit tenant set must name at least one tenant")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Why [`RecoveryService::start`] failed.
#[derive(Debug)]
pub enum StartError {
    /// The configuration is unusable (typed; see [`ConfigError`]).
    Config(ConfigError),
    /// Opening or replaying the registry failed.
    Io(io::Error),
}

impl fmt::Display for StartError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StartError::Config(e) => write!(f, "invalid service configuration: {e}"),
            StartError::Io(e) => write!(f, "registry I/O failed: {e}"),
        }
    }
}

impl std::error::Error for StartError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StartError::Config(e) => Some(e),
            StartError::Io(e) => Some(e),
        }
    }
}

impl From<io::Error> for StartError {
    fn from(e: io::Error) -> Self {
        StartError::Io(e)
    }
}

impl From<ConfigError> for StartError {
    fn from(e: ConfigError) -> Self {
        StartError::Config(e)
    }
}

/// Callers in `io::Result` contexts keep working: a config error maps to
/// [`io::ErrorKind::InvalidInput`].
impl From<StartError> for io::Error {
    fn from(e: StartError) -> Self {
        match e {
            StartError::Config(c) => io::Error::new(io::ErrorKind::InvalidInput, c),
            StartError::Io(e) => e,
        }
    }
}

/// Configuration of a [`RecoveryService`].
pub struct ServiceConfig {
    /// Worker threads. Each worker drives one session at a time with a
    /// serial collection engine, so this bounds total parallelism exactly
    /// like a [`RecoveryFleet`](beer_core::recovery::RecoveryFleet)'s
    /// thread budget. Defaults to the machine's available parallelism;
    /// `0` is a typed [`ConfigError::ZeroWorkers`] at start.
    pub workers: usize,
    /// Bounded queue capacity; beyond it, [`Rejected::QueueFull`]. `0` is
    /// a typed [`ConfigError::ZeroQueueCapacity`] at start.
    pub queue_capacity: usize,
    /// Per-job size ceiling in patterns; beyond it,
    /// [`Rejected::TooLarge`].
    pub max_patterns: usize,
    /// Backing path for the persistent registry (`None` = in-memory).
    /// A directory of segments; a legacy v1 single-file log found here
    /// is migrated in place on start.
    pub registry_path: Option<PathBuf>,
    /// Compact the registry once its in-memory tail holds this many
    /// records (the compaction drains the tail into a snapshot segment).
    pub compact_after: usize,
    /// Registry snapshot generations tolerated before a compaction
    /// majors into a full merge: under the budget, compactions are
    /// cheap minor ones (O(tail) pause); at the budget, one major merge
    /// collapses every generation. Lower = fewer segments probed per
    /// lookup, higher = cheaper steady-state compactions.
    pub compact_budget: usize,
    /// Size (bytes) at which the registry's active log segment seals.
    pub registry_seal_bytes: u64,
    /// How many *terminal* jobs to retain in memory for `status`/`wait`/
    /// `result` queries; older terminal jobs are evicted (their ids then
    /// answer [`JobError::Unknown`](crate::JobError::Unknown)), bounding
    /// memory in a long-running service. `0` retains everything.
    pub retained_jobs: usize,
    /// The recovery pipeline configuration every job runs under. Trace
    /// jobs replay against this schedule, so submitted traces must cover
    /// the patterns it requests (record them over the same schedule).
    pub recovery: RecoveryConfig,
    /// The admitted tenants and their auth tokens. `None` (the default)
    /// is an *open* service: any well-formed tenant name may submit, and
    /// authentication always succeeds. `Some(set)` is a *closed* service:
    /// submissions from tenants outside the set are
    /// [`Rejected::InvalidTenant`], and
    /// [`RecoveryService::authenticate`] (the network edge's Hello check)
    /// requires the tenant's exact token. An empty set is a typed
    /// [`ConfigError::EmptyTenantSet`] at start.
    pub tenants: Option<HashMap<String, String>>,
    /// Whether the observability layer records anything. On (the
    /// default), latency histograms, per-tenant counters, and the flight
    /// recorder are live; off, every recording call is a no-op branch —
    /// the switch the `metrics_overhead` bench compares across. The
    /// frozen `ServiceStats` counters are kept either way.
    pub observability: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            queue_capacity: 256,
            max_patterns: 1 << 16,
            registry_path: None,
            compact_after: 4096,
            compact_budget: 6,
            registry_seal_bytes: crate::registry::DEFAULT_SEAL_BYTES,
            retained_jobs: 4096,
            recovery: RecoveryConfig::new(),
            tenants: None,
            observability: true,
        }
    }
}

impl ServiceConfig {
    /// The default configuration (see the field docs).
    pub fn new() -> Self {
        ServiceConfig::default()
    }

    /// Overrides the worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Overrides the queue capacity.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Overrides the per-job pattern ceiling.
    pub fn with_max_patterns(mut self, max_patterns: usize) -> Self {
        self.max_patterns = max_patterns;
        self
    }

    /// Backs the registry with a file, surviving restarts.
    pub fn with_registry_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.registry_path = Some(path.into());
        self
    }

    /// Overrides the auto-compaction threshold.
    pub fn with_compact_after(mut self, records: usize) -> Self {
        self.compact_after = records;
        self
    }

    /// Overrides the snapshot-generation budget before a major merge.
    pub fn with_compact_budget(mut self, generations: usize) -> Self {
        self.compact_budget = generations;
        self
    }

    /// Overrides the active-log seal threshold (bytes).
    pub fn with_registry_seal_bytes(mut self, bytes: u64) -> Self {
        self.registry_seal_bytes = bytes;
        self
    }

    /// Overrides the terminal-job retention bound (`0` = retain all).
    pub fn with_retained_jobs(mut self, retained: usize) -> Self {
        self.retained_jobs = retained;
        self
    }

    /// Overrides the recovery pipeline configuration.
    pub fn with_recovery(mut self, recovery: RecoveryConfig) -> Self {
        self.recovery = recovery;
        self
    }

    /// Turns the observability layer on or off (see
    /// [`ServiceConfig::observability`]).
    pub fn with_observability(mut self, enabled: bool) -> Self {
        self.observability = enabled;
        self
    }

    /// Closes the service to an explicit `(tenant, auth token)` set.
    pub fn with_tenants<T, U>(mut self, tenants: impl IntoIterator<Item = (T, U)>) -> Self
    where
        T: Into<String>,
        U: Into<String>,
    {
        self.tenants = Some(
            tenants
                .into_iter()
                .map(|(t, u)| (t.into(), u.into()))
                .collect(),
        );
        self
    }

    /// Validates the configuration (also run by
    /// [`RecoveryService::start`]).
    ///
    /// # Errors
    ///
    /// The first applicable [`ConfigError`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.workers == 0 {
            return Err(ConfigError::ZeroWorkers);
        }
        if self.queue_capacity == 0 {
            return Err(ConfigError::ZeroQueueCapacity);
        }
        if self.tenants.as_ref().is_some_and(HashMap::is_empty) {
            return Err(ConfigError::EmptyTenantSet);
        }
        Ok(())
    }
}

/// Admission rejections by kind (see [`ServiceStats::rejected`]) — the
/// shape of the backpressure a service is applying.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RejectionStats {
    /// [`Rejected::QueueFull`] rejections.
    pub queue_full: u64,
    /// [`Rejected::TooLarge`] rejections.
    pub too_large: u64,
    /// [`Rejected::InvalidTenant`] rejections.
    pub invalid_tenant: u64,
    /// [`Rejected::Unschedulable`] rejections.
    pub unschedulable: u64,
    /// [`Rejected::ShuttingDown`] rejections.
    pub shutting_down: u64,
}

impl RejectionStats {
    /// Rejections of every kind.
    pub fn total(&self) -> u64 {
        self.queue_full
            + self.too_large
            + self.invalid_tenant
            + self.unschedulable
            + self.shutting_down
    }
}

/// Service counters and gauges (see [`RecoveryService::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Jobs admitted (including cache hits and coalesced waiters).
    pub submitted: u64,
    /// Jobs that ended `Done`.
    pub completed: u64,
    /// Jobs that ended `Failed`.
    pub failed: u64,
    /// Jobs that ended `Cancelled`.
    pub cancelled: u64,
    /// Submissions answered from the persistent registry without solving.
    pub cache_hits: u64,
    /// Submissions absorbed by an identical in-flight job.
    pub coalesced: u64,
    /// Waiters promoted back into the queue after their primary was
    /// cancelled.
    pub requeued: u64,
    /// Jobs currently queued (gauge).
    pub queued: usize,
    /// Jobs currently running (gauge).
    pub running: usize,
    /// Admission rejections by kind.
    pub rejected: RejectionStats,
    /// Registry query answers truncated at the network edge's entry cap
    /// (reported by [`RecoveryService::note_truncated_answer`]): operators
    /// watching this climb know clients are seeing partial answers.
    pub truncated_answers: u64,
    /// Live registry segments of any kind — log + snapshot (gauge).
    pub registry_segments: usize,
    /// Live registry snapshot generations (gauge). Climbing toward the
    /// compaction budget means a major merge is coming.
    pub registry_snapshots: usize,
    /// Successful registry compactions (minor + major).
    pub registry_compactions: u64,
    /// Failed registry compactions. Appended-record accounting is kept
    /// intact on failure, so this climbing is an operator signal, not a
    /// silent reset.
    pub registry_compaction_failures: u64,
    /// Submissions this node proxied to their owning cluster peer
    /// (reported by [`RecoveryService::note_forwarded_job`]). Zero on a
    /// standalone node.
    pub forwarded_jobs: u64,
    /// Forwarding attempts that failed — the peer was unreachable or
    /// refused the job (reported by
    /// [`RecoveryService::note_forward_error`]).
    pub forward_errors: u64,
}

/// The service's observability hub: one metrics registry and one flight
/// recorder per node, shared (by `Arc`) with the network edge so every
/// tier's series land in one exposition.
///
/// The frozen [`ServiceStats`] counters stay authoritative under the
/// state lock; this hub carries what they cannot — latency
/// *distributions* (queue wait, solve time, cache lookups, per-round
/// pipeline phases), per-tenant counters, and the recent-event ring.
/// When constructed disabled, every recording method is one branch and
/// returns — the `metrics_overhead` bench compares exactly this switch.
pub struct ServiceObs {
    enabled: bool,
    registry: MetricsRegistry,
    recorder: FlightRecorder,
    queue_wait: Arc<Histogram>,
    solve_time: Arc<Histogram>,
    cache_lookup: Arc<Histogram>,
    phase_collect: Arc<Histogram>,
    phase_preprocess: Arc<Histogram>,
    phase_encode: Arc<Histogram>,
    phase_solve: Arc<Histogram>,
    dram_sim: Arc<Histogram>,
}

/// How many flight-recorder events a node retains.
const FLIGHT_CAPACITY: usize = 256;

impl ServiceObs {
    fn new(enabled: bool) -> Self {
        let registry = MetricsRegistry::new();
        ServiceObs {
            enabled,
            queue_wait: registry.histogram("service_queue_wait_ns"),
            solve_time: registry.histogram("service_solve_ns"),
            cache_lookup: registry.histogram("service_cache_lookup_ns"),
            phase_collect: registry.histogram("pipeline_collect_ns"),
            phase_preprocess: registry.histogram("pipeline_preprocess_ns"),
            phase_encode: registry.histogram("pipeline_encode_ns"),
            phase_solve: registry.histogram("pipeline_solve_ns"),
            dram_sim: registry.histogram("dram_sim_ns"),
            recorder: FlightRecorder::new(FLIGHT_CAPACITY),
            registry,
        }
    }

    /// True when the layer records; false turns every record into a
    /// no-op (the exposition then shows only empty series).
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// The node's metrics registry. Other tiers (the network edge's
    /// reactor and forwarder) register their own series here so one
    /// `QueryMetrics` answer covers the whole node.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Records a flight-recorder event (no-op when disabled).
    pub fn flight(&self, kind: &'static str, trace: Option<TraceId>, detail: impl Into<String>) {
        if self.enabled {
            self.recorder.record(kind, trace, detail);
        }
    }

    /// The recent-event ring, for direct inspection.
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    fn record(&self, histogram: &Histogram, elapsed: std::time::Duration) {
        if self.enabled {
            histogram.record_duration(elapsed);
        }
    }

    fn bump_tenant(&self, tenant: &str, series: &str) {
        if self.enabled {
            self.registry
                .counter(&format!("tenant_{tenant}_{series}"))
                .inc();
        }
    }
}

enum InputSlot {
    Trace(Arc<ProfileTrace>),
    Source {
        label: String,
        source: Option<Box<dyn ProfileSource + Send>>,
    },
}

struct Job {
    tenant: String,
    priority: Priority,
    state: JobState,
    input: InputSlot,
    fingerprint: Option<Fingerprint>,
    cancel: CancelToken,
    deadline_at: Option<Instant>,
    /// When the job was admitted — the start of its queue-wait span.
    enqueued_at: Instant,
    /// The job's correlation id: supplied by the submitter (a forwarded
    /// job keeps its origin-node id) or minted at admission.
    trace_id: TraceId,
    /// Jobs coalesced onto this one (present on primaries only).
    waiters: Vec<JobId>,
    /// The primary this job coalesced onto (present on waiters only).
    coalesced_into: Option<JobId>,
    result: Option<JobResult>,
    events: Fanout<JobEvent>,
}

#[derive(Clone, Copy, Default)]
struct Counters {
    submitted: u64,
    completed: u64,
    failed: u64,
    cancelled: u64,
    cache_hits: u64,
    coalesced: u64,
    requeued: u64,
    rejected: RejectionStats,
    truncated_answers: u64,
    forwarded_jobs: u64,
    forward_errors: u64,
}

struct State {
    scheduler: FairScheduler<JobId>,
    jobs: HashMap<JobId, Job>,
    /// Terminal jobs in completion order, for bounded retention.
    terminal_order: std::collections::VecDeque<JobId>,
    /// Fingerprint → the queued/running primary job for it.
    inflight: HashMap<Fingerprint, JobId>,
    registry: Registry,
    next_id: u64,
    running: usize,
    counters: Counters,
    shutdown: bool,
}

struct Inner {
    state: Mutex<State>,
    /// Signals workers that the queue gained an entry (or shutdown).
    work_ready: Condvar,
    /// Signals [`RecoveryService::wait`]ers that some job finished.
    finished: Condvar,
    /// Service-wide event stream.
    events: Fanout<JobEvent>,
    recovery: RecoveryConfig,
    queue_capacity: usize,
    max_patterns: usize,
    compact_after: usize,
    compact_budget: usize,
    retained_jobs: usize,
    /// `Some` = closed tenant set with auth tokens; `None` = open.
    tenants: Option<HashMap<String, String>>,
    obs: Arc<ServiceObs>,
}

/// The multi-tenant recovery service (see the module docs and the crate
/// docs for an end-to-end example).
pub struct RecoveryService {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl RecoveryService {
    /// Starts the service: validates the configuration, opens (and
    /// replays) the registry, and spawns the worker pool.
    ///
    /// # Errors
    ///
    /// [`StartError::Config`] for a configuration that could never make
    /// progress (zero workers, zero queue capacity, or an explicit-but-
    /// empty tenant set); [`StartError::Io`] for registry I/O errors.
    pub fn start(config: ServiceConfig) -> Result<RecoveryService, StartError> {
        config.validate()?;
        let mut registry = match &config.registry_path {
            Some(path) => Registry::open(path)?,
            None => Registry::in_memory(),
        };
        registry.set_seal_bytes(config.registry_seal_bytes);
        let worker_count = config.workers;
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                scheduler: FairScheduler::new(config.queue_capacity),
                jobs: HashMap::new(),
                terminal_order: std::collections::VecDeque::new(),
                inflight: HashMap::new(),
                registry,
                next_id: 0,
                running: 0,
                counters: Counters::default(),
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            finished: Condvar::new(),
            events: Fanout::new(),
            recovery: config.recovery,
            queue_capacity: config.queue_capacity,
            max_patterns: config.max_patterns,
            compact_after: config.compact_after,
            compact_budget: config.compact_budget,
            retained_jobs: config.retained_jobs,
            tenants: config.tenants,
            obs: Arc::new(ServiceObs::new(config.observability)),
        });
        let workers = (0..worker_count)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("beer-service-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn service worker")
            })
            .collect();
        Ok(RecoveryService { inner, workers })
    }

    /// Submits a job, passing it through the cache, coalescing, and
    /// admission gates (see the module docs).
    ///
    /// # Errors
    ///
    /// Returns a typed [`Rejected`] — admission backpressure, never a
    /// panic.
    pub fn submit(&self, request: JobRequest) -> Result<JobId, Rejected> {
        let tenant = request.tenant.clone();
        let result = self.submit_inner(request);
        if let Err(rejected) = &result {
            {
                let mut state = lock_unpoisoned(&self.inner.state);
                let r = &mut state.counters.rejected;
                match rejected {
                    Rejected::QueueFull { .. } => r.queue_full += 1,
                    Rejected::TooLarge { .. } => r.too_large += 1,
                    Rejected::InvalidTenant { .. } => r.invalid_tenant += 1,
                    Rejected::Unschedulable { .. } => r.unschedulable += 1,
                    Rejected::ShuttingDown => r.shutting_down += 1,
                }
            }
            // No per-tenant series for InvalidTenant: arbitrary unvetted
            // names would grow the registry without bound.
            if !matches!(rejected, Rejected::InvalidTenant { .. }) {
                self.inner.obs.bump_tenant(&tenant, "rejected_total");
            }
            self.inner
                .obs
                .flight("shed", None, format!("tenant {tenant}: {rejected}"));
        }
        result
    }

    fn submit_inner(&self, request: JobRequest) -> Result<JobId, Rejected> {
        let JobRequest {
            tenant,
            priority,
            deadline,
            input,
            trace_id,
        } = request;
        if tenant.is_empty() {
            return Err(Rejected::InvalidTenant {
                reason: "tenant name is empty",
            });
        }
        if tenant.chars().any(char::is_whitespace) {
            return Err(Rejected::InvalidTenant {
                reason: "tenant name contains whitespace",
            });
        }
        if let Some(tenants) = &self.inner.tenants {
            if !tenants.contains_key(&tenant) {
                return Err(Rejected::InvalidTenant {
                    reason: "tenant is not in the service's tenant set",
                });
            }
        }
        let (slot, fingerprint, patterns) = match input {
            JobInput::Trace(trace) => {
                let patterns = trace.patterns.len();
                let fingerprint = trace.fingerprint();
                (InputSlot::Trace(trace), Some(fingerprint), patterns)
            }
            JobInput::Source { label, source } => {
                // `scheduled_patterns` asserts on unschedulable dataword
                // lengths; admission control must reject typed instead of
                // unwinding into the submitter.
                let k = source.k();
                let recovery = &self.inner.recovery;
                let patterns = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    recovery.scheduled_patterns(k)
                }))
                .map_err(|_| Rejected::Unschedulable { k })?;
                (
                    InputSlot::Source {
                        label,
                        source: Some(source),
                    },
                    None,
                    patterns,
                )
            }
        };
        if patterns > self.inner.max_patterns {
            return Err(Rejected::TooLarge {
                patterns,
                limit: self.inner.max_patterns,
            });
        }

        let mut state = lock_unpoisoned(&self.inner.state);
        if state.shutdown {
            return Err(Rejected::ShuttingDown);
        }
        // Cache: a completed record for this fingerprint answers in O(1).
        let lookup_start = Instant::now();
        let cached = fingerprint.and_then(|fp| {
            state
                .registry
                .lookup_fingerprint(fp)
                .map(|record| record.outcome)
        });
        let obs = &self.inner.obs;
        obs.record(&obs.cache_lookup, lookup_start.elapsed());
        // Coalescing: an identical in-flight profile absorbs this job.
        let primary = fingerprint.and_then(|fp| state.inflight.get(&fp).copied());
        // Admission: everything else needs a queue slot.
        if cached.is_none()
            && primary.is_none()
            && state.scheduler.len() >= self.inner.queue_capacity
        {
            return Err(Rejected::QueueFull {
                capacity: self.inner.queue_capacity,
            });
        }

        let id = JobId(state.next_id);
        state.next_id += 1;
        state.counters.submitted += 1;
        // Every admitted job carries a trace id: the submitter's (a
        // forwarded job keeps its origin-node id) or one minted here.
        let trace_id = trace_id.unwrap_or_else(TraceId::mint);
        state.jobs.insert(
            id,
            Job {
                tenant: tenant.clone(),
                priority,
                state: JobState::Queued,
                input: slot,
                fingerprint,
                cancel: CancelToken::new(),
                deadline_at: deadline.map(|d| Instant::now() + d),
                enqueued_at: Instant::now(),
                trace_id,
                waiters: Vec::new(),
                coalesced_into: None,
                result: None,
                events: Fanout::new(),
            },
        );
        obs.bump_tenant(&tenant, "submitted_total");
        obs.flight("admission", Some(trace_id), format!("{id} tenant {tenant}"));
        self.inner
            .emit(&state, JobEvent::Submitted { job: id, tenant });

        if let Some(outcome) = cached {
            state.counters.cache_hits += 1;
            self.inner.emit(&state, JobEvent::CacheHit { job: id });
            self.inner.finalize(
                &mut state,
                id,
                JobState::Done,
                Ok(JobOutput {
                    outcome,
                    from_cache: true,
                    coalesced_into: None,
                }),
            );
        } else if let Some(primary) = primary {
            state
                .jobs
                .get_mut(&primary)
                .expect("inflight names a live job")
                .waiters
                .push(id);
            state
                .jobs
                .get_mut(&id)
                .expect("just inserted")
                .coalesced_into = Some(primary);
            state.counters.coalesced += 1;
            self.inner
                .emit(&state, JobEvent::Coalesced { job: id, primary });
        } else {
            let tenant = state.jobs[&id].tenant.clone();
            state
                .scheduler
                .push(&tenant, priority, id)
                .expect("capacity checked above");
            if let Some(fp) = fingerprint {
                state.inflight.insert(fp, id);
            }
            self.inner.work_ready.notify_one();
        }
        Ok(id)
    }

    /// The job's current lifecycle state.
    pub fn status(&self, id: JobId) -> Option<JobState> {
        lock_unpoisoned(&self.inner.state)
            .jobs
            .get(&id)
            .map(|j| j.state)
    }

    /// The job's result, if it reached a terminal state (non-blocking).
    pub fn result(&self, id: JobId) -> Option<JobResult> {
        lock_unpoisoned(&self.inner.state)
            .jobs
            .get(&id)
            .and_then(|j| j.result.clone())
    }

    /// Blocks until the job reaches a terminal state and returns its
    /// result ([`JobError::Unknown`] for an id this instance never
    /// issued).
    pub fn wait(&self, id: JobId) -> JobResult {
        let mut state = lock_unpoisoned(&self.inner.state);
        loop {
            match state.jobs.get(&id) {
                None => return Err(JobError::Unknown),
                Some(job) => {
                    if let Some(result) = &job.result {
                        return result.clone();
                    }
                }
            }
            state = self
                .inner
                .finished
                .wait(state)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Requests cancellation. Queued jobs (and coalesced waiters) land
    /// `Cancelled` immediately; a running job's session stops at the next
    /// unit boundary. Returns `false` if the job is unknown or already
    /// terminal.
    pub fn cancel(&self, id: JobId) -> bool {
        let mut state = lock_unpoisoned(&self.inner.state);
        let Some(job) = state.jobs.get(&id) else {
            return false;
        };
        if job.state.is_terminal() {
            return false;
        }
        job.cancel.cancel();
        let coalesced_into = job.coalesced_into;
        let tenant = job.tenant.clone();
        match job.state {
            JobState::Queued => {
                if let Some(primary) = coalesced_into {
                    if let Some(pj) = state.jobs.get_mut(&primary) {
                        pj.waiters.retain(|w| *w != id);
                    }
                } else {
                    // Drop the scheduler entry so a cancelled job stops
                    // consuming queue capacity and fairness turns.
                    state.scheduler.remove(&tenant, &id);
                }
                // A queued primary's waiters are promoted by finalize.
                self.inner.finalize(
                    &mut state,
                    id,
                    JobState::Cancelled,
                    Err(JobError::Cancelled),
                );
            }
            JobState::Running => {
                // The worker's completion path maps the session's
                // cancelled outcome to `Cancelled`.
            }
            _ => unreachable!("terminal states handled above"),
        }
        true
    }

    /// Subscribes to one job's event stream (events from subscription
    /// time onward).
    pub fn subscribe(&self, id: JobId) -> Option<mpsc::Receiver<JobEvent>> {
        lock_unpoisoned(&self.inner.state)
            .jobs
            .get(&id)
            .map(|j| j.events.subscribe())
    }

    /// Subscribes to one job's event stream with a wakeup callback:
    /// `notify` runs (on the publishing thread) after each event is
    /// queued. This is the network edge's fan-out hook — a reactor
    /// multiplexing thousands of watchers parks on epoll and is woken
    /// exactly when a watched job produces an event, instead of polling
    /// every receiver on a timer.
    pub fn subscribe_notified(
        &self,
        id: JobId,
        notify: FanoutNotify,
    ) -> Option<mpsc::Receiver<JobEvent>> {
        lock_unpoisoned(&self.inner.state)
            .jobs
            .get(&id)
            .map(|j| j.events.subscribe_with_notify(notify))
    }

    /// Subscribes to every job's events. Subscribe *before* submitting to
    /// observe admission-time events (`Submitted`, `Coalesced`,
    /// `CacheHit`).
    pub fn subscribe_all(&self) -> mpsc::Receiver<JobEvent> {
        self.inner.events.subscribe()
    }

    /// The cached outcome for a profile fingerprint, if any job completed
    /// it (now or in a previous service life).
    pub fn cached_outcome(&self, fingerprint: Fingerprint) -> Option<CodeOutcome> {
        lock_unpoisoned(&self.inner.state)
            .registry
            .lookup_fingerprint(fingerprint)
            .map(|record| record.outcome)
    }

    /// The full registry record for a profile fingerprint.
    pub fn lookup_fingerprint(&self, fingerprint: Fingerprint) -> Option<JobRecord> {
        lock_unpoisoned(&self.inner.state)
            .registry
            .lookup_fingerprint(fingerprint)
    }

    /// Checks a tenant's credentials — the network edge's Hello gate.
    ///
    /// An *open* service (no configured tenant set) accepts any
    /// well-formed tenant name and ignores the token. A *closed* service
    /// requires the tenant to be in the set with exactly this token
    /// (compared in constant time over the token bytes).
    pub fn authenticate(&self, tenant: &str, token: &str) -> bool {
        if tenant.is_empty() || tenant.chars().any(char::is_whitespace) {
            return false;
        }
        match &self.inner.tenants {
            None => true,
            Some(tenants) => tenants.get(tenant).is_some_and(|expected| {
                // Constant-time comparison: no early exit leaking how much
                // of the token matched.
                expected.len() == token.len()
                    && expected
                        .bytes()
                        .zip(token.bytes())
                        .fold(0u8, |acc, (a, b)| acc | (a ^ b))
                        == 0
            }),
        }
    }

    /// The registry entry for any code equivalent to `code`.
    pub fn lookup_code(&self, code: &LinearCode) -> Option<CodeEntry> {
        lock_unpoisoned(&self.inner.state)
            .registry
            .lookup_code(code)
            .cloned()
    }

    /// Every registry entry whose canonical hash is `hash` (more than one
    /// only if two inequivalent codes collide on the 64-bit hash).
    pub fn lookup_hash(&self, hash: u64) -> Vec<CodeEntry> {
        lock_unpoisoned(&self.inner.state)
            .registry
            .lookup_hash(hash)
            .to_vec()
    }

    /// Every registered code with the given dimensions.
    pub fn lookup_dims(&self, n: usize, k: usize) -> Vec<CodeEntry> {
        lock_unpoisoned(&self.inner.state)
            .registry
            .lookup_dims(n, k)
            .into_iter()
            .cloned()
            .collect()
    }

    /// One page of the dims query, resuming strictly after the
    /// `(hash, bucket idx)` cursor; returns the page and the cursor for
    /// the next one (`None` when exhausted). The underlying run is
    /// append-only and sorted, so a cursor stays valid while jobs
    /// complete between pages — this is what the network edge serves,
    /// holding the registry lock only per page, never across pages.
    pub fn lookup_dims_page(
        &self,
        n: usize,
        k: usize,
        after: Option<(u64, u32)>,
        limit: usize,
    ) -> (Vec<CodeEntry>, Option<(u64, u32)>) {
        let state = lock_unpoisoned(&self.inner.state);
        let (page, next) = state.registry.lookup_dims_page(n, k, after, limit);
        (page.into_iter().cloned().collect(), next)
    }

    /// One page of a canonical-hash bucket, resuming strictly after
    /// bucket index `after` (see [`RecoveryService::lookup_dims_page`]).
    pub fn lookup_hash_page(
        &self,
        hash: u64,
        after: Option<u32>,
        limit: usize,
    ) -> (Vec<CodeEntry>, Option<u32>) {
        let state = lock_unpoisoned(&self.inner.state);
        let (page, next) = state.registry.lookup_hash_page(hash, after, limit);
        (page.into_iter().cloned().collect(), next)
    }

    /// `(job records, distinct codes)` currently in the registry.
    pub fn registry_size(&self) -> (usize, usize) {
        let state = lock_unpoisoned(&self.inner.state);
        (state.registry.record_count(), state.registry.code_count())
    }

    /// Forces a registry snapshot/compaction now.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; the previous log stays intact on failure.
    pub fn compact_registry(&self) -> io::Result<()> {
        lock_unpoisoned(&self.inner.state).registry.compact()
    }

    /// Blocks until the service is *idle* — nothing queued and nothing
    /// running — or `timeout` elapses; returns `true` when idle was
    /// reached. Driven by the same condvar that resolves
    /// [`RecoveryService::wait`], so a drain waits exactly as long as the
    /// work does, with no polling.
    pub fn wait_idle(&self, timeout: std::time::Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut state = lock_unpoisoned(&self.inner.state);
        loop {
            if state.scheduler.len() == 0 && state.running == 0 {
                return true;
            }
            let now = Instant::now();
            let Some(remaining) = deadline
                .checked_duration_since(now)
                .filter(|d| !d.is_zero())
            else {
                return false;
            };
            let (guard, _) = self
                .inner
                .finished
                .wait_timeout(state, remaining)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            state = guard;
        }
    }

    /// Records that a registry query answer was truncated at the network
    /// edge's entry cap (see [`ServiceStats::truncated_answers`]).
    pub fn note_truncated_answer(&self) {
        lock_unpoisoned(&self.inner.state)
            .counters
            .truncated_answers += 1;
    }

    /// Records that a submission was proxied to its owning cluster peer
    /// (see [`ServiceStats::forwarded_jobs`]). The job itself runs — and
    /// is counted — on the owner; this node only relayed it.
    pub fn note_forwarded_job(&self) {
        lock_unpoisoned(&self.inner.state).counters.forwarded_jobs += 1;
    }

    /// Records a failed forwarding attempt (see
    /// [`ServiceStats::forward_errors`]).
    pub fn note_forward_error(&self) {
        lock_unpoisoned(&self.inner.state).counters.forward_errors += 1;
    }

    /// The node's observability hub: metrics registry, latency
    /// histograms, and flight recorder. The network edge shares it so
    /// one exposition covers every tier of the node.
    pub fn obs(&self) -> &Arc<ServiceObs> {
        &self.inner.obs
    }

    /// The trace correlation id of a job still in the retention window.
    pub fn job_trace_id(&self, id: JobId) -> Option<TraceId> {
        lock_unpoisoned(&self.inner.state)
            .jobs
            .get(&id)
            .map(|job| job.trace_id)
    }

    /// The node's full observability state as text: the frozen
    /// [`ServiceStats`] mirror, every registered metric series (latency
    /// histograms with p50/p90/p99), and the last `tail` flight-recorder
    /// events. This is the payload of the wire's v4 `QueryMetrics`
    /// answer; the format is line-oriented and stable enough to grep,
    /// not a frozen wire encoding.
    pub fn metrics_text(&self, tail: usize) -> String {
        let stats = self.stats();
        let mut out = String::new();
        out.push_str(&format!(
            "stats submitted={} completed={} failed={} cancelled={} \
             cache_hits={} coalesced={} requeued={} queued={} running={} \
             rejected={} truncated_answers={} forwarded_jobs={} forward_errors={}\n",
            stats.submitted,
            stats.completed,
            stats.failed,
            stats.cancelled,
            stats.cache_hits,
            stats.coalesced,
            stats.requeued,
            stats.queued,
            stats.running,
            stats.rejected.total(),
            stats.truncated_answers,
            stats.forwarded_jobs,
            stats.forward_errors,
        ));
        out.push_str(&format!(
            "stats registry_segments={} registry_snapshots={} \
             registry_compactions={} registry_compaction_failures={}\n",
            stats.registry_segments,
            stats.registry_snapshots,
            stats.registry_compactions,
            stats.registry_compaction_failures,
        ));
        if self.inner.obs.enabled() {
            out.push_str(&self.inner.obs.registry().render());
            out.push_str(&self.inner.obs.recorder().render_tail(tail));
        } else {
            out.push_str("# observability disabled\n");
        }
        out
    }

    /// Current counters and gauges.
    pub fn stats(&self) -> ServiceStats {
        let state = lock_unpoisoned(&self.inner.state);
        let c = state.counters;
        ServiceStats {
            submitted: c.submitted,
            completed: c.completed,
            failed: c.failed,
            cancelled: c.cancelled,
            cache_hits: c.cache_hits,
            coalesced: c.coalesced,
            requeued: c.requeued,
            queued: state
                .jobs
                .values()
                .filter(|j| j.state == JobState::Queued)
                .count(),
            running: state.running,
            rejected: c.rejected,
            truncated_answers: c.truncated_answers,
            registry_segments: state.registry.segment_count(),
            registry_snapshots: state.registry.snapshot_count(),
            registry_compactions: state.registry.compactions(),
            registry_compaction_failures: state.registry.compaction_failures(),
            forwarded_jobs: c.forwarded_jobs,
            forward_errors: c.forward_errors,
        }
    }

    /// Stops accepting work, fails still-queued jobs with
    /// [`JobError::ShutDown`], lets running sessions finish, and joins the
    /// workers. Also runs on drop.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        {
            let mut state = lock_unpoisoned(&self.inner.state);
            if !state.shutdown {
                state.shutdown = true;
                for id in state.scheduler.drain() {
                    if !state.jobs[&id].state.is_terminal() {
                        self.inner.finalize(
                            &mut state,
                            id,
                            JobState::Failed,
                            Err(JobError::ShutDown),
                        );
                    }
                }
            }
        }
        self.inner.work_ready.notify_all();
        self.inner.finished.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for RecoveryService {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

impl Inner {
    /// Publishes an event to the job's subscribers and the service-wide
    /// stream.
    fn emit(&self, state: &State, event: JobEvent) {
        if let Some(job) = state.jobs.get(&event.job()) {
            job.events.publish(&event);
        }
        self.events.publish(&event);
    }

    /// Moves a job to a terminal state: sets the result, updates counters
    /// and the in-flight index, resolves coalesced waiters (sharing the
    /// result, or promoting them after a cancellation), and wakes waiters.
    fn finalize(&self, state: &mut State, id: JobId, new_state: JobState, result: JobResult) {
        debug_assert!(new_state.is_terminal());
        let Some(job) = state.jobs.get_mut(&id) else {
            return;
        };
        if job.state.is_terminal() {
            return;
        }
        job.state = new_state;
        job.result = Some(result.clone());
        let waiters = std::mem::take(&mut job.waiters);
        let fingerprint = job.fingerprint;
        match new_state {
            JobState::Done => state.counters.completed += 1,
            JobState::Failed => state.counters.failed += 1,
            JobState::Cancelled => state.counters.cancelled += 1,
            _ => {}
        }
        self.emit(
            state,
            JobEvent::StateChanged {
                job: id,
                state: new_state,
            },
        );
        if let Some(fp) = fingerprint {
            if state.inflight.get(&fp) == Some(&id) {
                state.inflight.remove(&fp);
            }
        }
        if new_state == JobState::Cancelled {
            // Cancelling a primary must not take its waiters down: the
            // first live waiter is promoted to run the profile itself.
            let mut live: Vec<JobId> = waiters
                .into_iter()
                .filter(|w| {
                    state
                        .jobs
                        .get(w)
                        .is_some_and(|j| !j.state.is_terminal() && !j.cancel.is_cancelled())
                })
                .collect();
            if !live.is_empty() {
                let promoted = live.remove(0);
                let pj = state.jobs.get_mut(&promoted).expect("live waiter");
                pj.coalesced_into = None;
                pj.waiters = live;
                let (tenant, priority) = (pj.tenant.clone(), pj.priority);
                if let Some(fp) = fingerprint {
                    state.inflight.insert(fp, promoted);
                }
                state.scheduler.requeue(&tenant, priority, promoted);
                state.counters.requeued += 1;
                self.emit(state, JobEvent::Requeued { job: promoted });
                self.work_ready.notify_one();
            }
        } else {
            let now = Instant::now();
            for waiter in waiters {
                let Some(wj) = state.jobs.get(&waiter) else {
                    continue;
                };
                if wj.state.is_terminal() {
                    continue;
                }
                // A waiter's own deadline covers its whole wait: a result
                // arriving after it expired is reported as the typed
                // expiry, not as a late success.
                if wj.deadline_at.is_some_and(|at| now >= at) {
                    self.finalize(
                        state,
                        waiter,
                        JobState::Failed,
                        Err(JobError::DeadlineExpired),
                    );
                    continue;
                }
                let shared = match &result {
                    Ok(output) => Ok(JobOutput {
                        coalesced_into: Some(id),
                        from_cache: false,
                        outcome: output.outcome.clone(),
                    }),
                    Err(e) => Err(e.clone()),
                };
                self.finalize(state, waiter, new_state, shared);
            }
        }
        // Bounded retention: evict the oldest terminal jobs beyond the
        // configured window so a long-running service does not accumulate
        // every job ever submitted.
        state.terminal_order.push_back(id);
        if self.retained_jobs > 0 {
            while state.terminal_order.len() > self.retained_jobs {
                let evicted = state.terminal_order.pop_front().expect("len checked above");
                state.jobs.remove(&evicted);
            }
        }
        self.finished.notify_all();
    }
}

/// What a worker carries out of the lock to run a job.
enum RunInput {
    Trace(Arc<ProfileTrace>),
    Source {
        label: String,
        source: Box<dyn ProfileSource + Send>,
    },
}

fn worker_loop(inner: &Inner) {
    let mut state = lock_unpoisoned(&inner.state);
    loop {
        if state.shutdown {
            return;
        }
        let Some(id) = state.scheduler.pop() else {
            state = inner
                .work_ready
                .wait(state)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            continue;
        };
        let job = state.jobs.get_mut(&id).expect("scheduled job exists");
        if job.state != JobState::Queued {
            continue; // stale entry: cancelled while queued
        }
        if job.cancel.is_cancelled() {
            inner.finalize(
                &mut state,
                id,
                JobState::Cancelled,
                Err(JobError::Cancelled),
            );
            continue;
        }
        if job.deadline_at.is_some_and(|at| Instant::now() >= at) {
            inner.finalize(
                &mut state,
                id,
                JobState::Failed,
                Err(JobError::DeadlineExpired),
            );
            continue;
        }
        job.state = JobState::Running;
        let cancel = job.cancel.clone();
        let deadline_at = job.deadline_at;
        let job_events = job.events.clone();
        let tenant = job.tenant.clone();
        let fingerprint = job.fingerprint;
        let trace_id = job.trace_id;
        let queue_wait = job.enqueued_at.elapsed();
        let input = match &mut job.input {
            InputSlot::Trace(trace) => RunInput::Trace(Arc::clone(trace)),
            InputSlot::Source { label, source } => RunInput::Source {
                label: label.clone(),
                source: source.take().expect("sources run once"),
            },
        };
        let obs = Arc::clone(&inner.obs);
        obs.record(&obs.queue_wait, queue_wait);
        obs.flight(
            "dispatch",
            Some(trace_id),
            format!("{id} after {}us queued", queue_wait.as_micros()),
        );
        state.running += 1;
        inner.emit(
            &state,
            JobEvent::StateChanged {
                job: id,
                state: JobState::Running,
            },
        );
        drop(state);

        // Run the session outside the lock. Each worker collects serially
        // (the pool is the parallelism budget), and the guarded runner
        // turns a panicking backend into this job's typed error.
        let global_events = inner.events.clone();
        let observer_obs = Arc::clone(&obs);
        let observer = move |event: &RecoveryEvent| {
            // The per-round phase breakdown feeds the node's pipeline
            // histograms — the paper's Fig. 6 stage split, live.
            if let RecoveryEvent::CheckCompleted { phases, sim_ns, .. } = event {
                let o = &observer_obs;
                o.record(&o.phase_collect, phases.collect);
                o.record(&o.phase_preprocess, phases.preprocess);
                o.record(&o.phase_encode, phases.encode);
                o.record(&o.phase_solve, phases.solve);
                // Simulated DRAM time is a separate axis from the host
                // phases: only timed backends report it, so the series
                // stays empty (not zero-polluted) for untimed jobs.
                if *sim_ns > 0 {
                    o.record(&o.dram_sim, std::time::Duration::from_nanos(*sim_ns));
                }
            }
            let event = JobEvent::Progress {
                job: id,
                event: event.clone(),
            };
            job_events.publish(&event);
            global_events.publish(&event);
        };
        let mut config = inner
            .recovery
            .clone()
            .with_engine_options(EngineOptions::serial());
        if let Some(at) = deadline_at {
            config = config.with_deadline(at.saturating_duration_since(Instant::now()));
        }
        let hooks = SessionHooks {
            cancel: Some(cancel),
            observer: Some(Box::new(observer)),
        };
        let run_start = Instant::now();
        let run = match input {
            RunInput::Trace(trace) => {
                let mut backend = ReplayBackend::new((*trace).clone());
                run_session_guarded(&config, &format!("{id} (replay)"), &mut backend, hooks)
            }
            RunInput::Source { label, mut source } => {
                run_session_guarded(&config, &format!("{id} ({label})"), source.as_mut(), hooks)
            }
        };
        obs.record(&obs.solve_time, run_start.elapsed());

        state = lock_unpoisoned(&inner.state);
        state.running -= 1;
        let (job_state, job_result) = match run {
            Ok(report) => match report.outcome {
                RecoveryOutcome::Unique(code) => (
                    JobState::Done,
                    Ok(CodeOutcome::Unique(equivalence::canonicalize(&code))),
                ),
                RecoveryOutcome::Ambiguous {
                    count, truncated, ..
                } => (
                    JobState::Done,
                    Ok(CodeOutcome::Ambiguous { count, truncated }),
                ),
                RecoveryOutcome::Inconsistent => (JobState::Done, Ok(CodeOutcome::Inconsistent)),
                RecoveryOutcome::BudgetExhausted { reason, .. } => match reason {
                    BudgetReason::Cancelled => (JobState::Cancelled, Err(JobError::Cancelled)),
                    BudgetReason::Deadline => (JobState::Failed, Err(JobError::DeadlineExpired)),
                    reason => (JobState::Done, Ok(CodeOutcome::BudgetExhausted { reason })),
                },
            },
            Err(e) => (JobState::Failed, Err(JobError::Recovery(e))),
        };
        let job_result: JobResult = job_result.map(|outcome| {
            // Durable record + cache for trace outcomes determined by the
            // evidence. BudgetExhausted is an artifact of this service's
            // budgets, not of the profile — caching it would pin the
            // artifact forever (even across a reconfigured restart), so it
            // is returned but never recorded.
            let evidence_determined = !matches!(outcome, CodeOutcome::BudgetExhausted { .. });
            if let Some(fp) = fingerprint {
                if evidence_determined {
                    if let Err(e) = state.registry.record(fp, &tenant, &outcome) {
                        // Disk trouble degrades durability, not service.
                        eprintln!("beer_service: registry append failed: {e}");
                    }
                    // The worker path drives the storage lifecycle:
                    // record() seals the active log at the size
                    // threshold, and once the tail reaches
                    // `compact_after` this drains it into a snapshot —
                    // minor generations under `compact_budget`, one
                    // major merge at it. Failures are counted
                    // (`registry_compaction_failures`), never reset.
                    let compactions_before = state.registry.compactions();
                    if let Err(e) = state
                        .registry
                        .maybe_roll(inner.compact_after, inner.compact_budget)
                    {
                        eprintln!("beer_service: registry compaction failed: {e}");
                    }
                    let compacted = state.registry.compactions() - compactions_before;
                    if compacted > 0 {
                        obs.flight(
                            "compaction",
                            None,
                            format!(
                                "registry rolled ({} segments live)",
                                state.registry.segment_count()
                            ),
                        );
                    }
                }
            }
            JobOutput {
                outcome,
                from_cache: false,
                coalesced_into: None,
            }
        });
        inner.finalize(&mut state, id, job_state, job_result);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobRequest;
    use beer_core::collect::CollectionPlan;
    use beer_core::engine::AnalyticBackend;
    use beer_core::pattern::PatternSet;
    use beer_ecc::hamming;

    fn sample_trace() -> ProfileTrace {
        let code = hamming::shortened(8);
        let patterns = PatternSet::OneTwo.patterns(8);
        let mut backend = AnalyticBackend::new(code);
        ProfileTrace::record(&mut backend, &patterns, &CollectionPlan::quick())
    }

    #[test]
    fn unusable_configurations_are_typed_start_errors() {
        for (config, expected) in [
            (
                ServiceConfig::new().with_workers(0),
                ConfigError::ZeroWorkers,
            ),
            (
                ServiceConfig::new().with_queue_capacity(0),
                ConfigError::ZeroQueueCapacity,
            ),
            (
                ServiceConfig::new().with_tenants(Vec::<(String, String)>::new()),
                ConfigError::EmptyTenantSet,
            ),
        ] {
            match RecoveryService::start(config) {
                Err(StartError::Config(got)) => assert_eq!(got, expected),
                Err(other) => panic!("expected {expected:?}, got {other:?}"),
                Ok(_) => panic!("expected {expected:?}, got a running service"),
            }
        }
        // The typed error maps to InvalidInput for io::Result callers.
        let err: io::Error = StartError::Config(ConfigError::ZeroWorkers).into();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn closed_tenant_set_gates_submission_and_authentication() {
        let service = RecoveryService::start(
            ServiceConfig::new()
                .with_workers(1)
                .with_tenants([("alice", "secret-a"), ("bob", "secret-b")]),
        )
        .expect("valid closed config");
        assert!(service.authenticate("alice", "secret-a"));
        assert!(!service.authenticate("alice", "secret-b"));
        assert!(!service.authenticate("alice", "secret-a-longer"));
        assert!(!service.authenticate("mallory", "secret-a"));
        assert!(!service.authenticate("", ""));

        let err = service
            .submit(JobRequest::trace("mallory", sample_trace()))
            .expect_err("unknown tenant must be rejected");
        assert!(matches!(err, Rejected::InvalidTenant { .. }));
        let id = service
            .submit(JobRequest::trace("alice", sample_trace()))
            .expect("known tenant admitted");
        assert!(service.wait(id).is_ok());
        assert_eq!(service.stats().rejected.invalid_tenant, 1);
    }

    #[test]
    fn open_service_authenticates_any_well_formed_tenant() {
        let service =
            RecoveryService::start(ServiceConfig::new().with_workers(1)).expect("open config");
        assert!(service.authenticate("anyone", "any-token"));
        assert!(!service.authenticate("bad tenant", "t"));
    }

    #[test]
    fn rejections_are_counted_by_kind() {
        let service = RecoveryService::start(
            ServiceConfig::new()
                .with_workers(1)
                .with_max_patterns(2)
                .with_queue_capacity(1),
        )
        .expect("start");
        let _ = service
            .submit(JobRequest::trace("t", sample_trace()))
            .expect_err("over the pattern ceiling");
        let _ = service
            .submit(JobRequest::trace("bad tenant", sample_trace()))
            .expect_err("whitespace tenant");
        let stats = service.stats();
        assert_eq!(stats.rejected.too_large, 1);
        assert_eq!(stats.rejected.invalid_tenant, 1);
        assert_eq!(stats.rejected.total(), 2);
    }
}
