//! The registry manifest: the single authoritative list of live segments.
//!
//! A registry directory contains text log segments (`seg-NNNNNN.log`),
//! binary snapshot segments (`snap-NNNNNN.snap`), and one `MANIFEST`.
//! Every structural change — sealing the active log, compaction — writes
//! a complete new manifest through a temp file + atomic rename, and only
//! then deletes obsolete segments. A crash at any point therefore leaves
//! either the old manifest (new files are unreferenced orphans, garbage-
//! collected at the next open) or the new one (old files are orphans) —
//! never a state that references missing data.
//!
//! `records` is the number of distinct fingerprints held by the listed
//! *snapshots*; log segments re-count their novel fingerprints during
//! replay, so the total is exact without reading any snapshot body.

use std::io::{self, Write as _};
use std::path::Path;

pub const MANIFEST_HEADER: &str = "beer-manifest v1";
pub const MANIFEST_NAME: &str = "MANIFEST";

/// Parsed manifest contents. `snaps` and `logs` are `(number, filename)`
/// in age order, oldest first; the last log is the active append segment.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Manifest {
    pub records: u64,
    pub snaps: Vec<(u64, String)>,
    pub logs: Vec<(u64, String)>,
}

impl Manifest {
    /// Reads `dir/MANIFEST`; `Ok(None)` if it does not exist. A manifest
    /// is written atomically, so a malformed one is real corruption and
    /// an error — unlike torn log tails, which are expected and skipped.
    pub fn read(dir: &Path) -> io::Result<Option<Manifest>> {
        let text = match std::fs::read_to_string(dir.join(MANIFEST_NAME)) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        let mut lines = text.lines();
        if lines.next() != Some(MANIFEST_HEADER) {
            return Err(bad("unknown manifest header"));
        }
        let mut manifest = Manifest::default();
        let mut saw_records = false;
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            let mut fields = line.split_whitespace();
            match fields.next() {
                Some("records") => {
                    manifest.records = fields
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| bad("records line"))?;
                    saw_records = true;
                }
                Some("snap") => manifest.snaps.push(entry(&mut fields, "snap line")?),
                Some("log") => manifest.logs.push(entry(&mut fields, "log line")?),
                _ => return Err(bad("unknown manifest line")),
            }
        }
        if !saw_records || manifest.logs.is_empty() {
            return Err(bad("missing records count or active log"));
        }
        Ok(Some(manifest))
    }

    /// Writes `dir/MANIFEST` atomically (temp + rename).
    pub fn write(&self, dir: &Path) -> io::Result<()> {
        let mut text = format!("{MANIFEST_HEADER}\nrecords {}\n", self.records);
        for (generation, name) in &self.snaps {
            text.push_str(&format!("snap {generation} {name}\n"));
        }
        for (seq, name) in &self.logs {
            text.push_str(&format!("log {seq} {name}\n"));
        }
        let tmp = dir.join(format!("{MANIFEST_NAME}.tmp"));
        {
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(text.as_bytes())?;
            file.flush()?;
        }
        std::fs::rename(&tmp, dir.join(MANIFEST_NAME))
    }

    /// True if `name` is referenced by this manifest.
    pub fn references(&self, name: &str) -> bool {
        self.snaps.iter().any(|(_, n)| n == name) || self.logs.iter().any(|(_, n)| n == name)
    }
}

fn entry<'a>(fields: &mut impl Iterator<Item = &'a str>, what: &str) -> io::Result<(u64, String)> {
    let num = fields
        .next()
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| bad(what))?;
    let name = fields.next().ok_or_else(|| bad(what))?.to_string();
    Ok((num, name))
}

fn bad(what: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("corrupt manifest: {what}"),
    )
}

/// `seg-NNNNNN.log` for a log sequence number.
pub fn log_name(seq: u64) -> String {
    format!("seg-{seq:06}.log")
}

/// `snap-NNNNNN.snap` for a snapshot generation.
pub fn snap_name(generation: u64) -> String {
    format!("snap-{generation:06}.snap")
}
