//! The `beer-registry v1` plain-text line codec.
//!
//! Log segments (and the legacy single-file registry this format began
//! as) are sequences of these lines. The codec is torn-line tolerant by
//! construction: every parser returns `Option`, and a line that fails to
//! parse is skipped and counted by the replayer, never propagated — a
//! crash mid-append must cost at most the line it tore.

use beer_core::recovery::BudgetReason;
use beer_core::trace::Fingerprint;
use beer_ecc::{equivalence, LinearCode};
use beer_gf2::{BitMatrix, BitVec};

/// First line of every log segment (and of the legacy v1 registry file).
pub const REGISTRY_HEADER: &str = "beer-registry v1";

/// A parsed log line, before it is applied to the in-memory state.
pub enum LogLine {
    /// A `code` line: a canonical code keyed by its canonical hash.
    Code {
        /// [`equivalence::canonical_hash`] of the code (validated).
        hash: u64,
        /// The canonical representative.
        code: LinearCode,
    },
    /// A `job` line: one completed record.
    Job {
        /// The solved profile's fingerprint.
        fingerprint: Fingerprint,
        /// The submitting tenant.
        tenant: String,
        /// The outcome, with `Unique` still a `(hash, bucket idx)`
        /// reference into the code index.
        outcome: LineOutcome,
    },
}

/// A job line's outcome field. `Unique` stays a reference — resolving it
/// against the code index (and validating the bucket exists) is the
/// replayer's job. This is also the in-memory tail and on-disk snapshot
/// representation: storing references instead of code clones keeps a
/// million records to tens of bytes each.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LineOutcome {
    /// `unique <hash> <idx>`.
    Unique {
        /// Canonical hash of the recovered code.
        hash: u64,
        /// Bucket index disambiguating 64-bit hash collisions.
        idx: u32,
    },
    /// `ambiguous <count> <0|1>`.
    Ambiguous {
        /// Witnesses found.
        count: usize,
        /// True if enumeration hit the solver's cap.
        truncated: bool,
    },
    /// `inconsistent`.
    Inconsistent,
    /// `exhausted <reason>`.
    Exhausted {
        /// Which budget fired.
        reason: BudgetReason,
    },
}

/// Parses one body line. `None` marks a torn or corrupt line (the caller
/// counts and skips it).
pub fn parse_line(line: &str) -> Option<LogLine> {
    let mut fields = line.split_whitespace();
    match fields.next()? {
        "code" => {
            let hash = u64::from_str_radix(fields.next()?, 16).ok()?;
            let p: usize = fields.next()?.parse().ok()?;
            let k: usize = fields.next()?.parse().ok()?;
            let rows: Vec<BitVec> = (0..p)
                .map(|_| fields.next().and_then(|hex| row_from_hex(hex, k)))
                .collect::<Option<_>>()?;
            let code = LinearCode::from_parity_submatrix(BitMatrix::from_rows(&rows)).ok()?;
            // The stored form must already be canonical and must hash to
            // its own key — otherwise the line is corrupt.
            if equivalence::canonical_hash(&code) != hash {
                return None;
            }
            Some(LogLine::Code { hash, code })
        }
        "job" => {
            let fingerprint: Fingerprint = fields.next()?.parse().ok()?;
            let tenant = fields.next()?.to_string();
            let outcome = match fields.next()? {
                "unique" => LineOutcome::Unique {
                    hash: u64::from_str_radix(fields.next()?, 16).ok()?,
                    idx: fields.next()?.parse().ok()?,
                },
                "ambiguous" => LineOutcome::Ambiguous {
                    count: fields.next()?.parse().ok()?,
                    truncated: fields.next()? == "1",
                },
                "inconsistent" => LineOutcome::Inconsistent,
                "exhausted" => LineOutcome::Exhausted {
                    reason: reason_from_str(fields.next()?)?,
                },
                _ => return None,
            };
            Some(LogLine::Job {
                fingerprint,
                tenant,
                outcome,
            })
        }
        _ => None,
    }
}

/// Renders a `code` line.
pub fn code_line(hash: u64, code: &LinearCode) -> String {
    use std::fmt::Write as _;
    let p = code.parity_submatrix();
    let mut line = format!("code {hash:016x} {} {}", p.rows(), p.cols());
    for row in p.iter_rows() {
        let _ = write!(line, " {}", row_to_hex(row));
    }
    line.push('\n');
    line
}

/// Renders a `job` line from a reference-form outcome.
pub fn job_line(fingerprint: Fingerprint, tenant: &str, outcome: &LineOutcome) -> String {
    match outcome {
        LineOutcome::Unique { hash, idx } => {
            format!("job {fingerprint} {tenant} unique {hash:016x} {idx}\n")
        }
        LineOutcome::Ambiguous { count, truncated } => {
            format!(
                "job {fingerprint} {tenant} ambiguous {count} {}\n",
                u8::from(*truncated)
            )
        }
        LineOutcome::Inconsistent => format!("job {fingerprint} {tenant} inconsistent\n"),
        LineOutcome::Exhausted { reason } => {
            format!(
                "job {fingerprint} {tenant} exhausted {}\n",
                reason_to_str(*reason)
            )
        }
    }
}

/// Bits → hex nibbles, bit `j` at weight `1 << (j % 4)` of nibble `j / 4`.
pub fn row_to_hex(row: &BitVec) -> String {
    let mut s = String::with_capacity(row.len().div_ceil(4));
    for nib in 0..row.len().div_ceil(4) {
        let mut v = 0u32;
        for b in 0..4 {
            let i = nib * 4 + b;
            if i < row.len() && row.get(i) {
                v |= 1 << b;
            }
        }
        s.push(char::from_digit(v, 16).expect("nibble"));
    }
    s
}

/// Hex nibbles → bits; `None` if the width disagrees with `k` or a
/// padding bit is set.
pub fn row_from_hex(s: &str, k: usize) -> Option<BitVec> {
    if s.len() != k.div_ceil(4) {
        return None;
    }
    let mut row = BitVec::zeros(k);
    for (nib, c) in s.chars().enumerate() {
        let v = c.to_digit(16)?;
        for b in 0..4 {
            let i = nib * 4 + b;
            if v & (1 << b) != 0 {
                if i >= k {
                    return None; // padding bits must be zero
                }
                row.set(i, true);
            }
        }
    }
    Some(row)
}

pub fn reason_to_str(reason: BudgetReason) -> &'static str {
    match reason {
        BudgetReason::Deadline => "deadline",
        BudgetReason::Cancelled => "cancelled",
        BudgetReason::MaxFacts => "maxfacts",
        BudgetReason::MaxPatterns => "maxpatterns",
    }
}

pub fn reason_from_str(s: &str) -> Option<BudgetReason> {
    Some(match s {
        "deadline" => BudgetReason::Deadline,
        "cancelled" => BudgetReason::Cancelled,
        "maxfacts" => BudgetReason::MaxFacts,
        "maxpatterns" => BudgetReason::MaxPatterns,
        _ => return None,
    })
}

/// Outcome discriminants shared with the binary snapshot record layout.
pub const OUTCOME_UNIQUE: u8 = 0;
pub const OUTCOME_AMBIGUOUS: u8 = 1;
pub const OUTCOME_INCONSISTENT: u8 = 2;
pub const OUTCOME_EXHAUSTED: u8 = 3;

/// Numeric form of a [`BudgetReason`] for the binary snapshot layout.
pub fn reason_to_u8(reason: BudgetReason) -> u8 {
    match reason {
        BudgetReason::Deadline => 0,
        BudgetReason::Cancelled => 1,
        BudgetReason::MaxFacts => 2,
        BudgetReason::MaxPatterns => 3,
    }
}

pub fn reason_from_u8(v: u8) -> Option<BudgetReason> {
    Some(match v {
        0 => BudgetReason::Deadline,
        1 => BudgetReason::Cancelled,
        2 => BudgetReason::MaxFacts,
        3 => BudgetReason::MaxPatterns,
        _ => return None,
    })
}
