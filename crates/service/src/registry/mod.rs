//! The persistent code registry: segmented LSM-lite storage for
//! completed job records and recovered canonical codes.
//!
//! The BEER paper's key economic observation is that manufacturers reuse
//! a small set of on-die ECC functions across many chips — so a recovered
//! function is a durable, fleet-scale artifact. That makes the registry
//! the long-lived heart of the service, and a single append-only file
//! that replays its whole history at startup stops scaling long before
//! "millions of records". The registry is therefore a directory:
//!
//! ```text
//! registry/
//!   MANIFEST          authoritative list of live segments (+ record count)
//!   snap-000003.snap  sorted binary snapshot segments (older generations)
//!   snap-000007.snap
//!   seg-000012.log    text log segments; the last one is the active
//!   seg-000013.log    append target, earlier ones are sealed
//! ```
//!
//! * **Appends** go to the active text log (same torn-line-tolerant
//!   `beer-registry v1` line format as ever), which **seals** at a size
//!   threshold: a new active segment is created and the manifest swapped.
//! * **Compaction** drains the in-memory tail into a snapshot segment:
//!   a *minor* compaction writes just the tail as a new generation (an
//!   O(tail) pause), and once generations reach the compaction budget a
//!   *major* compaction k-way-merges every snapshot plus the tail into
//!   one (newest record wins per fingerprint). Segments become visible
//!   only via temp-file + rename and a manifest swap, then obsolete files
//!   are deleted — a crash at any step leaves orphans for the next open
//!   to garbage-collect, never a manifest naming missing data.
//! * **Startup** is O(snapshot indexes + log tail): the manifest names
//!   the segments, snapshot indexes (sparse fingerprint index + bloom
//!   filters) and the newest snapshot's code section are loaded, and only
//!   the log segments are replayed line-by-line through a `BufReader`.
//! * **Lookups** by fingerprint check the tail map, then probe snapshots
//!   newest-first — bloom filter, sparse-index binary search, one bounded
//!   block read. Codes are few (the paper's point), so the code index and
//!   sorted `(n, k)` dims runs stay in memory; dims/hash queries support
//!   stable cursor pagination over those runs.
//! * **Legacy**: `Registry::open` on a v1 single-file log transparently
//!   migrates it into a registry directory (streaming — the old file is
//!   never slurped into one `String`).

mod format;
mod manifest;
mod segment;

use crate::job::CodeOutcome;
use beer_core::trace::Fingerprint;
use beer_ecc::{equivalence, LinearCode};
pub use format::REGISTRY_HEADER;
use format::{LineOutcome, LogLine};
use manifest::{log_name, snap_name, Manifest};
use segment::{SnapRecord, Snapshot};
use std::collections::{BTreeMap, HashMap};
use std::fs::{File, OpenOptions};
use std::io::{self, BufRead, BufReader, Write as _};
use std::path::{Path, PathBuf};

/// Default size at which the active log segment seals (bytes).
pub const DEFAULT_SEAL_BYTES: u64 = 8 * 1024 * 1024;

/// Evidence fingerprints retained per code entry. Capping keeps a code
/// entry bounded (it must also fit a wire frame); the paper's evidence
/// argument needs "many chips", not an unbounded roster.
pub const EVIDENCE_CAP: usize = 1024;

/// A completed job's durable record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobRecord {
    /// Fingerprint of the normalized profile the job solved.
    pub fingerprint: Fingerprint,
    /// The submitting tenant.
    pub tenant: String,
    /// The outcome summary (`Unique` resolved to the canonical code).
    pub outcome: CodeOutcome,
}

/// One recovered ECC function (equivalence class), stored once no matter
/// how many profiles recovered it.
#[derive(Clone, Debug)]
pub struct CodeEntry {
    /// [`equivalence::canonical_hash`] of the code.
    pub hash: u64,
    /// The canonical representative.
    pub code: LinearCode,
    /// Profile fingerprints that recovered this function (first
    /// [`EVIDENCE_CAP`] seen) — the "same ECC function across many
    /// chips" evidence.
    pub fingerprints: Vec<Fingerprint>,
}

/// One not-yet-compacted record, held in memory. `Unique` is a
/// `(hash, bucket idx)` reference into the code index, not a code clone.
struct TailRecord {
    tenant: String,
    outcome: LineOutcome,
}

/// Where a simulated crash interrupts a compaction (test failpoints; the
/// steps are real, the early return stands in for the process dying).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(dead_code)]
enum CrashPoint {
    /// After the snapshot segment is written and renamed into place.
    SnapshotWritten,
    /// After the fresh active log segment is created.
    NewLogLive,
    /// After the manifest swap, before obsolete segments are deleted.
    ManifestSwapped,
}

/// The registry (see the module docs).
pub struct Registry {
    /// Registry directory; `None` for an in-memory registry.
    path: Option<PathBuf>,
    seal_bytes: u64,
    active_seq: u64,
    active_file: Option<File>,
    active_bytes: u64,
    /// Sealed log segments, oldest first (their records live in `tail`).
    logs: Vec<(u64, String)>,
    /// Snapshot segments, oldest first.
    snapshots: Vec<Snapshot>,
    /// Distinct fingerprints held by `snapshots` (the manifest's count).
    snap_records: u64,
    /// Records not yet compacted into a snapshot, keyed by fingerprint.
    tail: HashMap<Fingerprint, TailRecord>,
    /// canonical hash → entries; the bucket confirms with
    /// [`equivalence::equivalent`], so a hash collision cannot conflate
    /// two functions. Buckets are append-only: a `(hash, idx)` reference
    /// stays valid across seals, compactions, and reopens.
    codes: HashMap<u64, Vec<CodeEntry>>,
    /// Sorted `(n, k)` → `(hash, idx)` runs: the dims index, and the
    /// stable order behind cursor pagination.
    dims: BTreeMap<(usize, usize), Vec<(u64, u32)>>,
    code_count: usize,
    record_count: usize,
    appended: usize,
    skipped_lines: usize,
    next_seq: u64,
    next_gen: u64,
    compactions: u64,
    compaction_failures: u64,
}

impl Registry {
    /// A registry with no backing storage: state lives for the process.
    pub fn in_memory() -> Self {
        Registry {
            path: None,
            seal_bytes: DEFAULT_SEAL_BYTES,
            active_seq: 0,
            active_file: None,
            active_bytes: 0,
            logs: Vec::new(),
            snapshots: Vec::new(),
            snap_records: 0,
            tail: HashMap::new(),
            codes: HashMap::new(),
            dims: BTreeMap::new(),
            code_count: 0,
            record_count: 0,
            appended: 0,
            skipped_lines: 0,
            next_seq: 1,
            next_gen: 1,
            compactions: 0,
            compaction_failures: 0,
        }
    }

    /// Opens (creating if absent) a registry directory at `path`,
    /// loading snapshot indexes and replaying only the log tail. A
    /// legacy v1 single-file log at `path` is migrated into directory
    /// form first, transparently.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; refuses a legacy file whose header names
    /// an unknown format version, a corrupt manifest, or a corrupt
    /// snapshot segment (all written atomically, so damage there is real
    /// corruption). Corrupt log *lines* — e.g. a torn tail from a crash
    /// mid-append — are skipped and counted ([`Registry::skipped_lines`]),
    /// not errors.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Registry> {
        let path = path.as_ref().to_path_buf();
        let migrate = sibling(&path, ".migrate");
        let old = sibling(&path, ".v1-old");
        // Crash window: migration built and the old file renamed away,
        // but the directory not yet moved into place — finish the move.
        if !path.exists() && migrate.is_dir() && old.is_file() {
            std::fs::rename(&migrate, &path)?;
        }
        if path.is_file() {
            // A half-built migration dir from an earlier crash is stale
            // (the source file is still here): rebuild from scratch.
            let _ = std::fs::remove_dir_all(&migrate);
            migrate_v1(&path, &migrate, &old)?;
        }
        let _ = std::fs::remove_file(&old);
        let _ = std::fs::remove_dir_all(&migrate);

        let mut registry = Registry::in_memory();
        registry.path = Some(path.clone());
        let manifest = match Manifest::read(&path)? {
            Some(m) => m,
            None => {
                // Fresh registry (or a crash before the very first
                // manifest write, in which case no record was ever
                // acknowledged): initialize in place.
                std::fs::create_dir_all(&path)?;
                std::fs::write(path.join(log_name(0)), format!("{REGISTRY_HEADER}\n"))?;
                let m = Manifest {
                    records: 0,
                    snaps: Vec::new(),
                    logs: vec![(0, log_name(0))],
                };
                m.write(&path)?;
                m
            }
        };

        // Garbage-collect orphans: segments a crashed seal/compaction
        // wrote but never published, or published-over leftovers it never
        // got to delete. The manifest is the only truth.
        for dir_entry in std::fs::read_dir(&path)? {
            let dir_entry = dir_entry?;
            let name = dir_entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name == manifest::MANIFEST_NAME {
                continue;
            }
            let segment_like = name.starts_with("seg-") || name.starts_with("snap-");
            if name.ends_with(".tmp") || (segment_like && !manifest.references(name)) {
                let _ = std::fs::remove_file(dir_entry.path());
            }
        }

        registry.snap_records = manifest.records;
        registry.record_count = manifest.records as usize;
        for (generation, name) in &manifest.snaps {
            registry
                .snapshots
                .push(Snapshot::open(path.join(name), *generation)?);
            registry.next_gen = registry.next_gen.max(generation + 1);
        }
        // Every snapshot stores the full code state (codes are few), so
        // the newest one alone seeds the in-memory code and dims indexes.
        if let Some(newest) = registry.snapshots.last() {
            for (hash, idx, code, fingerprints) in newest.load_codes()? {
                let bucket = registry.codes.entry(hash).or_default();
                if bucket.len() != idx as usize {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "corrupt snapshot: code bucket indexes out of order",
                    ));
                }
                bucket.push(CodeEntry {
                    hash,
                    code,
                    fingerprints,
                });
                registry.code_count += 1;
            }
            for (dims_key, run) in newest.load_dims()? {
                registry.dims.insert(dims_key, run);
            }
        }

        let (&(active_seq, ref active_name), sealed) =
            manifest.logs.split_last().expect("manifest has a log");
        for (seq, name) in sealed {
            registry.logs.push((*seq, name.clone()));
            registry.replay_log(&path.join(name))?;
            registry.next_seq = registry.next_seq.max(seq + 1);
        }
        let active_path = path.join(active_name);
        registry.replay_log(&active_path)?;
        registry.active_seq = active_seq;
        registry.next_seq = registry.next_seq.max(active_seq + 1);
        registry.active_bytes = std::fs::metadata(&active_path)?.len();
        registry.active_file = Some(OpenOptions::new().append(true).open(&active_path)?);
        Ok(registry)
    }

    /// Streams one log segment through a `BufReader`, line by line.
    fn replay_log(&mut self, path: &Path) -> io::Result<()> {
        let mut reader = BufReader::new(File::open(path)?);
        let mut first = String::new();
        reader.read_line(&mut first)?;
        let first = first.trim_end();
        if !(first.is_empty() || first == REGISTRY_HEADER) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unknown registry header {first:?} (expected {REGISTRY_HEADER:?})"),
            ));
        }
        for line in reader.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            match format::parse_line(&line) {
                Some(LogLine::Code { hash, code }) => {
                    // parse_line validated hash == canonical_hash(code),
                    // so replay skips recomputing it.
                    self.insert_code_hashed(hash, code);
                }
                Some(LogLine::Job {
                    fingerprint,
                    tenant,
                    outcome,
                }) => {
                    if !self.apply_job(fingerprint, tenant, outcome)? {
                        self.skipped_lines += 1;
                    }
                }
                None => self.skipped_lines += 1,
            }
        }
        Ok(())
    }

    /// Applies a replayed job line to the tail. `Ok(false)` marks a
    /// dangling code reference (treated like a torn line).
    fn apply_job(
        &mut self,
        fingerprint: Fingerprint,
        tenant: String,
        outcome: LineOutcome,
    ) -> io::Result<bool> {
        if let LineOutcome::Unique { hash, idx } = &outcome {
            match self
                .codes
                .get_mut(hash)
                .and_then(|bucket| bucket.get_mut(*idx as usize))
            {
                Some(entry) => push_evidence(entry, fingerprint),
                None => return Ok(false),
            }
        }
        self.count_if_novel(fingerprint)?;
        self.tail
            .insert(fingerprint, TailRecord { tenant, outcome });
        Ok(true)
    }

    /// Bumps `record_count` unless `fingerprint` is already stored (in
    /// the tail, or — bloom-gated probe — in some snapshot).
    fn count_if_novel(&mut self, fingerprint: Fingerprint) -> io::Result<()> {
        if self.tail.contains_key(&fingerprint) {
            return Ok(());
        }
        for snap in self.snapshots.iter().rev() {
            if snap.maybe_contains(fingerprint) && snap.probe(fingerprint)?.is_some() {
                return Ok(());
            }
        }
        self.record_count += 1;
        Ok(())
    }

    /// Inserts a canonical code into the in-memory index if absent;
    /// returns `(was_new, bucket index)` and keeps the dims run sorted.
    fn insert_code(&mut self, code: LinearCode) -> (bool, u32) {
        let hash = equivalence::canonical_hash(&code);
        self.insert_code_hashed(hash, code)
    }

    /// [`Registry::insert_code`] with the canonical hash already known.
    fn insert_code_hashed(&mut self, hash: u64, code: LinearCode) -> (bool, u32) {
        let bucket = self.codes.entry(hash).or_default();
        if let Some(idx) = bucket
            .iter()
            .position(|e| equivalence::equivalent(&e.code, &code))
        {
            return (false, idx as u32);
        }
        let idx = bucket.len() as u32;
        let dims_key = (code.n(), code.k());
        bucket.push(CodeEntry {
            hash,
            code,
            fingerprints: Vec::new(),
        });
        self.code_count += 1;
        let run = self.dims.entry(dims_key).or_default();
        let pos = run.partition_point(|&e| e < (hash, idx));
        run.insert(pos, (hash, idx));
        (true, idx)
    }

    /// Records a completed job, appending to the active log (sealing it
    /// first if it crossed the seal threshold).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the append or seal (in-memory state is
    /// updated regardless, so a full disk degrades durability, not
    /// service).
    pub fn record(
        &mut self,
        fingerprint: Fingerprint,
        tenant: &str,
        outcome: &CodeOutcome,
    ) -> io::Result<()> {
        let mut log = String::new();
        let stored = match outcome {
            CodeOutcome::Unique(code) => {
                let canonical = equivalence::canonicalize(code);
                let hash = equivalence::canonical_hash(&canonical);
                let (was_new, idx) = self.insert_code(canonical);
                let entry = &mut self.codes.get_mut(&hash).expect("just inserted")[idx as usize];
                push_evidence(entry, fingerprint);
                if was_new {
                    log.push_str(&format::code_line(hash, &entry.code));
                }
                LineOutcome::Unique { hash, idx }
            }
            CodeOutcome::Ambiguous { count, truncated } => LineOutcome::Ambiguous {
                count: *count,
                truncated: *truncated,
            },
            CodeOutcome::Inconsistent => LineOutcome::Inconsistent,
            CodeOutcome::BudgetExhausted { reason } => LineOutcome::Exhausted { reason: *reason },
        };
        log.push_str(&format::job_line(fingerprint, tenant, &stored));
        self.count_if_novel(fingerprint)?;
        self.tail.insert(
            fingerprint,
            TailRecord {
                tenant: tenant.to_string(),
                outcome: stored,
            },
        );
        self.appended += 1;
        if self.path.is_some() {
            // A registry that lost its append handle (e.g. a failed
            // compaction) re-opens it rather than silently dropping
            // durability.
            self.ensure_active_handle()?;
            let file = self.active_file.as_mut().expect("just ensured");
            file.write_all(log.as_bytes())?;
            file.flush()?;
            self.active_bytes += log.len() as u64;
            if self.active_bytes >= self.seal_bytes {
                self.seal()?;
            }
        }
        Ok(())
    }

    fn ensure_active_handle(&mut self) -> io::Result<()> {
        if self.active_file.is_some() {
            return Ok(());
        }
        let Some(dir) = &self.path else { return Ok(()) };
        let active = dir.join(log_name(self.active_seq));
        self.active_file = Some(OpenOptions::new().append(true).create(true).open(&active)?);
        self.active_bytes = std::fs::metadata(&active)?.len();
        Ok(())
    }

    /// Seals the active log: a fresh active segment is created and
    /// published in the manifest; the sealed segment stays replayable
    /// until the next compaction drains it.
    pub fn seal(&mut self) -> io::Result<()> {
        let Some(dir) = self.path.clone() else {
            return Ok(());
        };
        let new_seq = self.next_seq;
        let new_name = log_name(new_seq);
        std::fs::write(dir.join(&new_name), format!("{REGISTRY_HEADER}\n"))?;
        let mut manifest = self.manifest_view();
        manifest.logs.push((new_seq, new_name.clone()));
        if let Err(e) = manifest.write(&dir) {
            let _ = std::fs::remove_file(dir.join(&new_name));
            return Err(e);
        }
        self.logs.push((self.active_seq, log_name(self.active_seq)));
        self.active_seq = new_seq;
        self.active_file = Some(OpenOptions::new().append(true).open(dir.join(&new_name))?);
        self.active_bytes = (REGISTRY_HEADER.len() + 1) as u64;
        self.next_seq += 1;
        Ok(())
    }

    /// The manifest describing current state (before any change).
    fn manifest_view(&self) -> Manifest {
        Manifest {
            records: self.snap_records,
            snaps: self
                .snapshots
                .iter()
                .map(|s| (s.generation(), snap_name(s.generation())))
                .collect(),
            logs: {
                let mut logs = self.logs.clone();
                logs.push((self.active_seq, log_name(self.active_seq)));
                logs
            },
        }
    }

    /// Seals/compacts as thresholds demand — the worker-path driver.
    /// Once the tail reaches `compact_after` records it is drained into
    /// a snapshot: a minor compaction (new generation, O(tail) pause)
    /// while generations are under `compact_budget`, a major merge of
    /// all generations once the budget is reached.
    pub fn maybe_roll(&mut self, compact_after: usize, compact_budget: usize) -> io::Result<()> {
        if self.path.is_none() || self.tail.len() < compact_after.max(1) {
            return Ok(());
        }
        if self.snapshots.len() >= compact_budget.max(1) {
            self.compact()
        } else {
            self.compact_minor()
        }
    }

    /// Minor compaction: drains the tail into one new snapshot
    /// generation and resets the log to a single fresh active segment.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; on failure the previous state stays fully
    /// intact (and fully accounted — see
    /// [`Registry::compaction_failures`]).
    pub fn compact_minor(&mut self) -> io::Result<()> {
        let Some(dir) = self.path.clone() else {
            self.appended = 0;
            return Ok(());
        };
        self.compact_minor_inner(&dir, None)
    }

    fn compact_minor_inner(&mut self, dir: &Path, crash: Option<CrashPoint>) -> io::Result<()> {
        let generation = self.next_gen;
        let snap_path = dir.join(snap_name(generation));
        let mut sorted: Vec<(&Fingerprint, &TailRecord)> = self.tail.iter().collect();
        sorted.sort_by_key(|(fp, _)| **fp);
        let records = sorted.iter().map(|(fp, rec)| {
            Ok(SnapRecord {
                fingerprint: **fp,
                tenant: rec.tenant.clone(),
                outcome: rec.outcome.clone(),
            })
        });
        let written = segment::write_snapshot(
            &snap_path,
            &self.codes,
            &self.dims,
            records,
            self.tail.len(),
        );
        if let Err(e) = written {
            self.compaction_failures += 1;
            let _ = std::fs::remove_file(&snap_path);
            return Err(e);
        }
        if crash == Some(CrashPoint::SnapshotWritten) {
            return Ok(());
        }
        let new_snaps = {
            let mut snaps = self.manifest_view().snaps;
            snaps.push((generation, snap_name(generation)));
            snaps
        };
        match self.publish(dir, new_snaps, self.record_count as u64, crash)? {
            Published::Crashed => Ok(()),
            Published::Committed { new_seq, obsolete } => {
                self.snapshots
                    .push(match Snapshot::open(snap_path, generation) {
                        Ok(snap) => snap,
                        Err(e) => {
                            // The manifest already names this snapshot; if we
                            // cannot read back what we just wrote, the
                            // registry is genuinely broken — surface it.
                            self.compaction_failures += 1;
                            return Err(e);
                        }
                    });
                self.commit_roll(dir, new_seq, obsolete);
                Ok(())
            }
        }
    }

    /// Major compaction: k-way-merges every snapshot generation plus the
    /// tail (newest wins per fingerprint) into a single snapshot, and
    /// resets the log to one fresh active segment. This is also the
    /// public [`Registry::compact`].
    pub fn compact(&mut self) -> io::Result<()> {
        let Some(dir) = self.path.clone() else {
            self.appended = 0;
            return Ok(());
        };
        self.compact_major_inner(&dir, None)
    }

    fn compact_major_inner(&mut self, dir: &Path, crash: Option<CrashPoint>) -> io::Result<()> {
        let generation = self.next_gen;
        let snap_path = dir.join(snap_name(generation));
        let written = (|| {
            let mut sources: Vec<MergeSource> = Vec::new();
            for snap in &self.snapshots {
                sources.push(MergeSource::new(Box::new(snap.iter_records()?)));
            }
            let mut sorted: Vec<(&Fingerprint, &TailRecord)> = self.tail.iter().collect();
            sorted.sort_by_key(|(fp, _)| **fp);
            let tail_records: Vec<io::Result<SnapRecord>> = sorted
                .into_iter()
                .map(|(fp, rec)| {
                    Ok(SnapRecord {
                        fingerprint: *fp,
                        tenant: rec.tenant.clone(),
                        outcome: rec.outcome.clone(),
                    })
                })
                .collect();
            sources.push(MergeSource::new(Box::new(tail_records.into_iter())));
            let hint = self
                .snapshots
                .iter()
                .map(|s| s.record_count() as usize)
                .sum::<usize>()
                + self.tail.len();
            let merge = Merge::new(sources)?;
            segment::write_snapshot(&snap_path, &self.codes, &self.dims, merge, hint)
        })();
        let written = match written {
            Ok(n) => n,
            Err(e) => {
                self.compaction_failures += 1;
                let _ = std::fs::remove_file(&snap_path);
                return Err(e);
            }
        };
        if crash == Some(CrashPoint::SnapshotWritten) {
            return Ok(());
        }
        let new_snaps = vec![(generation, snap_name(generation))];
        match self.publish(dir, new_snaps, written, crash)? {
            Published::Crashed => Ok(()),
            Published::Committed { new_seq, obsolete } => {
                let mut obsolete = obsolete;
                for snap in &self.snapshots {
                    obsolete.push(snap_name(snap.generation()));
                }
                self.snapshots = vec![match Snapshot::open(snap_path, generation) {
                    Ok(snap) => snap,
                    Err(e) => {
                        self.compaction_failures += 1;
                        return Err(e);
                    }
                }];
                // The merge deduplicated across generations, so its count
                // is authoritative.
                self.record_count = written as usize;
                self.commit_roll(dir, new_seq, obsolete);
                Ok(())
            }
        }
    }

    /// Shared compaction tail: create the fresh active log and swap the
    /// manifest. Failure before the manifest rename leaves prior state
    /// intact; the orphan files are removed best-effort here and by the
    /// next open's GC.
    fn publish(
        &mut self,
        dir: &Path,
        snaps: Vec<(u64, String)>,
        records: u64,
        crash: Option<CrashPoint>,
    ) -> io::Result<Published> {
        let snap_files: Vec<String> = snaps.iter().map(|(_, name)| name.clone()).collect();
        let new_seq = self.next_seq;
        let new_log = log_name(new_seq);
        if let Err(e) = std::fs::write(dir.join(&new_log), format!("{REGISTRY_HEADER}\n")) {
            self.compaction_failures += 1;
            for name in &snap_files {
                if !self
                    .snapshots
                    .iter()
                    .any(|s| snap_name(s.generation()) == *name)
                {
                    let _ = std::fs::remove_file(dir.join(name));
                }
            }
            return Err(e);
        }
        if crash == Some(CrashPoint::NewLogLive) {
            return Ok(Published::Crashed);
        }
        let manifest = Manifest {
            records,
            snaps,
            logs: vec![(new_seq, new_log.clone())],
        };
        if let Err(e) = manifest.write(dir) {
            self.compaction_failures += 1;
            let _ = std::fs::remove_file(dir.join(&new_log));
            for name in &snap_files {
                if !self
                    .snapshots
                    .iter()
                    .any(|s| snap_name(s.generation()) == *name)
                {
                    let _ = std::fs::remove_file(dir.join(name));
                }
            }
            return Err(e);
        }
        if crash == Some(CrashPoint::ManifestSwapped) {
            return Ok(Published::Crashed);
        }
        let mut obsolete: Vec<String> = self.logs.drain(..).map(|(_, name)| name).collect();
        obsolete.push(log_name(self.active_seq));
        Ok(Published::Committed { new_seq, obsolete })
    }

    /// Final in-memory commit after a successful manifest swap.
    fn commit_roll(&mut self, dir: &Path, new_seq: u64, obsolete: Vec<String>) {
        self.tail.clear();
        self.snap_records = self.record_count as u64;
        self.active_seq = new_seq;
        self.active_file = OpenOptions::new()
            .append(true)
            .open(dir.join(log_name(new_seq)))
            .ok();
        self.active_bytes = (REGISTRY_HEADER.len() + 1) as u64;
        self.next_seq += 1;
        self.next_gen += 1;
        self.appended = 0;
        self.compactions += 1;
        for name in obsolete {
            let _ = std::fs::remove_file(dir.join(name));
        }
    }

    /// The record for a profile fingerprint, if one completed before:
    /// tail map first, then snapshot probes newest-first (bloom-gated).
    /// A probe I/O error degrades to "not found" — a lookup miss
    /// recomputes, it never lies.
    pub fn lookup_fingerprint(&self, fingerprint: Fingerprint) -> Option<JobRecord> {
        if let Some(rec) = self.tail.get(&fingerprint) {
            return self.resolve(fingerprint, rec.tenant.clone(), &rec.outcome);
        }
        for snap in self.snapshots.iter().rev() {
            if !snap.maybe_contains(fingerprint) {
                continue;
            }
            match snap.probe(fingerprint) {
                Ok(Some(rec)) => {
                    // Superset invariant: a segment's record can only
                    // reference codes its own code section indexes.
                    if let LineOutcome::Unique { hash, .. } = &rec.outcome {
                        debug_assert!(
                            snap.maybe_contains_hash(*hash),
                            "snapshot record references a code its segment does not index"
                        );
                    }
                    return self.resolve(fingerprint, rec.tenant, &rec.outcome);
                }
                Ok(None) => continue,
                Err(_) => return None,
            }
        }
        None
    }

    /// Resolves a stored reference-form outcome into a [`JobRecord`].
    fn resolve(
        &self,
        fingerprint: Fingerprint,
        tenant: String,
        outcome: &LineOutcome,
    ) -> Option<JobRecord> {
        let outcome = match outcome {
            LineOutcome::Unique { hash, idx } => {
                CodeOutcome::Unique(self.codes.get(hash)?.get(*idx as usize)?.code.clone())
            }
            LineOutcome::Ambiguous { count, truncated } => CodeOutcome::Ambiguous {
                count: *count,
                truncated: *truncated,
            },
            LineOutcome::Inconsistent => CodeOutcome::Inconsistent,
            LineOutcome::Exhausted { reason } => CodeOutcome::BudgetExhausted { reason: *reason },
        };
        Some(JobRecord {
            fingerprint,
            tenant,
            outcome,
        })
    }

    /// The stored entry for a code equivalent to `code`, in O(1) via the
    /// canonical hash.
    pub fn lookup_code(&self, code: &LinearCode) -> Option<&CodeEntry> {
        self.codes
            .get(&equivalence::canonical_hash(code))?
            .iter()
            .find(|e| equivalence::equivalent(&e.code, code))
    }

    /// Every stored entry with the given canonical hash, in append order
    /// (more than one only on a 64-bit hash collision between
    /// inequivalent codes).
    pub fn lookup_hash(&self, hash: u64) -> &[CodeEntry] {
        self.codes.get(&hash).map_or(&[], Vec::as_slice)
    }

    /// Every stored code with codeword length `n` and dataword length
    /// `k`, in `(hash, bucket idx)` order via the sorted dims run.
    pub fn lookup_dims(&self, n: usize, k: usize) -> Vec<&CodeEntry> {
        self.dims.get(&(n, k)).map_or_else(Vec::new, |run| {
            run.iter()
                .filter_map(|&(hash, idx)| self.entry_at(hash, idx))
                .collect()
        })
    }

    /// One page of the sorted dims run, resuming strictly after the
    /// `(hash, idx)` cursor. Returns the page and the cursor to pass for
    /// the next page (`None` when the run is exhausted). The run is
    /// append-only and sorted, so a cursor stays valid while new records
    /// arrive: every entry present when iteration began is returned
    /// exactly once.
    pub fn lookup_dims_page(
        &self,
        n: usize,
        k: usize,
        after: Option<(u64, u32)>,
        limit: usize,
    ) -> (Vec<&CodeEntry>, Option<(u64, u32)>) {
        let Some(run) = self.dims.get(&(n, k)) else {
            return (Vec::new(), None);
        };
        let start = after.map_or(0, |cursor| run.partition_point(|&e| e <= cursor));
        let end = start.saturating_add(limit.max(1)).min(run.len());
        let page = run[start..end]
            .iter()
            .filter_map(|&(hash, idx)| self.entry_at(hash, idx))
            .collect();
        let next = (end < run.len()).then(|| run[end - 1]);
        (page, next)
    }

    /// One page of a canonical-hash bucket, resuming strictly after
    /// bucket index `after`. Buckets are append-only, so the cursor is
    /// stable under concurrent appends.
    pub fn lookup_hash_page(
        &self,
        hash: u64,
        after: Option<u32>,
        limit: usize,
    ) -> (Vec<&CodeEntry>, Option<u32>) {
        let bucket = self.lookup_hash(hash);
        let start = after.map_or(0, |idx| idx as usize + 1).min(bucket.len());
        let end = start.saturating_add(limit.max(1)).min(bucket.len());
        let page = bucket[start..end].iter().collect();
        let next = (end < bucket.len()).then(|| (end - 1) as u32);
        (page, next)
    }

    fn entry_at(&self, hash: u64, idx: u32) -> Option<&CodeEntry> {
        self.codes.get(&hash)?.get(idx as usize)
    }

    /// Number of stored job records (distinct fingerprints), exact
    /// across snapshots and tail.
    pub fn record_count(&self) -> usize {
        self.record_count
    }

    /// Number of distinct stored codes (equivalence classes).
    pub fn code_count(&self) -> usize {
        self.code_count
    }

    /// Records appended since the last *successful* compaction (or
    /// open). A failed compaction keeps this intact — accounting is
    /// never silently reset (see [`Registry::compaction_failures`]).
    pub fn appended_since_compact(&self) -> usize {
        self.appended
    }

    /// Corrupt lines skipped during replay.
    pub fn skipped_lines(&self) -> usize {
        self.skipped_lines
    }

    /// Records currently in the in-memory tail (not yet in a snapshot).
    pub fn tail_records(&self) -> usize {
        self.tail.len()
    }

    /// Live log segments (sealed + active).
    pub fn log_segments(&self) -> usize {
        self.logs.len() + usize::from(self.path.is_some())
    }

    /// Live snapshot generations.
    pub fn snapshot_count(&self) -> usize {
        self.snapshots.len()
    }

    /// Live segments of any kind (log + snapshot).
    pub fn segment_count(&self) -> usize {
        self.log_segments() + self.snapshot_count()
    }

    /// Successful compactions (minor + major) over this handle's life.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Failed compactions over this handle's life.
    pub fn compaction_failures(&self) -> u64 {
        self.compaction_failures
    }

    /// Sets the active-log seal threshold (bytes).
    pub fn set_seal_bytes(&mut self, bytes: u64) {
        self.seal_bytes = bytes.max(1);
    }
}

enum Published {
    Crashed,
    Committed { new_seq: u64, obsolete: Vec<String> },
}

fn push_evidence(entry: &mut CodeEntry, fingerprint: Fingerprint) {
    if entry.fingerprints.len() < EVIDENCE_CAP && !entry.fingerprints.contains(&fingerprint) {
        entry.fingerprints.push(fingerprint);
    }
}

fn sibling(path: &Path, suffix: &str) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(suffix);
    path.with_file_name(name)
}

/// Migrates a legacy v1 single-file log into directory form: the file
/// becomes `seg-000000.log` (stream-copied, never slurped) inside a
/// staging dir that is renamed into place. Every crash window is
/// recovered by [`Registry::open`].
fn migrate_v1(path: &Path, staging: &Path, old: &Path) -> io::Result<()> {
    let mut reader = BufReader::new(File::open(path)?);
    let mut first = String::new();
    reader.read_line(&mut first)?;
    let first_line = first.trim_end();
    if !(first_line.is_empty() || first_line == REGISTRY_HEADER) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unknown registry header {first_line:?} (expected {REGISTRY_HEADER:?})"),
        ));
    }
    std::fs::create_dir_all(staging)?;
    {
        let mut dst = File::create(staging.join(log_name(0)))?;
        dst.write_all(format!("{REGISTRY_HEADER}\n").as_bytes())?;
        io::copy(&mut reader, &mut dst)?;
        dst.flush()?;
    }
    Manifest {
        records: 0,
        snaps: Vec::new(),
        logs: vec![(0, log_name(0))],
    }
    .write(staging)?;
    std::fs::rename(path, old)?;
    std::fs::rename(staging, path)?;
    let _ = std::fs::remove_file(old);
    Ok(())
}

// ---- k-way merge for major compaction ------------------------------------

struct MergeSource {
    iter: Box<dyn Iterator<Item = io::Result<SnapRecord>>>,
    head: Option<SnapRecord>,
}

impl MergeSource {
    fn new(iter: Box<dyn Iterator<Item = io::Result<SnapRecord>>>) -> MergeSource {
        MergeSource { iter, head: None }
    }

    fn advance(&mut self) -> io::Result<()> {
        self.head = self.iter.next().transpose()?;
        Ok(())
    }
}

/// Streams the union of sorted sources in fingerprint order. Sources are
/// ordered oldest-first; on a duplicate fingerprint the newest source
/// (highest index — the tail is last) wins.
struct Merge {
    sources: Vec<MergeSource>,
}

impl Merge {
    fn new(mut sources: Vec<MergeSource>) -> io::Result<Merge> {
        for src in &mut sources {
            src.advance()?;
        }
        Ok(Merge { sources })
    }
}

impl Iterator for Merge {
    type Item = io::Result<SnapRecord>;

    fn next(&mut self) -> Option<io::Result<SnapRecord>> {
        let min = self
            .sources
            .iter()
            .filter_map(|s| s.head.as_ref().map(|r| r.fingerprint))
            .min()?;
        let mut winner: Option<SnapRecord> = None;
        // Every source holding `min` advances; the newest (last) copy wins.
        for src in &mut self.sources {
            if src.head.as_ref().is_some_and(|r| r.fingerprint == min) {
                winner = src.head.take();
                if let Err(e) = src.advance() {
                    return Some(Err(e));
                }
            }
        }
        winner.map(Ok)
    }
}

#[cfg(test)]
mod tests;
