//! Binary snapshot segments: sorted, indexed, immutable.
//!
//! A snapshot is the compacted form of registry history. Records are
//! stored sorted by fingerprint so a point lookup is `bloom filter →
//! sparse-index binary search → read one block → short scan`, touching a
//! bounded byte range instead of replaying anything. Codes (few — the
//! BEER economics: a handful of ECC functions across millions of chips)
//! are stored in full in every snapshot, so only the *newest* snapshot's
//! code section is ever loaded; older generations contribute records
//! only.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic "BEERSNP1" · u32 version · u32 pad · u64 record_count
//! u64 offsets: codes, dims, records, sparse, bloom_fp, bloom_hash, end
//! [codes]      u32 n · n × (hash u64, idx u32, p u32, k u32, rows, fps)
//! [dims]       u32 n · n × (n u32, k u32, len u32, len × (hash, idx))
//! [records]    sorted by fingerprint; variable-length, see put_record
//! [sparse]     u32 n · n × (fp u128, offset-into-records u64)   (every 64th)
//! [bloom_fp]   u64 bits · bytes            (fingerprints, ~10 bits/key)
//! [bloom_hash] u64 bits · bytes            (canonical hashes)
//! ```
//!
//! Snapshots become visible only via an atomic temp-file + rename and a
//! manifest swap, so a reader never sees a partial file; any parse
//! failure here is real corruption and is surfaced as an error, unlike
//! the torn-line-tolerant text logs.

use super::format::{self, LineOutcome};
use super::CodeEntry;
use beer_core::trace::Fingerprint;
use beer_ecc::LinearCode;
use beer_gf2::{BitMatrix, BitVec};
use std::collections::HashMap;
use std::fs::File;
use std::io::{self, BufReader, Read, Seek, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// One loaded code-section entry: `(hash, bucket index, code, evidence)`.
pub type CodeRow = (u64, u32, LinearCode, Vec<Fingerprint>);
/// One persisted dims run: `(n, k)` mapped to its sorted `(hash, idx)` list.
pub type DimsRun = ((usize, usize), Vec<(u64, u32)>);

const MAGIC: &[u8; 8] = b"BEERSNP1";
const VERSION: u32 = 1;
/// One sparse-index entry per this many records.
const SPARSE_EVERY: usize = 64;
/// Bloom filter density (bits per key).
const BLOOM_BITS_PER_KEY: u64 = 10;

/// One record as stored in a snapshot (and in the in-memory tail):
/// `Unique` outcomes are `(hash, bucket idx)` references into the code
/// index, never inline code clones, so a million records stay small.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnapRecord {
    pub fingerprint: Fingerprint,
    pub tenant: String,
    pub outcome: LineOutcome,
}

fn mix64(mut x: u64) -> u64 {
    // splitmix64 finalizer.
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A fixed-size two-hash bloom filter over 64-bit keys (fingerprints
/// fold their halves together first).
pub struct Bloom {
    nbits: u64,
    bits: Vec<u8>,
}

impl Bloom {
    pub fn with_capacity(keys: usize) -> Bloom {
        let nbits = ((keys as u64).max(8) * BLOOM_BITS_PER_KEY).next_multiple_of(8);
        Bloom {
            nbits,
            bits: vec![0; (nbits / 8) as usize],
        }
    }

    fn slots(&self, key: u64) -> (usize, u8, usize, u8) {
        let h1 = mix64(key) % self.nbits;
        let h2 = mix64(key ^ 0xa076_1d64_78bd_642f) % self.nbits;
        (
            (h1 / 8) as usize,
            1 << (h1 % 8),
            (h2 / 8) as usize,
            1 << (h2 % 8),
        )
    }

    pub fn insert(&mut self, key: u64) {
        let (b1, m1, b2, m2) = self.slots(key);
        self.bits[b1] |= m1;
        self.bits[b2] |= m2;
    }

    pub fn contains(&self, key: u64) -> bool {
        let (b1, m1, b2, m2) = self.slots(key);
        self.bits[b1] & m1 != 0 && self.bits[b2] & m2 != 0
    }

    pub fn insert_fp(&mut self, fp: Fingerprint) {
        self.insert(fp_key(fp));
    }

    pub fn contains_fp(&self, fp: Fingerprint) -> bool {
        self.contains(fp_key(fp))
    }
}

fn fp_key(fp: Fingerprint) -> u64 {
    let v = fp.0;
    mix64(v as u64) ^ (v >> 64) as u64
}

// ---- little-endian buffer codec ------------------------------------------

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}
fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}
fn put_u128(buf: &mut Vec<u8>, v: u128) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// A bounds-checked reader over a loaded section.
struct Slice<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Slice<'a> {
    fn new(buf: &'a [u8]) -> Slice<'a> {
        Slice { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| corrupt("section truncated"))?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> io::Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn u128(&mut self) -> io::Result<u128> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }

    fn done(&self) -> bool {
        self.pos >= self.buf.len()
    }
}

fn corrupt(what: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("corrupt snapshot: {what}"),
    )
}

// ---- record codec --------------------------------------------------------

fn put_record(buf: &mut Vec<u8>, rec: &SnapRecord) {
    put_u128(buf, rec.fingerprint.0);
    put_u16(buf, rec.tenant.len() as u16);
    buf.extend_from_slice(rec.tenant.as_bytes());
    match &rec.outcome {
        LineOutcome::Unique { hash, idx } => {
            buf.push(format::OUTCOME_UNIQUE);
            put_u64(buf, *hash);
            put_u32(buf, *idx);
        }
        LineOutcome::Ambiguous { count, truncated } => {
            buf.push(format::OUTCOME_AMBIGUOUS);
            put_u64(buf, *count as u64);
            buf.push(u8::from(*truncated));
        }
        LineOutcome::Inconsistent => buf.push(format::OUTCOME_INCONSISTENT),
        LineOutcome::Exhausted { reason } => {
            buf.push(format::OUTCOME_EXHAUSTED);
            buf.push(format::reason_to_u8(*reason));
        }
    }
}

fn get_record(s: &mut Slice<'_>) -> io::Result<SnapRecord> {
    let fingerprint = Fingerprint(s.u128()?);
    let tenant_len = s.u16()? as usize;
    let tenant =
        String::from_utf8(s.take(tenant_len)?.to_vec()).map_err(|_| corrupt("tenant not utf-8"))?;
    let outcome = match s.u8()? {
        format::OUTCOME_UNIQUE => LineOutcome::Unique {
            hash: s.u64()?,
            idx: s.u32()?,
        },
        format::OUTCOME_AMBIGUOUS => LineOutcome::Ambiguous {
            count: s.u64()? as usize,
            truncated: s.u8()? != 0,
        },
        format::OUTCOME_INCONSISTENT => LineOutcome::Inconsistent,
        format::OUTCOME_EXHAUSTED => LineOutcome::Exhausted {
            reason: format::reason_from_u8(s.u8()?).ok_or_else(|| corrupt("budget reason"))?,
        },
        _ => return Err(corrupt("outcome tag")),
    };
    Ok(SnapRecord {
        fingerprint,
        tenant,
        outcome,
    })
}

fn put_code_rows(buf: &mut Vec<u8>, code: &LinearCode) {
    let p = code.parity_submatrix();
    put_u32(buf, p.rows() as u32);
    put_u32(buf, p.cols() as u32);
    for row in p.iter_rows() {
        let mut bytes = vec![0u8; row.len().div_ceil(8)];
        for j in 0..row.len() {
            if row.get(j) {
                bytes[j / 8] |= 1 << (j % 8);
            }
        }
        buf.extend_from_slice(&bytes);
    }
}

fn get_code_rows(s: &mut Slice<'_>) -> io::Result<LinearCode> {
    let p = s.u32()? as usize;
    let k = s.u32()? as usize;
    if p > 4096 || k > 4096 {
        return Err(corrupt("code dimensions"));
    }
    let mut rows = Vec::with_capacity(p);
    for _ in 0..p {
        let bytes = s.take(k.div_ceil(8))?;
        let mut row = BitVec::zeros(k);
        for (j, row_j) in (0..k).map(|j| (j, (bytes[j / 8] >> (j % 8)) & 1)) {
            if row_j != 0 {
                row.set(j, true);
            }
        }
        rows.push(row);
    }
    LinearCode::from_parity_submatrix(BitMatrix::from_rows(&rows))
        .map_err(|_| corrupt("degenerate code"))
}

// ---- writer --------------------------------------------------------------

/// Writes a complete snapshot to `path` atomically (temp + rename).
///
/// `records` must arrive sorted by fingerprint with no duplicates (a
/// source error aborts the write); `count_hint` is an upper bound used
/// to size the bloom filter (the exact count is known only after a
/// merge dedups). Returns the record count actually written.
pub fn write_snapshot(
    path: &Path,
    codes: &HashMap<u64, Vec<CodeEntry>>,
    dims: &std::collections::BTreeMap<(usize, usize), Vec<(u64, u32)>>,
    records: impl Iterator<Item = io::Result<SnapRecord>>,
    count_hint: usize,
) -> io::Result<u64> {
    // Codes section, sorted by (hash, bucket idx) so the idx invariant is
    // explicit on disk.
    let mut codes_buf = Vec::new();
    let mut bloom_hash = Bloom::with_capacity(codes.len());
    let mut hashes: Vec<&u64> = codes.keys().collect();
    hashes.sort();
    let total_entries: usize = codes.values().map(Vec::len).sum();
    put_u32(&mut codes_buf, total_entries as u32);
    for hash in hashes {
        bloom_hash.insert(*hash);
        for (idx, entry) in codes[hash].iter().enumerate() {
            put_u64(&mut codes_buf, *hash);
            put_u32(&mut codes_buf, idx as u32);
            put_code_rows(&mut codes_buf, &entry.code);
            put_u32(&mut codes_buf, entry.fingerprints.len() as u32);
            for fp in &entry.fingerprints {
                put_u128(&mut codes_buf, fp.0);
            }
        }
    }

    // Dims runs: the sorted (n, k) → (hash, idx) index, persisted so a
    // reopen seeds pagination-stable runs without recomputing.
    let mut dims_buf = Vec::new();
    put_u32(&mut dims_buf, dims.len() as u32);
    for ((n, k), run) in dims {
        put_u32(&mut dims_buf, *n as u32);
        put_u32(&mut dims_buf, *k as u32);
        put_u32(&mut dims_buf, run.len() as u32);
        for (hash, idx) in run {
            put_u64(&mut dims_buf, *hash);
            put_u32(&mut dims_buf, *idx);
        }
    }

    // Records + sparse index + fingerprint bloom, in one pass.
    let mut records_buf = Vec::new();
    let mut sparse: Vec<(u128, u64)> = Vec::new();
    let mut bloom_fp = Bloom::with_capacity(count_hint.max(1));
    let mut n_records = 0u64;
    let mut last_fp: Option<Fingerprint> = None;
    for rec in records {
        let rec = rec?;
        debug_assert!(
            last_fp.is_none_or(|prev| prev < rec.fingerprint),
            "records must be sorted and unique"
        );
        last_fp = Some(rec.fingerprint);
        if (n_records as usize).is_multiple_of(SPARSE_EVERY) {
            sparse.push((rec.fingerprint.0, records_buf.len() as u64));
        }
        bloom_fp.insert_fp(rec.fingerprint);
        put_record(&mut records_buf, &rec);
        n_records += 1;
    }
    let mut sparse_buf = Vec::new();
    put_u32(&mut sparse_buf, sparse.len() as u32);
    for (fp, off) in &sparse {
        put_u128(&mut sparse_buf, *fp);
        put_u64(&mut sparse_buf, *off);
    }
    let mut bloom_fp_buf = Vec::new();
    put_u64(&mut bloom_fp_buf, bloom_fp.nbits);
    bloom_fp_buf.extend_from_slice(&bloom_fp.bits);
    let mut bloom_hash_buf = Vec::new();
    put_u64(&mut bloom_hash_buf, bloom_hash.nbits);
    bloom_hash_buf.extend_from_slice(&bloom_hash.bits);

    // Header, then sections, via temp + rename.
    const HEADER_LEN: u64 = 8 + 4 + 4 + 8 + 7 * 8;
    let off_codes = HEADER_LEN;
    let off_dims = off_codes + codes_buf.len() as u64;
    let off_records = off_dims + dims_buf.len() as u64;
    let off_sparse = off_records + records_buf.len() as u64;
    let off_bloom_fp = off_sparse + sparse_buf.len() as u64;
    let off_bloom_hash = off_bloom_fp + bloom_fp_buf.len() as u64;
    let end = off_bloom_hash + bloom_hash_buf.len() as u64;

    let mut header = Vec::with_capacity(HEADER_LEN as usize);
    header.extend_from_slice(MAGIC);
    put_u32(&mut header, VERSION);
    put_u32(&mut header, 0);
    put_u64(&mut header, n_records);
    for off in [
        off_codes,
        off_dims,
        off_records,
        off_sparse,
        off_bloom_fp,
        off_bloom_hash,
        end,
    ] {
        put_u64(&mut header, off);
    }

    let tmp = path.with_extension("tmp");
    {
        let mut file = File::create(&tmp)?;
        file.write_all(&header)?;
        file.write_all(&codes_buf)?;
        file.write_all(&dims_buf)?;
        file.write_all(&records_buf)?;
        file.write_all(&sparse_buf)?;
        file.write_all(&bloom_fp_buf)?;
        file.write_all(&bloom_hash_buf)?;
        file.flush()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(n_records)
}

// ---- reader --------------------------------------------------------------

/// An open snapshot: indexes in memory, records probed on disk through an
/// interior-mutable handle (lookups take `&self`).
pub struct Snapshot {
    path: PathBuf,
    generation: u64,
    file: Mutex<File>,
    record_count: u64,
    off_codes: u64,
    off_dims: u64,
    off_records: u64,
    off_sparse: u64,
    sparse: Vec<(u128, u64)>,
    bloom_fp: Bloom,
    bloom_hash: Bloom,
}

impl Snapshot {
    /// Opens a snapshot, loading header + sparse index + blooms — the
    /// record and code sections stay on disk until asked for.
    pub fn open(path: PathBuf, generation: u64) -> io::Result<Snapshot> {
        let mut file = File::open(&path)?;
        let mut header = [0u8; 8 + 4 + 4 + 8 + 7 * 8];
        file.read_exact(&mut header)?;
        let mut s = Slice::new(&header);
        if s.take(8)? != MAGIC {
            return Err(corrupt("bad magic"));
        }
        let version = s.u32()?;
        if version != VERSION {
            return Err(corrupt("unknown snapshot version"));
        }
        s.u32()?; // pad
        let record_count = s.u64()?;
        let off_codes = s.u64()?;
        let off_dims = s.u64()?;
        let off_records = s.u64()?;
        let off_sparse = s.u64()?;
        let off_bloom_fp = s.u64()?;
        let off_bloom_hash = s.u64()?;
        let end = s.u64()?;
        if !(off_codes <= off_dims
            && off_dims <= off_records
            && off_records <= off_sparse
            && off_sparse <= off_bloom_fp
            && off_bloom_fp <= off_bloom_hash
            && off_bloom_hash <= end)
        {
            return Err(corrupt("section offsets out of order"));
        }

        let sparse_raw = read_section(&mut file, off_sparse, off_bloom_fp)?;
        let mut s = Slice::new(&sparse_raw);
        let n = s.u32()? as usize;
        let mut sparse = Vec::with_capacity(n);
        for _ in 0..n {
            sparse.push((s.u128()?, s.u64()?));
        }

        let bloom_fp = read_bloom(&mut file, off_bloom_fp, off_bloom_hash)?;
        let bloom_hash = read_bloom(&mut file, off_bloom_hash, end)?;

        Ok(Snapshot {
            path,
            generation,
            file: Mutex::new(file),
            record_count,
            off_codes,
            off_dims,
            off_records,
            off_sparse,
            sparse,
            bloom_fp,
            bloom_hash,
        })
    }

    pub fn generation(&self) -> u64 {
        self.generation
    }

    pub fn record_count(&self) -> u64 {
        self.record_count
    }

    /// Bloom pre-filter: false means definitely absent.
    pub fn maybe_contains(&self, fp: Fingerprint) -> bool {
        self.bloom_fp.contains_fp(fp)
    }

    /// Bloom pre-filter over canonical code hashes.
    pub fn maybe_contains_hash(&self, hash: u64) -> bool {
        self.bloom_hash.contains(hash)
    }

    /// Point lookup: sparse-index binary search, one bounded block read,
    /// short scan. Call [`Snapshot::maybe_contains`] first.
    pub fn probe(&self, fp: Fingerprint) -> io::Result<Option<SnapRecord>> {
        // Greatest sparse entry ≤ fp opens the block that could hold it.
        let slot = self.sparse.partition_point(|&(f, _)| f <= fp.0);
        if slot == 0 {
            return Ok(None); // fp sorts before the first record
        }
        let start = self.sparse[slot - 1].1;
        let end = self
            .sparse
            .get(slot)
            .map_or(self.off_sparse - self.off_records, |&(_, off)| off);
        let mut block = vec![0u8; (end - start) as usize];
        {
            let mut file = self.file.lock().expect("snapshot file poisoned");
            file.seek(SeekFrom::Start(self.off_records + start))?;
            file.read_exact(&mut block)?;
        }
        let mut s = Slice::new(&block);
        while !s.done() {
            let rec = get_record(&mut s)?;
            if rec.fingerprint == fp {
                return Ok(Some(rec));
            }
            if rec.fingerprint > fp {
                break; // sorted: passed where it would be
            }
        }
        Ok(None)
    }

    /// Loads the full code section: `(hash, idx, code, evidence)` in
    /// (hash, idx) order. Only called on the newest snapshot at open.
    pub fn load_codes(&self) -> io::Result<Vec<CodeRow>> {
        let raw = {
            let mut file = self.file.lock().expect("snapshot file poisoned");
            read_section(&mut file, self.off_codes, self.off_dims)?
        };
        let mut s = Slice::new(&raw);
        let n = s.u32()? as usize;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let hash = s.u64()?;
            let idx = s.u32()?;
            let code = get_code_rows(&mut s)?;
            let n_fps = s.u32()? as usize;
            let mut fps = Vec::with_capacity(n_fps.min(4096));
            for _ in 0..n_fps {
                fps.push(Fingerprint(s.u128()?));
            }
            out.push((hash, idx, code, fps));
        }
        Ok(out)
    }

    /// Loads the persisted dims runs. Only called on the newest snapshot.
    pub fn load_dims(&self) -> io::Result<Vec<DimsRun>> {
        let raw = {
            let mut file = self.file.lock().expect("snapshot file poisoned");
            read_section(&mut file, self.off_dims, self.off_records)?
        };
        let mut s = Slice::new(&raw);
        let n = s.u32()? as usize;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let nk = (s.u32()? as usize, s.u32()? as usize);
            let len = s.u32()? as usize;
            let mut run = Vec::with_capacity(len.min(1 << 20));
            for _ in 0..len {
                run.push((s.u64()?, s.u32()?));
            }
            out.push((nk, run));
        }
        Ok(out)
    }

    /// A sequential iterator over every record, in fingerprint order, on
    /// its own file handle — used by compaction merges.
    pub fn iter_records(&self) -> io::Result<RecordIter> {
        let mut file = File::open(&self.path)?;
        file.seek(SeekFrom::Start(self.off_records))?;
        Ok(RecordIter {
            reader: BufReader::new(file),
            remaining: self.record_count,
        })
    }
}

fn read_section(file: &mut File, start: u64, end: u64) -> io::Result<Vec<u8>> {
    let mut buf = vec![0u8; (end.saturating_sub(start)) as usize];
    file.seek(SeekFrom::Start(start))?;
    file.read_exact(&mut buf)?;
    Ok(buf)
}

fn read_bloom(file: &mut File, start: u64, end: u64) -> io::Result<Bloom> {
    let raw = read_section(file, start, end)?;
    let mut s = Slice::new(&raw);
    let nbits = s.u64()?;
    let bits = s.take((nbits / 8) as usize)?.to_vec();
    if nbits == 0 || nbits % 8 != 0 {
        return Err(corrupt("bloom size"));
    }
    Ok(Bloom { nbits, bits })
}

/// See [`Snapshot::iter_records`].
pub struct RecordIter {
    reader: BufReader<File>,
    remaining: u64,
}

impl Iterator for RecordIter {
    type Item = io::Result<SnapRecord>;

    fn next(&mut self) -> Option<io::Result<SnapRecord>> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        Some(read_record_stream(&mut self.reader))
    }
}

fn read_record_stream(r: &mut impl Read) -> io::Result<SnapRecord> {
    let mut fixed = [0u8; 16 + 2];
    r.read_exact(&mut fixed)?;
    let fingerprint = Fingerprint(u128::from_le_bytes(fixed[..16].try_into().unwrap()));
    let tenant_len = u16::from_le_bytes(fixed[16..].try_into().unwrap()) as usize;
    let mut tenant = vec![0u8; tenant_len];
    r.read_exact(&mut tenant)?;
    let tenant = String::from_utf8(tenant).map_err(|_| corrupt("tenant not utf-8"))?;
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag)?;
    let outcome = match tag[0] {
        format::OUTCOME_UNIQUE => {
            let mut b = [0u8; 12];
            r.read_exact(&mut b)?;
            LineOutcome::Unique {
                hash: u64::from_le_bytes(b[..8].try_into().unwrap()),
                idx: u32::from_le_bytes(b[8..].try_into().unwrap()),
            }
        }
        format::OUTCOME_AMBIGUOUS => {
            let mut b = [0u8; 9];
            r.read_exact(&mut b)?;
            LineOutcome::Ambiguous {
                count: u64::from_le_bytes(b[..8].try_into().unwrap()) as usize,
                truncated: b[8] != 0,
            }
        }
        format::OUTCOME_INCONSISTENT => LineOutcome::Inconsistent,
        format::OUTCOME_EXHAUSTED => {
            let mut b = [0u8; 1];
            r.read_exact(&mut b)?;
            LineOutcome::Exhausted {
                reason: format::reason_from_u8(b[0]).ok_or_else(|| corrupt("budget reason"))?,
            }
        }
        _ => return Err(corrupt("outcome tag")),
    };
    Ok(SnapRecord {
        fingerprint,
        tenant,
        outcome,
    })
}
