use super::*;
use crate::job::CodeOutcome;
use beer_ecc::hamming;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("beer_registry_{name}_{}", std::process::id()))
}

fn scrub(path: &Path) {
    let _ = std::fs::remove_file(path);
    let _ = std::fs::remove_dir_all(path);
    let _ = std::fs::remove_file(sibling(path, ".v1-old"));
    let _ = std::fs::remove_dir_all(sibling(path, ".migrate"));
}

fn fp(n: u128) -> Fingerprint {
    Fingerprint(n)
}

fn ambiguous(count: usize) -> CodeOutcome {
    CodeOutcome::Ambiguous {
        count,
        truncated: false,
    }
}

/// The active log segment's path, per the manifest.
fn active_log(dir: &Path) -> PathBuf {
    let manifest = Manifest::read(dir).expect("manifest").expect("present");
    dir.join(&manifest.logs.last().expect("active log").1)
}

#[test]
fn row_hex_roundtrip_covers_odd_widths() {
    for k in [1, 4, 7, 11, 64, 91, 128] {
        let mut row = beer_gf2::BitVec::zeros(k);
        for i in (0..k).step_by(3) {
            row.set(i, true);
        }
        let hex = format::row_to_hex(&row);
        assert_eq!(
            format::row_from_hex(&hex, k).expect("roundtrip"),
            row,
            "k={k}"
        );
    }
    // Padding bits must be zero.
    assert!(format::row_from_hex("f", 2).is_none());
    assert!(format::row_from_hex("zz", 8).is_none());
}

#[test]
fn persists_and_replays_across_reopen() {
    let path = temp_path("reopen");
    scrub(&path);
    let code = hamming::shortened(8);
    {
        let mut reg = Registry::open(&path).expect("open fresh");
        reg.record(fp(1), "alice", &CodeOutcome::Unique(code.clone()))
            .expect("record");
        reg.record(fp(2), "bob", &ambiguous(3)).expect("record");
        reg.record(fp(3), "bob", &CodeOutcome::Inconsistent)
            .expect("record");
    }
    let reg = Registry::open(&path).expect("reopen");
    assert_eq!(reg.record_count(), 3);
    assert_eq!(reg.code_count(), 1);
    assert_eq!(reg.skipped_lines(), 0);
    let rec = reg.lookup_fingerprint(fp(1)).expect("record survives");
    assert_eq!(rec.tenant, "alice");
    let recovered = rec.outcome.unique_code().expect("unique");
    assert!(equivalence::equivalent(recovered, &code));
    assert_eq!(reg.lookup_fingerprint(fp(2)).unwrap().outcome, ambiguous(3));
    scrub(&path);
}

#[test]
fn code_is_stored_once_across_equivalent_recoveries() {
    let mut reg = Registry::in_memory();
    let code = hamming::shortened(10);
    let relabeled = equivalence::permute_parity_rows(&code, &[3, 0, 2, 1]);
    reg.record(fp(10), "a", &CodeOutcome::Unique(code.clone()))
        .expect("record");
    reg.record(fp(11), "b", &CodeOutcome::Unique(relabeled))
        .expect("record");
    assert_eq!(reg.code_count(), 1, "equivalent codes share one entry");
    let entry = reg.lookup_code(&code).expect("by canonical equality");
    assert_eq!(entry.fingerprints, vec![fp(10), fp(11)]);
    assert_eq!(reg.lookup_dims(code.n(), code.k()).len(), 1);
    assert!(reg.lookup_dims(99, 98).is_empty());
}

#[test]
fn corrupt_tail_is_skipped_not_fatal() {
    let path = temp_path("torn");
    scrub(&path);
    {
        let mut reg = Registry::open(&path).expect("open");
        reg.record(fp(7), "t", &CodeOutcome::Unique(hamming::shortened(8)))
            .expect("record");
    }
    // Simulate a crash mid-append: a torn job line and pure garbage at
    // the active segment's tail.
    let log = active_log(&path);
    let mut text = std::fs::read_to_string(&log).expect("read");
    text.push_str("job deadbeef\n");
    text.push_str("???\n");
    std::fs::write(&log, &text).expect("write");

    let reg = Registry::open(&path).expect("reopen with torn tail");
    assert_eq!(reg.record_count(), 1, "intact records survive");
    assert_eq!(reg.skipped_lines(), 2, "torn lines are counted");
    scrub(&path);
}

#[test]
fn unknown_header_version_is_refused() {
    let path = temp_path("future");
    scrub(&path);
    std::fs::write(&path, "beer-registry v9\n").expect("write");
    let err = match Registry::open(&path) {
        Err(e) => e,
        Ok(_) => panic!("future versions must not replay"),
    };
    assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    assert!(path.is_file(), "refused file must be left untouched");
    scrub(&path);
}

#[test]
fn compact_produces_a_minimal_equivalent_snapshot() {
    let path = temp_path("compact");
    scrub(&path);
    let mut rng = StdRng::seed_from_u64(7);
    let codes: Vec<LinearCode> = (0..3).map(|_| hamming::random_sec(12, &mut rng)).collect();
    {
        let mut reg = Registry::open(&path).expect("open");
        // Every record appended twice (an upsert re-appends): the log
        // grows, the state doesn't — exactly what compaction reclaims.
        for round in 0..2 {
            for i in 0..20u128 {
                let code = &codes[(i % 3) as usize];
                reg.record(fp(100 + i), "t", &CodeOutcome::Unique(code.clone()))
                    .unwrap_or_else(|e| panic!("record round {round}: {e}"));
            }
        }
        assert_eq!(reg.appended_since_compact(), 40);
        assert_eq!(reg.record_count(), 20, "upserts do not double-count");
        reg.compact().expect("compact");
        assert_eq!(reg.appended_since_compact(), 0);
        assert_eq!(reg.tail_records(), 0, "compaction drains the tail");
        assert_eq!(reg.snapshot_count(), 1);
        assert_eq!(reg.log_segments(), 1);
        assert_eq!(reg.compactions(), 1);
        // Post-compaction lookups are served by snapshot probes.
        assert!(reg.lookup_fingerprint(fp(100)).is_some());
        assert!(reg.lookup_fingerprint(fp(999)).is_none());
    }
    let reg = Registry::open(&path).expect("reopen snapshot");
    assert_eq!(reg.record_count(), 20);
    assert_eq!(reg.code_count(), codes.len());
    assert_eq!(reg.skipped_lines(), 0);
    for code in &codes {
        assert!(reg.lookup_code(code).is_some());
    }
    for i in 0..20u128 {
        let rec = reg.lookup_fingerprint(fp(100 + i)).expect("disk probe");
        assert_eq!(rec.tenant, "t");
        assert!(rec.outcome.unique_code().is_some());
    }
    scrub(&path);
}

#[test]
fn sealing_rolls_the_active_segment() {
    let path = temp_path("seal");
    scrub(&path);
    {
        let mut reg = Registry::open(&path).expect("open");
        reg.set_seal_bytes(1); // every append crosses the threshold
        for i in 0..5u128 {
            reg.record(fp(i), "t", &ambiguous(i as usize))
                .expect("record");
        }
        assert_eq!(reg.log_segments(), 6, "five sealed + one active");
        assert_eq!(reg.record_count(), 5);
    }
    let reg = Registry::open(&path).expect("reopen");
    assert_eq!(reg.log_segments(), 6);
    assert_eq!(reg.record_count(), 5);
    assert_eq!(reg.skipped_lines(), 0);
    for i in 0..5u128 {
        assert_eq!(
            reg.lookup_fingerprint(fp(i)).unwrap().outcome,
            ambiguous(i as usize)
        );
    }
    scrub(&path);
}

#[test]
fn minor_then_major_compaction_keeps_exact_counts() {
    let path = temp_path("tiers");
    scrub(&path);
    let mut reg = Registry::open(&path).expect("open");
    for i in 0..10u128 {
        reg.record(fp(i), "t", &ambiguous(1)).expect("record");
    }
    reg.compact_minor().expect("minor 1");
    // Overwrite half the old fingerprints and add new ones: exercises
    // newest-wins and exact distinct counting across generations.
    for i in 5..15u128 {
        reg.record(fp(i), "t", &ambiguous(2)).expect("record");
    }
    reg.compact_minor().expect("minor 2");
    assert_eq!(reg.snapshot_count(), 2);
    assert_eq!(reg.record_count(), 15);
    assert_eq!(reg.lookup_fingerprint(fp(7)).unwrap().outcome, ambiguous(2));
    assert_eq!(reg.lookup_fingerprint(fp(2)).unwrap().outcome, ambiguous(1));

    // The budget-driven roll: at budget 2 with 2 generations, a major
    // merge collapses everything.
    for i in 15..18u128 {
        reg.record(fp(i), "t", &ambiguous(3)).expect("record");
    }
    reg.maybe_roll(1, 2).expect("major roll");
    assert_eq!(reg.snapshot_count(), 1);
    assert_eq!(reg.record_count(), 18);
    assert_eq!(reg.compactions(), 3);
    drop(reg);

    let reg = Registry::open(&path).expect("reopen");
    assert_eq!(reg.record_count(), 18);
    assert_eq!(reg.lookup_fingerprint(fp(7)).unwrap().outcome, ambiguous(2));
    assert_eq!(
        reg.lookup_fingerprint(fp(16)).unwrap().outcome,
        ambiguous(3)
    );
    scrub(&path);
}

/// Satellite: crash-mid-compaction at every step — temp-file write, new
/// active log, manifest swap — must reopen to a consistent state with no
/// lost records, for both compaction tiers, even with a torn tail on top.
#[test]
fn crash_mid_compaction_recovers_every_step() {
    let code = hamming::shortened(8);
    for major in [false, true] {
        for crash in [
            CrashPoint::SnapshotWritten,
            CrashPoint::NewLogLive,
            CrashPoint::ManifestSwapped,
        ] {
            let path = temp_path(&format!("crash_{major}_{crash:?}"));
            scrub(&path);
            let mut reg = Registry::open(&path).expect("open");
            for i in 0..8u128 {
                reg.record(fp(i), "t", &ambiguous(i as usize))
                    .expect("record");
            }
            reg.compact_minor().expect("seed generation");
            for i in 4..12u128 {
                reg.record(fp(i), "u", &CodeOutcome::Unique(code.clone()))
                    .expect("record");
            }
            let dir = path.clone();
            if major {
                reg.compact_major_inner(&dir, Some(crash))
                    .expect("crashing major");
            } else {
                reg.compact_minor_inner(&dir, Some(crash))
                    .expect("crashing minor");
            }
            drop(reg); // the "kill"

            // Reuse the torn-line harness: garbage on whatever log the
            // surviving manifest considers active.
            let log = active_log(&path);
            let mut text = std::fs::read_to_string(&log).expect("read");
            text.push_str("job deadbeef\n");
            std::fs::write(&log, &text).expect("write");

            let reg = Registry::open(&path)
                .unwrap_or_else(|e| panic!("reopen major={major} {crash:?}: {e}"));
            assert_eq!(reg.record_count(), 12, "major={major} {crash:?}");
            assert_eq!(reg.skipped_lines(), 1, "major={major} {crash:?}");
            for i in 0..12u128 {
                let rec = reg
                    .lookup_fingerprint(fp(i))
                    .unwrap_or_else(|| panic!("fp {i} lost, major={major} {crash:?}"));
                if i >= 4 {
                    assert!(
                        rec.outcome.unique_code().is_some(),
                        "newest wins for fp {i}"
                    );
                } else {
                    assert_eq!(rec.outcome, ambiguous(i as usize));
                }
            }
            scrub(&path);
        }
    }
}

/// Satellite: a failed compaction must not silently reset accounting.
#[test]
fn failed_compaction_counts_and_keeps_accounting() {
    let path = temp_path("failcompact");
    scrub(&path);
    let mut reg = Registry::open(&path).expect("open");
    for i in 0..3u128 {
        reg.record(fp(i), "t", &ambiguous(1)).expect("record");
    }
    assert_eq!(reg.appended_since_compact(), 3);
    // Yank the directory out from under the snapshot write.
    std::fs::remove_dir_all(&path).expect("remove dir");
    assert!(reg.compact().is_err(), "compaction must fail");
    assert_eq!(reg.compaction_failures(), 1);
    assert_eq!(reg.compactions(), 0);
    assert_eq!(
        reg.appended_since_compact(),
        3,
        "failure must not reset the appended counter"
    );
    assert_eq!(reg.record_count(), 3, "in-memory state intact");
    scrub(&path);
}

#[test]
fn v1_single_file_log_migrates_transparently() {
    let path = temp_path("v1migrate");
    scrub(&path);
    // Hand-build a legacy v1 single-file log.
    let code = equivalence::canonicalize(&hamming::shortened(8));
    let hash = equivalence::canonical_hash(&code);
    let mut text = format!("{REGISTRY_HEADER}\n");
    text.push_str(&format::code_line(hash, &code));
    text.push_str(&format!("job {} alice unique {hash:016x} 0\n", fp(1)));
    text.push_str(&format!("job {} bob ambiguous 4 1\n", fp(2)));
    std::fs::write(&path, &text).expect("write v1 file");

    let reg = Registry::open(&path).expect("migrating open");
    assert!(path.is_dir(), "file became a registry directory");
    assert!(!sibling(&path, ".v1-old").exists(), "old file cleaned up");
    assert_eq!(reg.record_count(), 2);
    assert_eq!(reg.code_count(), 1);
    assert_eq!(reg.skipped_lines(), 0);
    assert!(reg
        .lookup_fingerprint(fp(1))
        .unwrap()
        .outcome
        .unique_code()
        .is_some());
    drop(reg);
    // Idempotent: a second open sees a normal directory registry.
    let reg = Registry::open(&path).expect("second open");
    assert_eq!(reg.record_count(), 2);
    scrub(&path);
}

#[test]
fn interrupted_v1_migration_recovers() {
    let code = equivalence::canonicalize(&hamming::shortened(8));
    let hash = equivalence::canonical_hash(&code);
    let mut v1 = format!("{REGISTRY_HEADER}\n");
    v1.push_str(&format::code_line(hash, &code));
    v1.push_str(&format!("job {} t unique {hash:016x} 0\n", fp(9)));

    // Crash window A: staging dir half-built, source file still present.
    let path = temp_path("migrate_a");
    scrub(&path);
    std::fs::write(&path, &v1).expect("v1 file");
    let staging = sibling(&path, ".migrate");
    std::fs::create_dir_all(&staging).expect("staging");
    std::fs::write(staging.join("junk"), b"partial").expect("junk");
    let reg = Registry::open(&path).expect("open recovers window A");
    assert_eq!(reg.record_count(), 1);
    assert!(!staging.exists());
    scrub(&path);

    // Crash window B: staging complete, source renamed away, directory
    // not yet moved into place.
    let path = temp_path("migrate_b");
    scrub(&path);
    let staging = sibling(&path, ".migrate");
    let old = sibling(&path, ".v1-old");
    std::fs::create_dir_all(&staging).expect("staging");
    std::fs::write(staging.join(log_name(0)), &v1).expect("seg0");
    Manifest {
        records: 0,
        snaps: Vec::new(),
        logs: vec![(0, log_name(0))],
    }
    .write(&staging)
    .expect("manifest");
    std::fs::write(&old, &v1).expect("renamed-away original");
    let reg = Registry::open(&path).expect("open recovers window B");
    assert_eq!(reg.record_count(), 1);
    assert!(path.is_dir());
    assert!(!old.exists());
    scrub(&path);
}

#[test]
fn orphan_segments_are_garbage_collected_at_open() {
    let path = temp_path("gc");
    scrub(&path);
    {
        let mut reg = Registry::open(&path).expect("open");
        reg.record(fp(1), "t", &ambiguous(1)).expect("record");
    }
    std::fs::write(path.join("snap-000099.snap"), b"orphan").expect("orphan snap");
    std::fs::write(path.join("seg-000099.log"), b"orphan").expect("orphan log");
    std::fs::write(path.join("snap-000098.tmp"), b"tmp").expect("tmp");
    let reg = Registry::open(&path).expect("reopen GCs orphans");
    assert_eq!(reg.record_count(), 1);
    assert!(!path.join("snap-000099.snap").exists());
    assert!(!path.join("seg-000099.log").exists());
    assert!(!path.join("snap-000098.tmp").exists());
    scrub(&path);
}

#[test]
fn dims_pagination_is_stable_while_records_append() {
    let mut reg = Registry::in_memory();
    let mut rng = StdRng::seed_from_u64(11);
    let mut codes = Vec::new();
    while reg.code_count() < 9 {
        let code = hamming::random_sec(12, &mut rng);
        reg.record(
            fp(1000 + codes.len() as u128),
            "t",
            &CodeOutcome::Unique(code.clone()),
        )
        .expect("record");
        codes.push(code);
    }
    let (n, k) = (codes[0].n(), codes[0].k());
    let initial: Vec<u64> = reg.lookup_dims(n, k).iter().map(|e| e.hash).collect();
    assert_eq!(initial.len(), 9);

    // Page through with limit 2, appending fresh codes mid-iteration.
    let mut seen = Vec::new();
    let mut cursor = None;
    let mut injected = 0u128;
    loop {
        let (page, next) = reg.lookup_dims_page(n, k, cursor, 2);
        assert!(page.len() <= 2);
        seen.extend(page.iter().map(|e| e.hash));
        if injected < 3 {
            // Appends between pages must not disturb the cursor.
            let code = hamming::random_sec(12, &mut rng);
            reg.record(fp(5000 + injected), "t", &CodeOutcome::Unique(code))
                .expect("record");
            injected += 1;
        }
        match next {
            Some(c) => cursor = Some(c),
            None => break,
        }
    }
    // Every entry present at iteration start appears exactly once.
    for hash in &initial {
        assert_eq!(
            seen.iter().filter(|h| *h == hash).count(),
            1,
            "hash {hash:016x} must appear exactly once"
        );
    }
    // And nothing appears twice, including injected entries.
    let mut dedup = seen.clone();
    dedup.sort_unstable();
    dedup.dedup();
    assert_eq!(dedup.len(), seen.len(), "no entry may repeat across pages");

    // Hash-bucket pagination: bucket of size 1 pages out in one step.
    let hash = initial[0];
    let (page, next) = reg.lookup_hash_page(hash, None, 5);
    assert_eq!(page.len(), 1);
    assert!(next.is_none());
    let (page, next) = reg.lookup_hash_page(hash, Some(0), 5);
    assert!(page.is_empty());
    assert!(next.is_none());
}

#[test]
fn evidence_is_capped() {
    let mut entry = CodeEntry {
        hash: 1,
        code: hamming::shortened(8),
        fingerprints: Vec::new(),
    };
    for i in 0..(EVIDENCE_CAP as u128 + 50) {
        push_evidence(&mut entry, fp(i));
    }
    assert_eq!(entry.fingerprints.len(), EVIDENCE_CAP);
    // Duplicates never double-count.
    push_evidence(&mut entry, fp(0));
    assert_eq!(entry.fingerprints.len(), EVIDENCE_CAP);
}

#[test]
fn bloom_filter_has_no_false_negatives() {
    let mut bloom = segment::Bloom::with_capacity(500);
    for i in 0..500u64 {
        bloom.insert(i.wrapping_mul(0x9e3779b97f4a7c15));
    }
    for i in 0..500u64 {
        assert!(bloom.contains(i.wrapping_mul(0x9e3779b97f4a7c15)));
    }
    let false_positives = (0..10_000u64)
        .filter(|i| bloom.contains(i.wrapping_mul(0x517cc1b727220a95).wrapping_add(3)))
        .count();
    assert!(
        false_positives < 500,
        "bloom false-positive rate implausibly high: {false_positives}/10000"
    );
}
