//! The bounded, tenant-fair priority queue behind the service.
//!
//! Scheduling policy, in order:
//!
//! 1. **Fairness across tenants.** Tenants with queued work are served
//!    round-robin: each pop takes from the least recently served tenant,
//!    so a tenant submitting thousands of jobs cannot starve one
//!    submitting a single job.
//! 2. **Priority within a tenant.** Among one tenant's jobs, higher
//!    [`Priority`] first, FIFO within equal priority.
//! 3. **Bounded admission.** The total queue is capacity-bounded; a full
//!    queue rejects with typed [`Rejected::QueueFull`] backpressure
//!    instead of growing without bound.

use crate::job::{Priority, Rejected};
use std::collections::{BinaryHeap, HashMap, VecDeque};

struct Entry<T> {
    priority: Priority,
    /// Admission order, inverted so the heap pops oldest-first within a
    /// priority class.
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.priority
            .cmp(&other.priority)
            .then(other.seq.cmp(&self.seq))
    }
}

/// The scheduler data structure (see the module docs). Generic over the
/// queued item so it unit-tests without the full job machinery.
pub(crate) struct FairScheduler<T> {
    capacity: usize,
    len: usize,
    seq: u64,
    /// Tenants with at least one queued entry, in round-robin order.
    rotation: VecDeque<String>,
    queues: HashMap<String, BinaryHeap<Entry<T>>>,
}

impl<T> FairScheduler<T> {
    pub(crate) fn new(capacity: usize) -> Self {
        FairScheduler {
            capacity,
            len: 0,
            seq: 0,
            rotation: VecDeque::new(),
            queues: HashMap::new(),
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Admits an item, applying the capacity bound.
    pub(crate) fn push(
        &mut self,
        tenant: &str,
        priority: Priority,
        item: T,
    ) -> Result<(), Rejected> {
        if self.len >= self.capacity {
            return Err(Rejected::QueueFull {
                capacity: self.capacity,
            });
        }
        self.requeue(tenant, priority, item);
        Ok(())
    }

    /// Admits an item bypassing the capacity bound — used to promote a
    /// coalesced waiter whose primary was cancelled (the waiter was
    /// already admitted once; bouncing it now would lose an accepted job).
    pub(crate) fn requeue(&mut self, tenant: &str, priority: Priority, item: T) {
        let queue = self.queues.entry(tenant.to_string()).or_default();
        if queue.is_empty() {
            self.rotation.push_back(tenant.to_string());
        }
        queue.push(Entry {
            priority,
            seq: self.seq,
            item,
        });
        self.seq += 1;
        self.len += 1;
    }

    /// Removes a specific queued item (a cancelled job must not keep
    /// holding queue capacity or a fairness turn). Returns whether it was
    /// present.
    pub(crate) fn remove(&mut self, tenant: &str, item: &T) -> bool
    where
        T: PartialEq,
    {
        let Some(queue) = self.queues.get_mut(tenant) else {
            return false;
        };
        let before = queue.len();
        let kept: Vec<Entry<T>> = queue.drain().filter(|e| e.item != *item).collect();
        *queue = kept.into_iter().collect();
        let removed = before - queue.len();
        if removed == 0 {
            return false;
        }
        self.len -= removed;
        if queue.is_empty() {
            self.queues.remove(tenant);
            self.rotation.retain(|t| t != tenant);
        }
        true
    }

    /// Takes the next item per the scheduling policy.
    pub(crate) fn pop(&mut self) -> Option<T> {
        let tenant = self.rotation.pop_front()?;
        let queue = self
            .queues
            .get_mut(&tenant)
            .expect("rotation names only tenants with queues");
        let entry = queue.pop().expect("rotation names only non-empty queues");
        if queue.is_empty() {
            self.queues.remove(&tenant);
        } else {
            self.rotation.push_back(tenant);
        }
        self.len -= 1;
        Some(entry.item)
    }

    /// Drains everything (shutdown path), in no particular order.
    pub(crate) fn drain(&mut self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.len);
        for (_, queue) in self.queues.drain() {
            out.extend(queue.into_iter().map(|e| e.item));
        }
        self.rotation.clear();
        self.len = 0;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_across_tenants() {
        let mut q = FairScheduler::new(16);
        // Tenant a floods the queue before tenant b submits one job.
        for i in 0..5 {
            q.push("a", Priority::Normal, format!("a{i}")).unwrap();
        }
        q.push("b", Priority::Normal, "b0".to_string()).unwrap();
        assert_eq!(q.pop().unwrap(), "a0");
        // b is served on the very next pop despite a's backlog.
        assert_eq!(q.pop().unwrap(), "b0");
        assert_eq!(q.pop().unwrap(), "a1");
        assert_eq!(q.pop().unwrap(), "a2");
    }

    #[test]
    fn priority_then_fifo_within_a_tenant() {
        let mut q = FairScheduler::new(16);
        q.push("t", Priority::Low, "low0").unwrap();
        q.push("t", Priority::Normal, "norm0").unwrap();
        q.push("t", Priority::High, "high0").unwrap();
        q.push("t", Priority::High, "high1").unwrap();
        q.push("t", Priority::Normal, "norm1").unwrap();
        let order: Vec<&str> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, ["high0", "high1", "norm0", "norm1", "low0"]);
    }

    #[test]
    fn capacity_is_enforced_with_a_typed_rejection() {
        let mut q = FairScheduler::new(2);
        q.push("t", Priority::Normal, 1).unwrap();
        q.push("u", Priority::Normal, 2).unwrap();
        assert_eq!(
            q.push("v", Priority::Normal, 3),
            Err(Rejected::QueueFull { capacity: 2 })
        );
        // Popping frees capacity again.
        q.pop().unwrap();
        q.push("v", Priority::Normal, 3).unwrap();
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn requeue_bypasses_capacity() {
        let mut q = FairScheduler::new(1);
        q.push("t", Priority::Normal, 1).unwrap();
        q.requeue("t", Priority::High, 2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(1));
    }

    #[test]
    fn remove_frees_capacity_and_fairness_turns() {
        let mut q = FairScheduler::new(2);
        q.push("a", Priority::Normal, 1).unwrap();
        q.push("b", Priority::Normal, 2).unwrap();
        assert!(q.remove("a", &1));
        assert!(!q.remove("a", &1), "already gone");
        assert!(!q.remove("ghost", &9));
        // The slot is free again and tenant a no longer takes a turn.
        q.push("c", Priority::Normal, 3).unwrap();
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn drain_empties_everything() {
        let mut q = FairScheduler::new(8);
        for t in ["a", "b", "c"] {
            q.push(t, Priority::Normal, t.to_string()).unwrap();
        }
        let mut drained = q.drain();
        drained.sort();
        assert_eq!(drained, ["a", "b", "c"]);
        assert_eq!(q.len(), 0);
        assert!(q.pop().is_none());
    }
}
