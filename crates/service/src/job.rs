//! The job model: identifiers, tenancy, priorities, states, inputs,
//! results, and the per-job event stream.

use beer_core::engine::ProfileSource;
use beer_core::recovery::{BudgetReason, RecoveryError, RecoveryEvent};
use beer_core::trace::ProfileTrace;
use beer_ecc::LinearCode;
use beer_obs::TraceId;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Opaque job identifier, unique within one service instance. Durable
/// identity across restarts belongs to the profile
/// [`Fingerprint`](beer_core::trace::Fingerprint), not the job id.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

impl fmt::Debug for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JobId({})", self.0)
    }
}

/// Scheduling priority *within* one tenant's queue. Tenants are isolated
/// from each other by round-robin fairness, so one tenant's `High` jobs
/// never starve another tenant's `Low` jobs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum Priority {
    /// Behind everything else the tenant has queued.
    Low,
    /// The default.
    #[default]
    Normal,
    /// Ahead of the tenant's other queued work.
    High,
}

/// Lifecycle of a job. Transitions: `Queued → Running → {Done, Failed,
/// Cancelled}`, with `Queued → {Done, Failed, Cancelled}` shortcuts for
/// cache hits, deadline expiry in the queue, and pre-run cancellation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a worker (or coalesced onto a running job).
    Queued,
    /// A worker is driving the recovery session.
    Running,
    /// Terminal: the recovery reached a typed outcome.
    Done,
    /// Terminal: the recovery errored, panicked, missed its deadline, or
    /// the service shut down first.
    Failed,
    /// Terminal: cancelled before or during the run.
    Cancelled,
}

impl JobState {
    /// True for `Done`, `Failed`, and `Cancelled`.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }
}

impl fmt::Display for JobState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        };
        f.write_str(s)
    }
}

/// What a job recovers from.
pub enum JobInput {
    /// A recorded profile, solved through a
    /// [`ReplayBackend`](beer_core::trace::ReplayBackend). Trace jobs are
    /// *dedupable*: identical normalized evidence coalesces onto one
    /// in-flight job, and completed results are served from the registry
    /// cache forever after. Shared (`Arc`) so front ends holding many
    /// duplicate submissions of one profile (e.g. the network edge's
    /// upload cache) never deep-copy the trace per submission.
    Trace(Arc<ProfileTrace>),
    /// A live backend (a chip on a tester, a simulation). Opaque to the
    /// service: never coalesced, never cached — every submission runs.
    Source {
        /// Human-readable backend name for error attribution.
        label: String,
        /// The backend itself; the job's session consumes it.
        source: Box<dyn ProfileSource + Send>,
    },
}

/// One unit of work a tenant submits.
pub struct JobRequest {
    /// Tenant name: non-empty, no whitespace (it keys the fairness
    /// rotation and the registry's plain-text log).
    pub tenant: String,
    /// Priority within the tenant's own queue.
    pub priority: Priority,
    /// Wall-clock budget measured from submission — covers queue wait
    /// *and* run time. An expired job fails with
    /// [`JobError::DeadlineExpired`].
    pub deadline: Option<Duration>,
    /// The profile to recover from.
    pub input: JobInput,
    /// The job's trace correlation id. `None` (the default) mints a
    /// fresh id at admission; a front end that already named the job —
    /// the network edge carrying a client- or forwarder-supplied id
    /// across nodes — passes it through so one id follows the job
    /// everywhere.
    pub trace_id: Option<TraceId>,
}

impl JobRequest {
    /// A trace job with default priority and no deadline.
    pub fn trace(tenant: impl Into<String>, trace: ProfileTrace) -> Self {
        JobRequest::shared_trace(tenant, Arc::new(trace))
    }

    /// A trace job over an already-shared trace — duplicate submissions
    /// of one profile (the dedup hot path) share the allocation instead
    /// of cloning it.
    pub fn shared_trace(tenant: impl Into<String>, trace: Arc<ProfileTrace>) -> Self {
        JobRequest {
            tenant: tenant.into(),
            priority: Priority::default(),
            deadline: None,
            input: JobInput::Trace(trace),
            trace_id: None,
        }
    }

    /// A live-backend job with default priority and no deadline.
    pub fn source(
        tenant: impl Into<String>,
        label: impl Into<String>,
        source: Box<dyn ProfileSource + Send>,
    ) -> Self {
        JobRequest {
            tenant: tenant.into(),
            priority: Priority::default(),
            deadline: None,
            input: JobInput::Source {
                label: label.into(),
                source,
            },
            trace_id: None,
        }
    }

    /// Overrides the priority.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the submission-to-completion deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Carries an already-minted trace correlation id (a forwarded job
    /// keeps the id minted on its origin node).
    pub fn with_trace_id(mut self, trace_id: TraceId) -> Self {
        self.trace_id = Some(trace_id);
        self
    }
}

/// Typed admission-control rejection: the service applies backpressure
/// instead of growing its queue without bound.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Rejected {
    /// The bounded queue is at capacity; retry later.
    QueueFull {
        /// The configured capacity.
        capacity: usize,
    },
    /// The job exceeds the configured size ceiling.
    TooLarge {
        /// Patterns the job would collect.
        patterns: usize,
        /// The configured limit.
        limit: usize,
    },
    /// The tenant name is unusable (empty or contains whitespace).
    InvalidTenant {
        /// Why.
        reason: &'static str,
    },
    /// The service's configured pattern schedule cannot be resolved for
    /// the backend's dataword length (e.g. `k` smaller than the pattern
    /// family's order).
    Unschedulable {
        /// The backend's dataword length.
        k: usize,
    },
    /// The service is shutting down.
    ShuttingDown,
}

impl fmt::Display for Rejected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rejected::QueueFull { capacity } => {
                write!(f, "job queue is full ({capacity} jobs); retry later")
            }
            Rejected::TooLarge { patterns, limit } => write!(
                f,
                "job would collect {patterns} patterns, over the limit of {limit}"
            ),
            Rejected::InvalidTenant { reason } => write!(f, "invalid tenant name: {reason}"),
            Rejected::Unschedulable { k } => write!(
                f,
                "the configured pattern schedule cannot be resolved for a {k}-bit dataword"
            ),
            Rejected::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for Rejected {}

/// Why a job failed or did not complete.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobError {
    /// The recovery session returned a typed error (engine failure, solver
    /// rejection, or a panicking backend converted by the guarded runner).
    Recovery(RecoveryError),
    /// The job's deadline expired — in the queue or mid-run.
    DeadlineExpired,
    /// The job was cancelled.
    Cancelled,
    /// The service shut down before the job ran.
    ShutDown,
    /// No job with the given id exists in this service instance.
    Unknown,
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Recovery(e) => write!(f, "recovery failed: {e}"),
            JobError::DeadlineExpired => write!(f, "deadline expired"),
            JobError::Cancelled => write!(f, "cancelled"),
            JobError::ShutDown => write!(f, "service shut down before the job ran"),
            JobError::Unknown => write!(f, "unknown job id"),
        }
    }
}

impl std::error::Error for JobError {}

/// The cacheable summary of a recovery outcome — what the registry
/// persists and the cache serves. Unlike
/// [`RecoveryOutcome`](beer_core::recovery::RecoveryOutcome) it carries no
/// witness lists or partial candidate sets, and a `Unique` code is stored
/// in [`canonical form`](beer_ecc::equivalence::canonicalize).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodeOutcome {
    /// Exactly one ECC function is consistent: its canonical
    /// representative.
    Unique(LinearCode),
    /// Several functions remain consistent after the full schedule.
    Ambiguous {
        /// Witnesses found (a lower bound when `truncated`).
        count: usize,
        /// True if enumeration stopped at the solver's cap.
        truncated: bool,
    },
    /// No function is consistent with the evidence.
    Inconsistent,
    /// A configured fact/pattern budget ended the schedule early. This is
    /// an artifact of the service's budgets, not of the evidence, so it is
    /// returned to the submitter but never cached or persisted —
    /// resubmitting the profile (e.g. under a reconfigured service) runs
    /// again.
    BudgetExhausted {
        /// Which budget fired.
        reason: BudgetReason,
    },
}

impl CodeOutcome {
    /// The recovered canonical code, if unique.
    pub fn unique_code(&self) -> Option<&LinearCode> {
        match self {
            CodeOutcome::Unique(code) => Some(code),
            _ => None,
        }
    }
}

/// A completed job's product.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobOutput {
    /// The recovery outcome summary.
    pub outcome: CodeOutcome,
    /// True if the result was served from the persistent registry without
    /// running a session.
    pub from_cache: bool,
    /// Set if this job never ran itself: it coalesced onto the given
    /// in-flight job with the same profile fingerprint and shares its
    /// result.
    pub coalesced_into: Option<JobId>,
}

/// How a job ended.
pub type JobResult = Result<JobOutput, JobError>;

/// Events streamed to per-job and service-wide subscribers (see
/// [`RecoveryService::subscribe`](crate::RecoveryService::subscribe)).
#[derive(Clone, Debug)]
pub enum JobEvent {
    /// The job was admitted.
    Submitted {
        /// The job.
        job: JobId,
        /// Its tenant.
        tenant: String,
    },
    /// The job entered a new lifecycle state.
    StateChanged {
        /// The job.
        job: JobId,
        /// The new state.
        state: JobState,
    },
    /// The job's fingerprint matched an in-flight job; it will share that
    /// job's result instead of running.
    Coalesced {
        /// The waiting job.
        job: JobId,
        /// The in-flight job it attached to.
        primary: JobId,
    },
    /// The job's fingerprint matched a completed record in the registry;
    /// its result was served without solving.
    CacheHit {
        /// The job.
        job: JobId,
    },
    /// The job had coalesced onto a primary that was cancelled; it was
    /// promoted back into the queue to run on its own.
    Requeued {
        /// The promoted job.
        job: JobId,
    },
    /// A progress event from the job's recovery session.
    Progress {
        /// The job.
        job: JobId,
        /// The session event.
        event: RecoveryEvent,
    },
}

impl JobEvent {
    /// The job the event concerns.
    pub fn job(&self) -> JobId {
        match self {
            JobEvent::Submitted { job, .. }
            | JobEvent::StateChanged { job, .. }
            | JobEvent::Coalesced { job, .. }
            | JobEvent::CacheHit { job }
            | JobEvent::Requeued { job }
            | JobEvent::Progress { job, .. } => *job,
        }
    }
}
