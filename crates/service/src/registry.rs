//! The persistent code registry: an append-only log of completed job
//! records and recovered canonical codes.
//!
//! The BEER paper's key economic observation is that manufacturers reuse a
//! small set of on-die ECC functions across many chips — so a recovered
//! function is a durable, shareable artifact. The registry makes it one:
//!
//! * **Append-only log.** Every completed trace job appends its record
//!   (profile fingerprint → outcome); a `Unique` outcome first appends the
//!   recovered canonical code, deduplicated by
//!   [`equivalence::canonical_hash`] so a function recovered from a
//!   thousand chips is stored once. Records are flushed per append.
//! * **Crash-recovery replay.** [`Registry::open`] replays the log,
//!   tolerating a truncated or corrupt tail (a crash mid-append): bad
//!   lines are counted and skipped, never propagated as parse failures.
//! * **Snapshot/compact.** [`Registry::compact`] rewrites the log as a
//!   minimal snapshot (atomically, via a temp file + rename), bounding
//!   replay time for long-lived services.
//! * **Queries.** By profile [`Fingerprint`], by code dimensions `(n, k)`,
//!   and by canonical-code equality — each O(1) or O(matches).

use crate::job::CodeOutcome;
use beer_core::recovery::BudgetReason;
use beer_core::trace::Fingerprint;
use beer_ecc::{equivalence, LinearCode};
use beer_gf2::{BitMatrix, BitVec};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

/// First line of every registry file.
pub const REGISTRY_HEADER: &str = "beer-registry v1";

/// A completed job's durable record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobRecord {
    /// Fingerprint of the normalized profile the job solved.
    pub fingerprint: Fingerprint,
    /// The submitting tenant.
    pub tenant: String,
    /// The outcome summary (`Unique` resolved to the canonical code).
    pub outcome: CodeOutcome,
}

/// One recovered ECC function (equivalence class), stored once no matter
/// how many profiles recovered it.
#[derive(Clone, Debug)]
pub struct CodeEntry {
    /// [`equivalence::canonical_hash`] of the code.
    pub hash: u64,
    /// The canonical representative.
    pub code: LinearCode,
    /// Every profile fingerprint that recovered this function — the
    /// "same ECC function across many chips" evidence.
    pub fingerprints: Vec<Fingerprint>,
}

/// The registry (see the module docs). In-memory maps mirror the log.
pub struct Registry {
    path: Option<PathBuf>,
    file: Option<File>,
    records: HashMap<Fingerprint, JobRecord>,
    /// canonical hash → entries; the bucket confirms with
    /// [`equivalence::equivalent`], so a hash collision cannot conflate
    /// two functions.
    codes: HashMap<u64, Vec<CodeEntry>>,
    code_count: usize,
    appended: usize,
    skipped_lines: usize,
}

impl Registry {
    /// A registry with no backing file: state lives for the process only.
    pub fn in_memory() -> Self {
        Registry {
            path: None,
            file: None,
            records: HashMap::new(),
            codes: HashMap::new(),
            code_count: 0,
            appended: 0,
            skipped_lines: 0,
        }
    }

    /// Opens (creating if absent) a file-backed registry, replaying the
    /// log into memory.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors and refuses a file whose header names an
    /// unknown format version. Corrupt *body* lines — e.g. a torn tail
    /// from a crash mid-append — are skipped and counted
    /// ([`Registry::skipped_lines`]), not errors.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Registry> {
        let path = path.as_ref().to_path_buf();
        let mut registry = Registry::in_memory();
        registry.path = Some(path.clone());
        match std::fs::read_to_string(&path) {
            Ok(text) => registry.replay(&text)?,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                std::fs::write(&path, format!("{REGISTRY_HEADER}\n"))?;
            }
            Err(e) => return Err(e),
        }
        registry.file = Some(OpenOptions::new().append(true).create(true).open(&path)?);
        Ok(registry)
    }

    fn replay(&mut self, text: &str) -> io::Result<()> {
        let mut lines = text.lines();
        match lines.next() {
            None | Some("") => {} // empty file: treat as fresh
            Some(REGISTRY_HEADER) => {}
            Some(other) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unknown registry header {other:?} (expected {REGISTRY_HEADER:?})"),
                ));
            }
        }
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            if self.replay_line(line).is_none() {
                self.skipped_lines += 1;
            }
        }
        Ok(())
    }

    fn replay_line(&mut self, line: &str) -> Option<()> {
        let mut fields = line.split_whitespace();
        match fields.next()? {
            "code" => {
                let hash = u64::from_str_radix(fields.next()?, 16).ok()?;
                let p: usize = fields.next()?.parse().ok()?;
                let k: usize = fields.next()?.parse().ok()?;
                let rows: Vec<BitVec> = (0..p)
                    .map(|_| fields.next().and_then(|hex| row_from_hex(hex, k)))
                    .collect::<Option<_>>()?;
                let code = LinearCode::from_parity_submatrix(BitMatrix::from_rows(&rows)).ok()?;
                // The stored form must already be canonical and must hash
                // to its own key — otherwise the line is corrupt.
                if equivalence::canonical_hash(&code) != hash {
                    return None;
                }
                self.insert_code(code);
            }
            "job" => {
                let fingerprint: Fingerprint = fields.next()?.parse().ok()?;
                let tenant = fields.next()?.to_string();
                let outcome = match fields.next()? {
                    "unique" => {
                        let hash = u64::from_str_radix(fields.next()?, 16).ok()?;
                        let idx: usize = fields.next()?.parse().ok()?;
                        // The code line always precedes its job lines; the
                        // explicit bucket index keeps the reference exact
                        // even if two inequivalent codes collide on the
                        // 64-bit hash (bucket order is append order, which
                        // both replay and compaction preserve).
                        let entry = self.codes.get_mut(&hash)?.get_mut(idx)?;
                        if !entry.fingerprints.contains(&fingerprint) {
                            entry.fingerprints.push(fingerprint);
                        }
                        CodeOutcome::Unique(entry.code.clone())
                    }
                    "ambiguous" => CodeOutcome::Ambiguous {
                        count: fields.next()?.parse().ok()?,
                        truncated: fields.next()? == "1",
                    },
                    "inconsistent" => CodeOutcome::Inconsistent,
                    "exhausted" => CodeOutcome::BudgetExhausted {
                        reason: reason_from_str(fields.next()?)?,
                    },
                    _ => return None,
                };
                self.records.insert(
                    fingerprint,
                    JobRecord {
                        fingerprint,
                        tenant,
                        outcome,
                    },
                );
            }
            _ => return None,
        }
        Some(())
    }

    /// Inserts a canonical code into the in-memory index if absent;
    /// returns `(was_new, bucket index)`.
    fn insert_code(&mut self, code: LinearCode) -> (bool, usize) {
        let hash = equivalence::canonical_hash(&code);
        let bucket = self.codes.entry(hash).or_default();
        if let Some(idx) = bucket
            .iter()
            .position(|e| equivalence::equivalent(&e.code, &code))
        {
            return (false, idx);
        }
        bucket.push(CodeEntry {
            hash,
            code,
            fingerprints: Vec::new(),
        });
        self.code_count += 1;
        (true, bucket.len() - 1)
    }

    /// Records a completed job, appending to the log.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the append (in-memory state is updated
    /// regardless, so a full disk degrades durability, not service).
    pub fn record(
        &mut self,
        fingerprint: Fingerprint,
        tenant: &str,
        outcome: &CodeOutcome,
    ) -> io::Result<()> {
        let mut log = String::new();
        let outcome = match outcome {
            CodeOutcome::Unique(code) => {
                let canonical = equivalence::canonicalize(code);
                let hash = equivalence::canonical_hash(&canonical);
                let (was_new, idx) = self.insert_code(canonical.clone());
                if was_new {
                    log.push_str(&code_line(hash, &canonical));
                }
                let entry = &mut self.codes.get_mut(&hash).expect("just inserted")[idx];
                if !entry.fingerprints.contains(&fingerprint) {
                    entry.fingerprints.push(fingerprint);
                }
                log.push_str(&format!(
                    "job {fingerprint} {tenant} unique {hash:016x} {idx}\n"
                ));
                CodeOutcome::Unique(canonical)
            }
            CodeOutcome::Ambiguous { count, truncated } => {
                log.push_str(&format!(
                    "job {fingerprint} {tenant} ambiguous {count} {}\n",
                    u8::from(*truncated)
                ));
                outcome.clone()
            }
            CodeOutcome::Inconsistent => {
                log.push_str(&format!("job {fingerprint} {tenant} inconsistent\n"));
                outcome.clone()
            }
            CodeOutcome::BudgetExhausted { reason } => {
                log.push_str(&format!(
                    "job {fingerprint} {tenant} exhausted {}\n",
                    reason_to_str(*reason)
                ));
                outcome.clone()
            }
        };
        self.records.insert(
            fingerprint,
            JobRecord {
                fingerprint,
                tenant: tenant.to_string(),
                outcome,
            },
        );
        self.appended += 1;
        // A file-backed registry that lost its append handle (e.g. a
        // failed compaction) re-opens it here rather than silently
        // dropping durability.
        if self.file.is_none() {
            if let Some(path) = &self.path {
                self.file = Some(OpenOptions::new().append(true).create(true).open(path)?);
            }
        }
        if let Some(file) = &mut self.file {
            file.write_all(log.as_bytes())?;
            file.flush()?;
        }
        Ok(())
    }

    /// The record for a profile fingerprint, if one completed before.
    pub fn lookup_fingerprint(&self, fingerprint: Fingerprint) -> Option<&JobRecord> {
        self.records.get(&fingerprint)
    }

    /// The stored entry for a code equivalent to `code`, in O(1) via the
    /// canonical hash.
    pub fn lookup_code(&self, code: &LinearCode) -> Option<&CodeEntry> {
        self.codes
            .get(&equivalence::canonical_hash(code))?
            .iter()
            .find(|e| equivalence::equivalent(&e.code, code))
    }

    /// Every stored entry with the given canonical hash, in append order
    /// (more than one only on a 64-bit hash collision between
    /// inequivalent codes).
    pub fn lookup_hash(&self, hash: u64) -> &[CodeEntry] {
        self.codes.get(&hash).map_or(&[], Vec::as_slice)
    }

    /// Every stored code with codeword length `n` and dataword length `k`.
    pub fn lookup_dims(&self, n: usize, k: usize) -> Vec<&CodeEntry> {
        let mut out: Vec<&CodeEntry> = self
            .codes
            .values()
            .flatten()
            .filter(|e| e.code.n() == n && e.code.k() == k)
            .collect();
        out.sort_by_key(|e| e.hash);
        out
    }

    /// Number of stored job records.
    pub fn record_count(&self) -> usize {
        self.records.len()
    }

    /// Number of distinct stored codes (equivalence classes).
    pub fn code_count(&self) -> usize {
        self.code_count
    }

    /// Records appended since the last compaction (or open).
    pub fn appended_since_compact(&self) -> usize {
        self.appended
    }

    /// Corrupt lines skipped during the last replay.
    pub fn skipped_lines(&self) -> usize {
        self.skipped_lines
    }

    /// Rewrites the log as a minimal snapshot of the current state,
    /// atomically (temp file + rename). No-op for in-memory registries.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; the previous log stays intact on failure.
    pub fn compact(&mut self) -> io::Result<()> {
        let Some(path) = self.path.clone() else {
            self.appended = 0;
            return Ok(());
        };
        let mut snapshot = format!("{REGISTRY_HEADER}\n");
        let mut entries: Vec<&CodeEntry> = self.codes.values().flatten().collect();
        entries.sort_by_key(|e| e.hash);
        for entry in &entries {
            snapshot.push_str(&code_line(entry.hash, &entry.code));
        }
        let mut records: Vec<&JobRecord> = self.records.values().collect();
        records.sort_by_key(|r| r.fingerprint);
        for record in records {
            let JobRecord {
                fingerprint,
                tenant,
                outcome,
            } = record;
            match outcome {
                CodeOutcome::Unique(code) => {
                    let hash = equivalence::canonical_hash(code);
                    // Stable sort + flatten preserve bucket-internal
                    // (append) order, so the index survives the snapshot.
                    let idx = self
                        .codes
                        .get(&hash)
                        .and_then(|b| {
                            b.iter()
                                .position(|e| equivalence::equivalent(&e.code, code))
                        })
                        .expect("recorded code is indexed");
                    snapshot.push_str(&format!(
                        "job {fingerprint} {tenant} unique {hash:016x} {idx}\n"
                    ));
                }
                CodeOutcome::Ambiguous { count, truncated } => {
                    snapshot.push_str(&format!(
                        "job {fingerprint} {tenant} ambiguous {count} {}\n",
                        u8::from(*truncated)
                    ));
                }
                CodeOutcome::Inconsistent => {
                    snapshot.push_str(&format!("job {fingerprint} {tenant} inconsistent\n"));
                }
                CodeOutcome::BudgetExhausted { reason } => {
                    snapshot.push_str(&format!(
                        "job {fingerprint} {tenant} exhausted {}\n",
                        reason_to_str(*reason)
                    ));
                }
            }
        }
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, snapshot)?;
        self.file = None; // close the old append handle first
        let renamed = std::fs::rename(&tmp, &path);
        // Restore an append handle to whichever file now lives at `path` —
        // the new snapshot on success, the intact old log on failure — so
        // a failed compaction never silently drops later appends (record()
        // also re-opens lazily as a second line of defense).
        self.file = OpenOptions::new()
            .append(true)
            .create(true)
            .open(&path)
            .ok();
        renamed?;
        self.appended = 0;
        Ok(())
    }
}

fn code_line(hash: u64, code: &LinearCode) -> String {
    use std::fmt::Write as _;
    let p = code.parity_submatrix();
    let mut line = format!("code {hash:016x} {} {}", p.rows(), p.cols());
    for row in p.iter_rows() {
        let _ = write!(line, " {}", row_to_hex(row));
    }
    line.push('\n');
    line
}

/// Bits → hex nibbles, bit `j` at weight `1 << (j % 4)` of nibble `j / 4`.
fn row_to_hex(row: &BitVec) -> String {
    let mut s = String::with_capacity(row.len().div_ceil(4));
    for nib in 0..row.len().div_ceil(4) {
        let mut v = 0u32;
        for b in 0..4 {
            let i = nib * 4 + b;
            if i < row.len() && row.get(i) {
                v |= 1 << b;
            }
        }
        s.push(char::from_digit(v, 16).expect("nibble"));
    }
    s
}

fn row_from_hex(s: &str, k: usize) -> Option<BitVec> {
    if s.len() != k.div_ceil(4) {
        return None;
    }
    let mut row = BitVec::zeros(k);
    for (nib, c) in s.chars().enumerate() {
        let v = c.to_digit(16)?;
        for b in 0..4 {
            let i = nib * 4 + b;
            if v & (1 << b) != 0 {
                if i >= k {
                    return None; // padding bits must be zero
                }
                row.set(i, true);
            }
        }
    }
    Some(row)
}

fn reason_to_str(reason: BudgetReason) -> &'static str {
    match reason {
        BudgetReason::Deadline => "deadline",
        BudgetReason::Cancelled => "cancelled",
        BudgetReason::MaxFacts => "maxfacts",
        BudgetReason::MaxPatterns => "maxpatterns",
    }
}

fn reason_from_str(s: &str) -> Option<BudgetReason> {
    Some(match s {
        "deadline" => BudgetReason::Deadline,
        "cancelled" => BudgetReason::Cancelled,
        "maxfacts" => BudgetReason::MaxFacts,
        "maxpatterns" => BudgetReason::MaxPatterns,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use beer_ecc::hamming;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("beer_registry_{name}_{}", std::process::id()))
    }

    fn fp(n: u128) -> Fingerprint {
        Fingerprint(n)
    }

    #[test]
    fn row_hex_roundtrip_covers_odd_widths() {
        for k in [1, 4, 7, 11, 64, 91, 128] {
            let mut row = BitVec::zeros(k);
            for i in (0..k).step_by(3) {
                row.set(i, true);
            }
            let hex = row_to_hex(&row);
            assert_eq!(row_from_hex(&hex, k).expect("roundtrip"), row, "k={k}");
        }
        // Padding bits must be zero.
        assert!(row_from_hex("f", 2).is_none());
        assert!(row_from_hex("zz", 8).is_none());
    }

    #[test]
    fn persists_and_replays_across_reopen() {
        let path = temp_path("reopen");
        let _ = std::fs::remove_file(&path);
        let code = hamming::shortened(8);
        {
            let mut reg = Registry::open(&path).expect("open fresh");
            reg.record(fp(1), "alice", &CodeOutcome::Unique(code.clone()))
                .expect("record");
            reg.record(
                fp(2),
                "bob",
                &CodeOutcome::Ambiguous {
                    count: 3,
                    truncated: false,
                },
            )
            .expect("record");
            reg.record(fp(3), "bob", &CodeOutcome::Inconsistent)
                .expect("record");
        }
        let reg = Registry::open(&path).expect("reopen");
        assert_eq!(reg.record_count(), 3);
        assert_eq!(reg.code_count(), 1);
        assert_eq!(reg.skipped_lines(), 0);
        let rec = reg.lookup_fingerprint(fp(1)).expect("record survives");
        assert_eq!(rec.tenant, "alice");
        let recovered = rec.outcome.unique_code().expect("unique");
        assert!(equivalence::equivalent(recovered, &code));
        assert_eq!(
            reg.lookup_fingerprint(fp(2)).unwrap().outcome,
            CodeOutcome::Ambiguous {
                count: 3,
                truncated: false
            }
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn code_is_stored_once_across_equivalent_recoveries() {
        let mut reg = Registry::in_memory();
        let code = hamming::shortened(10);
        let relabeled = equivalence::permute_parity_rows(&code, &[3, 0, 2, 1]);
        reg.record(fp(10), "a", &CodeOutcome::Unique(code.clone()))
            .expect("record");
        reg.record(fp(11), "b", &CodeOutcome::Unique(relabeled))
            .expect("record");
        assert_eq!(reg.code_count(), 1, "equivalent codes share one entry");
        let entry = reg.lookup_code(&code).expect("by canonical equality");
        assert_eq!(entry.fingerprints, vec![fp(10), fp(11)]);
        assert_eq!(reg.lookup_dims(code.n(), code.k()).len(), 1);
        assert!(reg.lookup_dims(99, 98).is_empty());
    }

    #[test]
    fn corrupt_tail_is_skipped_not_fatal() {
        let path = temp_path("torn");
        let _ = std::fs::remove_file(&path);
        {
            let mut reg = Registry::open(&path).expect("open");
            reg.record(fp(7), "t", &CodeOutcome::Unique(hamming::shortened(8)))
                .expect("record");
        }
        // Simulate a crash mid-append: a torn job line and pure garbage.
        let mut text = std::fs::read_to_string(&path).expect("read");
        text.push_str("job deadbeef\n");
        text.push_str("???\n");
        std::fs::write(&path, &text).expect("write");

        let reg = Registry::open(&path).expect("reopen with torn tail");
        assert_eq!(reg.record_count(), 1, "intact records survive");
        assert_eq!(reg.skipped_lines(), 2, "torn lines are counted");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unknown_header_version_is_refused() {
        let path = temp_path("future");
        std::fs::write(&path, "beer-registry v9\n").expect("write");
        let err = match Registry::open(&path) {
            Err(e) => e,
            Ok(_) => panic!("future versions must not replay"),
        };
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn compact_produces_a_minimal_equivalent_snapshot() {
        let path = temp_path("compact");
        let _ = std::fs::remove_file(&path);
        let mut rng = StdRng::seed_from_u64(7);
        let codes: Vec<LinearCode> = (0..3).map(|_| hamming::random_sec(12, &mut rng)).collect();
        {
            let mut reg = Registry::open(&path).expect("open");
            // Every record appended twice (an upsert re-appends): the log
            // grows, the state doesn't — exactly what compaction reclaims.
            for round in 0..2 {
                for i in 0..20u128 {
                    let code = &codes[(i % 3) as usize];
                    reg.record(fp(100 + i), "t", &CodeOutcome::Unique(code.clone()))
                        .unwrap_or_else(|e| panic!("record round {round}: {e}"));
                }
            }
            assert_eq!(reg.appended_since_compact(), 40);
            let before = std::fs::metadata(&path).expect("meta").len();
            reg.compact().expect("compact");
            assert_eq!(reg.appended_since_compact(), 0);
            let after = std::fs::metadata(&path).expect("meta").len();
            assert!(after < before, "snapshot must shrink the log");
        }
        let reg = Registry::open(&path).expect("reopen snapshot");
        assert_eq!(reg.record_count(), 20);
        assert_eq!(reg.code_count(), codes.len());
        for code in &codes {
            assert!(reg.lookup_code(code).is_some());
        }
        let _ = std::fs::remove_file(&path);
    }
}
