//! 128-bit trace correlation ids.

use std::collections::hash_map::RandomState;
use std::hash::{BuildHasher, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

/// A 128-bit correlation id minted once at job submission and carried
/// with the job everywhere it goes — across the wire, through the
/// forwarding hop to the owning cluster node, into flight-recorder
/// events — so one id stitches a job's whole story together.
///
/// This is an *identifier*, not a capability or a secret: it is derived
/// from `RandomState` hasher entropy plus a process-local counter, which
/// makes collisions vanishingly unlikely across a cluster without
/// needing an OS entropy source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u128);

impl TraceId {
    /// Mints a fresh id. Distinct per call within a process (counter)
    /// and distinct across processes/nodes (per-process hasher keys).
    pub fn mint() -> TraceId {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let state = RandomState::new();
        let mut hi = state.build_hasher();
        hi.write_u64(n);
        hi.write_u64(0x9E37_79B9_7F4A_7C15);
        let mut lo = state.build_hasher();
        lo.write_u64(!n);
        lo.write_u64(0xC2B2_AE3D_27D4_EB4F);
        TraceId((u128::from(hi.finish()) << 64) | u128::from(lo.finish()))
    }
}

/// Renders as 32 lowercase hex digits — the form logged, exposed in
/// `QueryMetrics` text, and matched by tests.
impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn minted_ids_are_distinct() {
        let ids: HashSet<TraceId> = (0..1000).map(|_| TraceId::mint()).collect();
        assert_eq!(ids.len(), 1000);
    }

    #[test]
    fn display_is_32_hex_digits() {
        let rendered = TraceId::mint().to_string();
        assert_eq!(rendered.len(), 32);
        assert!(rendered.chars().all(|c| c.is_ascii_hexdigit()));
        assert_eq!(TraceId(0xABC).to_string(), format!("{:032x}", 0xABCu128));
    }
}
