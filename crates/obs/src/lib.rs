//! # `beer_obs` — observability for the BEER stack
//!
//! A std-only, zero-dependency observability layer shared by every tier
//! of the workspace:
//!
//! - [`Histogram`]: a lock-free log-bucketed latency histogram
//!   (power-of-two buckets with 8 sub-buckets each, so every quantile
//!   estimate carries at most 12.5% relative error). Snapshots are
//!   mergeable across threads and across nodes.
//! - [`MetricsRegistry`]: named atomic counters, gauges, and histograms
//!   with a stable text exposition. Handles are `Arc`s — grab them once
//!   on a hot path, never re-look-up by name per event.
//! - [`FlightRecorder`]: a fixed-size ring of recent structured events
//!   (admission, dispatch, forward, compaction, shed) so an operator can
//!   ask "what just happened on this node" without log scraping.
//! - [`TraceId`]: a 128-bit correlation id minted at submission and
//!   carried across forwarding hops, so one id names a job on the origin
//!   and owner nodes alike. A correlation id, **not** a secret: it is
//!   derived from hasher entropy and a process-local counter.
//!
//! The layer is deliberately boring: no global state, no macros, no
//! background threads. A service owns one [`MetricsRegistry`] and one
//! [`FlightRecorder`]; everything else borrows `Arc` handles.

mod histogram;
mod recorder;
mod registry;
mod trace;

pub use histogram::{Histogram, HistogramSnapshot, BUCKETS};
pub use recorder::{FlightEvent, FlightRecorder};
pub use registry::{Counter, Gauge, MetricsRegistry};
pub use trace::TraceId;
