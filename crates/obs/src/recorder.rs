//! The flight recorder: a bounded ring of recent structured events.

use crate::trace::TraceId;
use std::collections::VecDeque;
use std::sync::{Mutex, MutexGuard};
use std::time::Instant;

/// One recorded event. `seq` increases forever (so a poller can detect
/// how much it missed); `age_micros` is the event's age relative to the
/// recorder's creation, giving a stable per-node ordering without wall
/// clocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEvent {
    pub seq: u64,
    pub at_micros: u64,
    pub kind: &'static str,
    pub trace: Option<TraceId>,
    pub detail: String,
}

struct Ring {
    events: VecDeque<FlightEvent>,
    next_seq: u64,
}

/// A fixed-capacity, lock-guarded ring of recent [`FlightEvent`]s.
///
/// Recording is a short critical section (one `VecDeque` push and
/// possible pop); the ring never allocates past its capacity. One
/// recorder per node is the intended shape.
pub struct FlightRecorder {
    ring: Mutex<Ring>,
    start: Instant,
    capacity: usize,
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            ring: Mutex::new(Ring {
                events: VecDeque::with_capacity(capacity),
                next_seq: 0,
            }),
            start: Instant::now(),
            capacity,
        }
    }

    fn lock(&self) -> MutexGuard<'_, Ring> {
        self.ring.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Appends an event, evicting the oldest once full.
    pub fn record(&self, kind: &'static str, trace: Option<TraceId>, detail: impl Into<String>) {
        let at_micros = u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX);
        let mut ring = self.lock();
        let seq = ring.next_seq;
        ring.next_seq += 1;
        if ring.events.len() == self.capacity {
            ring.events.pop_front();
        }
        ring.events.push_back(FlightEvent {
            seq,
            at_micros,
            kind,
            trace,
            detail: detail.into(),
        });
    }

    /// The most recent `n` events, oldest first.
    pub fn tail(&self, n: usize) -> Vec<FlightEvent> {
        let ring = self.lock();
        let skip = ring.events.len().saturating_sub(n);
        ring.events.iter().skip(skip).cloned().collect()
    }

    /// Total events ever recorded (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.lock().next_seq
    }

    /// The tail as text, one event per line:
    /// `flight <seq> +<age>us <kind> trace=<id|-> <detail>`.
    pub fn render_tail(&self, n: usize) -> String {
        let mut out = String::new();
        for event in self.tail(n) {
            let trace = event
                .trace
                .map(|t| t.to_string())
                .unwrap_or_else(|| "-".to_string());
            out.push_str(&format!(
                "flight {} +{}us {} trace={} {}\n",
                event.seq, event.at_micros, event.kind, trace, event.detail
            ));
        }
        out
    }
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FlightRecorder(capacity {})", self.capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_only_the_tail() {
        let rec = FlightRecorder::new(3);
        for i in 0..5u64 {
            rec.record("tick", None, format!("event {i}"));
        }
        let tail = rec.tail(10);
        assert_eq!(tail.len(), 3);
        assert_eq!(
            tail.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
        assert_eq!(rec.recorded(), 5);
    }

    #[test]
    fn tail_is_bounded_by_request() {
        let rec = FlightRecorder::new(8);
        for _ in 0..8 {
            rec.record("shed", None, "queue full");
        }
        assert_eq!(rec.tail(2).len(), 2);
    }

    #[test]
    fn render_includes_trace_ids() {
        let rec = FlightRecorder::new(4);
        let id = TraceId(0xDEAD_BEEF);
        rec.record("forward", Some(id), "to node-b");
        rec.record("dispatch", None, "job 7");
        let text = rec.render_tail(4);
        assert!(text.contains(&format!("trace={id}")), "{text}");
        assert!(text.contains("trace=- job 7"), "{text}");
    }
}
