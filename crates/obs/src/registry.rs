//! Named metric handles with a stable text exposition.

use crate::histogram::Histogram;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable point-in-time value (queue depth, open connections, …).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Saturating decrement: a gauge never wraps below zero.
    pub fn dec(&self) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            });
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A get-or-create map of named metrics.
///
/// Registration takes a lock; recording does not (handles are `Arc`s to
/// lock-free atomics). Hot paths register once at startup and keep the
/// handle. Names are free-form but the convention is
/// `tier_series_unit` (`service_queue_wait_ns`, `net_forward_rtt_ns`);
/// the exposition sorts by name, so related series render adjacently.
#[derive(Default)]
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> MutexGuard<'_, BTreeMap<String, Metric>> {
        self.metrics.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns the counter named `name`, creating it on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind —
    /// that is a programming error, not a runtime condition.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        match self
            .lock()
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())))
        {
            Metric::Counter(c) => Arc::clone(c),
            other => panic!("metric {name:?} is a {}, not a counter", other.kind()),
        }
    }

    /// Returns the gauge named `name`, creating it on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        match self
            .lock()
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            other => panic!("metric {name:?} is a {}, not a gauge", other.kind()),
        }
    }

    /// Returns the histogram named `name`, creating it on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        match self
            .lock()
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            other => panic!("metric {name:?} is a {}, not a histogram", other.kind()),
        }
    }

    /// The full registry as text, one metric per line, sorted by name:
    ///
    /// ```text
    /// counter service_submitted_total 42
    /// gauge service_queued 3
    /// histogram service_queue_wait_ns count=41 sum=... p50=... p99=... max=...
    /// ```
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, metric) in self.lock().iter() {
            match metric {
                Metric::Counter(c) => {
                    out.push_str(&format!("counter {name} {}\n", c.get()));
                }
                Metric::Gauge(g) => {
                    out.push_str(&format!("gauge {name} {}\n", g.get()));
                }
                Metric::Histogram(h) => {
                    out.push_str(&format!("histogram {name} {}\n", h.snapshot().render()));
                }
            }
        }
        out
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MetricsRegistry({} metrics)", self.lock().len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared_by_name() {
        let reg = MetricsRegistry::new();
        reg.counter("jobs").inc();
        reg.counter("jobs").add(2);
        assert_eq!(reg.counter("jobs").get(), 3);

        reg.gauge("depth").set(7);
        reg.gauge("depth").inc();
        reg.gauge("depth").dec();
        assert_eq!(reg.gauge("depth").get(), 7);

        reg.histogram("lat").record(100);
        assert_eq!(reg.histogram("lat").count(), 1);
    }

    #[test]
    fn gauge_never_underflows() {
        let g = Gauge::default();
        g.dec();
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn render_is_sorted_and_typed() {
        let reg = MetricsRegistry::new();
        reg.gauge("b_gauge").set(5);
        reg.counter("a_counter").add(9);
        reg.histogram("c_hist").record(32);
        let text = reg.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "counter a_counter 9");
        assert_eq!(lines[1], "gauge b_gauge 5");
        assert!(lines[2].starts_with("histogram c_hist count=1 sum=32"));
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_collisions_are_loud() {
        let reg = MetricsRegistry::new();
        reg.counter("x").inc();
        reg.gauge("x");
    }
}
