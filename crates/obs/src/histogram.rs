//! Log-bucketed latency histogram with bounded quantile error.
//!
//! The bucket layout is HdrHistogram-style: values below 16 are exact
//! (one bucket per value); above that, each power-of-two range splits
//! into 8 sub-buckets, so a bucket's width is 1/8 of its lower bound and
//! any quantile estimate is within 12.5% of a true recorded value. 496
//! buckets cover the full `u64` range, so a histogram is ~4 KiB of
//! atomics — cheap enough to keep one per latency series per node.
//!
//! Recording is a single relaxed `fetch_add` per bucket plus the
//! count/sum/min/max atomics — no locks, safe from any thread. Reads go
//! through [`Histogram::snapshot`], which is a relaxed scan: snapshots
//! taken concurrently with writes are internally *approximately*
//! consistent (count may trail the buckets by in-flight increments),
//! which is fine for monitoring and exact once writers quiesce.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// log2 of the sub-bucket count per power-of-two range.
const SUB_BITS: u32 = 3;
/// Sub-buckets per power-of-two range.
const SUBS: usize = 1 << SUB_BITS;
/// Values below this index straight into their own bucket.
const LINEAR: u64 = (2 * SUBS) as u64;

/// Total bucket count: 16 exact buckets + 60 ranges × 8 sub-buckets.
pub const BUCKETS: usize = 2 * SUBS + (63 - SUB_BITS as usize) * SUBS;

/// Maps a value to its bucket index. Total over `u64`.
fn bucket_index(value: u64) -> usize {
    if value < LINEAR {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros(); // >= 4 here
    let shift = msb - SUB_BITS;
    let sub = ((value >> shift) & (SUBS as u64 - 1)) as usize;
    shift as usize * SUBS + sub + SUBS
}

/// The inclusive `[lower, upper]` value range a bucket covers.
fn bucket_bounds(index: usize) -> (u64, u64) {
    if (index as u64) < LINEAR {
        return (index as u64, index as u64);
    }
    let shift = ((index - SUBS) / SUBS) as u32;
    let sub = ((index - SUBS) % SUBS) as u64;
    let lower = (SUBS as u64 + sub) << shift;
    let upper = lower + ((1u64 << shift) - 1);
    (lower, upper)
}

/// A mergeable, lock-free latency histogram. See the module docs for the
/// bucket layout and consistency model.
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value. Lock-free; callable from any thread.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds (saturating past ~584 years).
    pub fn record_duration(&self, elapsed: Duration) {
        self.record(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Total values recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy suitable for merging and quantile queries.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        // Derive the count from the buckets so a snapshot is internally
        // consistent even when taken mid-record.
        let count = buckets.iter().sum();
        HistogramSnapshot {
            buckets,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An owned, mergeable copy of a [`Histogram`]'s state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    pub fn empty() -> Self {
        HistogramSnapshot {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value; 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value; 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of recorded values; 0 when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Folds another snapshot in. Associative and commutative, so
    /// per-thread or per-node histograms merge in any order.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        // Wrapping, matching the atomic `fetch_add` on the live sum:
        // merge(snapshot(a), snapshot(b)) must equal snapshot(a ∪ b)
        // bit-for-bit. Nanosecond latencies take ~584 years to wrap.
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The value at quantile `q` in `[0, 1]`: the upper bound of the
    /// bucket holding the rank-`⌈q·count⌉` value. Within 12.5% of a true
    /// recorded value, and monotone non-decreasing in `q`. Returns 0 for
    /// an empty snapshot.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (index, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Never report past the true maximum: the top bucket's
                // upper bound can overshoot a lone max by up to 12.5%.
                return bucket_bounds(index).1.min(self.max);
            }
        }
        self.max
    }

    /// One-line rendering used by the text exposition:
    /// `count=N sum=S min=m mean=a p50=x p90=y p99=z max=M`.
    pub fn render(&self) -> String {
        format!(
            "count={} sum={} min={} mean={} p50={} p90={} p99={} max={}",
            self.count,
            self.sum,
            self.min(),
            self.mean(),
            self.quantile(0.50),
            self.quantile(0.90),
            self.quantile(0.99),
            self.max()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 16);
        assert_eq!(s.min(), 0);
        assert_eq!(s.max(), 15);
        // Below LINEAR every bucket holds exactly its own value.
        for v in 0..16 {
            assert_eq!(bucket_bounds(bucket_index(v)), (v, v));
        }
    }

    #[test]
    fn bucket_bounds_invert_bucket_index() {
        let probes = [
            0u64,
            1,
            15,
            16,
            17,
            100,
            1000,
            65_535,
            1 << 20,
            (1 << 40) + 12345,
            u64::MAX - 1,
            u64::MAX,
        ];
        for &v in &probes {
            let idx = bucket_index(v);
            let (lower, upper) = bucket_bounds(idx);
            assert!(lower <= v && v <= upper, "{v} outside [{lower}, {upper}]");
            // Bucket width never exceeds 1/8 of its lower bound.
            if v >= LINEAR {
                assert!(upper - lower <= lower / SUBS as u64);
            }
        }
        // Adjacent buckets tile the value space with no gaps.
        for idx in 0..BUCKETS - 1 {
            let (_, upper) = bucket_bounds(idx);
            let (next_lower, _) = bucket_bounds(idx + 1);
            assert_eq!(upper + 1, next_lower, "gap after bucket {idx}");
        }
        assert_eq!(bucket_bounds(BUCKETS - 1).1, u64::MAX);
    }

    #[test]
    fn quantiles_track_a_known_distribution() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        let p50 = s.quantile(0.5);
        let p99 = s.quantile(0.99);
        assert!((450..=563).contains(&p50), "p50={p50}");
        assert!((900..=1000).contains(&p99), "p99={p99}");
        assert_eq!(s.quantile(0.0), 1);
        assert_eq!(s.quantile(1.0), 1000);
        assert_eq!(s.mean(), 500);
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for v in 0..500u64 {
            let x = v.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 20;
            if v % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
            all.record(x);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, all.snapshot());
    }

    #[test]
    fn empty_snapshot_is_all_zeroes() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.min(), 0);
        assert_eq!(s.max(), 0);
        assert_eq!(s.mean(), 0);
        assert_eq!(s.quantile(0.99), 0);
    }
}
