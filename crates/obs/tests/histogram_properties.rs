//! Property tests for the log-bucketed histogram: the three invariants
//! monitoring correctness rests on.
//!
//! 1. **Merge associativity** — per-thread / per-node snapshots merge to
//!    the same aggregate whatever the merge tree looks like.
//! 2. **Quantile monotonicity** — `quantile(q)` is non-decreasing in `q`
//!    (a p99 below the p50 would make every dashboard lie).
//! 3. **Bucket bounds** — a quantile estimate is always within the
//!    bucket bounds of some actually-recorded value: at most 12.5%
//!    relative error above, never below the true rank value's bucket.

use beer_obs::{Histogram, HistogramSnapshot};
use proptest::prelude::*;

/// xorshift64* — same deterministic generator idiom the wire property
/// tests use; the vendored proptest has no collection-of-u64 shrinking.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Values spanning many magnitudes: a random bit-width keeps small
    /// and huge values equally likely instead of almost-always-huge.
    fn value(&mut self) -> u64 {
        let bits = self.next() % 64;
        self.next() >> bits
    }

    fn values(&mut self, n: usize) -> Vec<u64> {
        (0..n).map(|_| self.value()).collect()
    }
}

fn snapshot_of(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    #[test]
    fn merge_is_associative_and_order_free(seed in any::<u64>(), n in 1usize..120) {
        let mut g = Gen(seed | 1);
        let a = snapshot_of(&g.values(n));
        let b = snapshot_of(&g.values(n / 2 + 1));
        let c = snapshot_of(&g.values(n / 3 + 1));

        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right);

        // and commutative: c ⊕ b ⊕ a
        let mut rev = c.clone();
        rev.merge(&b);
        rev.merge(&a);
        prop_assert_eq!(&left, &rev);

        prop_assert_eq!(left.count(), a.count() + b.count() + c.count());
    }

    #[test]
    fn quantiles_are_monotone_in_q(seed in any::<u64>(), n in 1usize..200) {
        let mut g = Gen(seed | 1);
        let s = snapshot_of(&g.values(n));
        let mut last = 0u64;
        for step in 0..=20 {
            let q = step as f64 / 20.0;
            let v = s.quantile(q);
            prop_assert!(v >= last, "quantile({q}) = {v} < {last}");
            last = v;
        }
        prop_assert!(last <= s.max());
    }

    #[test]
    fn quantile_matches_true_rank_within_bucket_error(seed in any::<u64>(), n in 1usize..200) {
        let mut g = Gen(seed | 1);
        let mut values = g.values(n);
        let s = snapshot_of(&values);
        values.sort_unstable();
        for step in 0..=10 {
            let q = step as f64 / 10.0;
            let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
            let truth = values[rank - 1];
            let estimate = s.quantile(q);
            // The estimate is a bucket upper bound: never below the true
            // rank value, and at most 1/8 (plus one for the exact-bucket
            // region) above it.
            prop_assert!(estimate >= truth, "quantile({q}) = {estimate} < true {truth}");
            prop_assert!(
                estimate - truth <= truth / 8 + 1,
                "quantile({q}) = {estimate} overshoots true {truth}"
            );
        }
    }

    #[test]
    fn min_max_sum_survive_merges(seed in any::<u64>(), n in 1usize..100) {
        let mut g = Gen(seed | 1);
        let xs = g.values(n);
        let ys = g.values(n);
        let mut merged = snapshot_of(&xs);
        merged.merge(&snapshot_of(&ys));
        let all: Vec<u64> = xs.iter().chain(&ys).copied().collect();
        prop_assert_eq!(merged.min(), *all.iter().min().unwrap());
        prop_assert_eq!(merged.max(), *all.iter().max().unwrap());
        let direct = snapshot_of(&all);
        prop_assert_eq!(&merged, &direct);
    }
}
