//! Property tests for the timing subsystem: the three invariants the
//! campaign-costing story rests on.
//!
//! 1. **Earliest-legal-cycle honoring** — replaying a controller's command
//!    log through an independent gate checker (built directly on
//!    [`BankState`]) shows no command ever issued before the constraints
//!    implied by the logged history. Auto-injected refresh only pushes
//!    gates *later*, so the logged-history gates are a sound lower bound.
//! 2. **Window/retention monotonicity** — a longer refresh-paused wait
//!    yields a longer emergent window, and the error set of the longer
//!    window is a superset of the shorter one's under the retention model
//!    (the §5.1 sweep's correctness condition).
//! 3. **Cycle determinism** — the same command stream executed twice
//!    produces bit-identical cycle counts and stats; cost estimation via
//!    [`beer_timing::trial_cost`] is a pure function of its inputs.

use beer_timing::{
    trial_cost, ArrayGeometry, BankState, Command, IssuedCommand, MemController, TimingParams,
};
use proptest::prelude::*;

/// xorshift64* — the workspace's deterministic generator idiom for
/// property tests (the vendored proptest has no collection shrinking).
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn params_for(seed: u64) -> TimingParams {
    match seed % 3 {
        0 => TimingParams::ddr4_2400(),
        1 => TimingParams::ddr4_3200(),
        _ => TimingParams::lpddr4_3200(),
    }
}

/// Drives a protocol-legal random command stream (tracking open rows so
/// every command is legal in the current state) and returns the log.
fn random_stream(ctrl: &mut MemController, g: &mut Gen, commands: usize) -> Vec<IssuedCommand> {
    ctrl.record_log(true);
    let banks = ctrl.banks();
    for _ in 0..commands {
        let bank = g.below(banks as u64) as usize;
        match g.below(8) {
            // Idle time between bursts of activity, sometimes spanning a
            // tREFI so auto-refresh interleaves with the stream.
            0 => ctrl.wait_cycles(g.below(2 * ctrl.params().trefi)),
            1 if !ctrl.is_open(bank) && ctrl.banks() > 0 => {
                ctrl.issue(Command::RefAb).ok();
            }
            _ => {
                if ctrl.is_open(bank) {
                    match g.below(3) {
                        0 => ctrl.issue(Command::Rd { bank }).map(|_| ()),
                        1 => ctrl.issue(Command::Wr { bank }).map(|_| ()),
                        _ => ctrl.issue(Command::Pre { bank }).map(|_| ()),
                    }
                    .expect("command legal for an open row");
                } else {
                    let row = g.below(64) as usize;
                    ctrl.issue(Command::Act { bank, row })
                        .expect("ACT legal for an idle bank");
                }
            }
        }
    }
    ctrl.issue_log().to_vec()
}

/// Independent earliest-legal-cycle checker: replays a log through fresh
/// [`BankState`] machines plus the global tCCD/tRRD gates and asserts
/// every command issued at or after the gates the logged history implies.
fn assert_log_honors_constraints(log: &[IssuedCommand], p: &TimingParams, banks: usize) {
    let mut bank_state = vec![BankState::new(); banks];
    let mut next_col_ok = 0u64;
    let mut next_act_ok = 0u64;
    let mut prev = None::<u64>;
    for ic in log {
        let t = ic.issued_at;
        if let Some(prev) = prev {
            assert!(t > prev, "command bus collision: {t} after {prev}");
        }
        prev = Some(t);
        match ic.command {
            Command::Act { bank, row } => {
                assert!(
                    t >= bank_state[bank].earliest_act,
                    "ACT before tRC/tRP/tRFC"
                );
                assert!(t >= next_act_ok, "ACT before tRRD");
                bank_state[bank].apply_act(t, row, p);
                next_act_ok = t + p.trrd;
            }
            Command::Rd { bank } => {
                assert!(t >= bank_state[bank].earliest_col, "RD before tRCD");
                assert!(t >= next_col_ok, "RD before tCCD");
                bank_state[bank].apply_rd(t, p);
                next_col_ok = t + p.tccd;
            }
            Command::Wr { bank } => {
                assert!(t >= bank_state[bank].earliest_col, "WR before tRCD");
                assert!(t >= next_col_ok, "WR before tCCD");
                bank_state[bank].apply_wr(t, p);
                next_col_ok = t + p.tccd;
            }
            Command::Pre { bank } => {
                assert!(
                    t >= bank_state[bank].earliest_pre,
                    "PRE before tRAS/tWR/tRTP"
                );
                bank_state[bank].apply_pre(t, p);
            }
            Command::PreAll => {
                for b in &mut bank_state {
                    if b.open_row().is_some() {
                        assert!(t >= b.earliest_pre, "PREab before a bank's tRAS");
                        b.apply_pre(t, p);
                    }
                }
            }
            Command::Ref { bank } => {
                assert!(t >= bank_state[bank].earliest_act, "REF before bank idle");
                bank_state[bank].earliest_act = t + p.trfc;
            }
            Command::RefAb => {
                for b in &mut bank_state {
                    assert!(t >= b.earliest_act, "REFab before all banks idle");
                    b.earliest_act = t + p.trfc;
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Invariant 1: no command in a random protocol-legal stream issues
    /// before the earliest legal cycle its logged history implies.
    #[test]
    fn random_streams_honor_earliest_legal_cycles(seed in any::<u64>()) {
        let mut g = Gen(seed | 1);
        let params = params_for(g.next());
        let banks = 1 + g.below(4) as usize;
        let mut ctrl = MemController::new(params, banks);
        let log = random_stream(&mut ctrl, &mut g, 200);
        prop_assert!(!log.is_empty());
        assert_log_honors_constraints(&log, &params, banks);
    }

    /// Invariant 2a: the emergent refresh window is monotone in the
    /// requested wait and always covers it.
    #[test]
    fn emergent_window_is_monotone_in_request(seed in any::<u64>()) {
        let mut g = Gen(seed | 1);
        let params = params_for(g.next());
        // Windows from microseconds to minutes, as the §5.1 sweep uses.
        let short = 1e-6 * (1.0 + g.below(1_000_000) as f64);
        let long = short * (1.0 + g.below(100) as f64 / 10.0);
        let mut a = MemController::new(params, 2);
        let mut b = MemController::new(params, 2);
        let wa = a.refresh_paused_wait(short).unwrap();
        let wb = b.refresh_paused_wait(long).unwrap();
        prop_assert!(wa >= short);
        prop_assert!(wb >= long);
        prop_assert!(wb >= wa, "longer request produced a shorter window");
    }

    /// Invariant 2b: under the retention model, the error set of a longer
    /// executed window contains the error set of a shorter one — the
    /// monotonicity the refresh-window sweep's interpretation needs.
    #[test]
    fn longer_executed_windows_grow_the_error_set(seed in any::<u64>()) {
        let mut g = Gen(seed | 1);
        let params = TimingParams::ddr4_3200();
        let model = beer_dram::RetentionModel::paper_calibrated(g.next());
        let celsius = 40.0 + g.below(55) as f64;
        let short = model.window_for_ber(1e-3, celsius);
        let long = model.window_for_ber(0.1, celsius);
        let mut a = MemController::new(params, 2);
        let mut b = MemController::new(params, 2);
        let wa = a.refresh_paused_wait(short).unwrap();
        let wb = b.refresh_paused_wait(long).unwrap();
        prop_assert!(wb > wa);
        let mut grew = 0u32;
        for _ in 0..512 {
            let cell = g.next();
            let fails_short = model.fails(cell, wa, celsius);
            let fails_long = model.fails(cell, wb, celsius);
            prop_assert!(
                !fails_short || fails_long,
                "cell {cell} failed the short window but survived the long one"
            );
            if !fails_short && fails_long {
                grew += 1;
            }
        }
        prop_assert!(grew > 0, "the longer window added no errors at all");
    }

    /// Invariant 3: identical command streams produce bit-identical
    /// simulated cycle counts and stats, and trial costing is pure.
    #[test]
    fn simulated_cycle_counts_are_deterministic(seed in any::<u64>()) {
        let params = params_for(seed);
        let banks = 1 + (seed % 4) as usize;
        let mut first = MemController::new(params, banks);
        let mut second = MemController::new(params, banks);
        let log_a = random_stream(&mut first, &mut Gen(seed | 1), 150);
        let log_b = random_stream(&mut second, &mut Gen(seed | 1), 150);
        prop_assert_eq!(log_a, log_b);
        prop_assert_eq!(first.now_cycles(), second.now_cycles());
        prop_assert_eq!(first.stats(), second.stats());
        prop_assert_eq!(first.elapsed_ns(), second.elapsed_ns());

        let geom = ArrayGeometry {
            banks,
            rows_per_bank: 4 + (seed % 8) as usize,
            bytes_per_row: 128,
        };
        let window = 1e-3 * (1 + seed % 500) as f64;
        let c1 = trial_cost(&params, &geom, window);
        let c2 = trial_cost(&params, &geom, window);
        prop_assert_eq!(c1, c2);
    }
}
