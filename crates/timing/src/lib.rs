//! `beer_timing` — cycle-accurate DDR4-style command/timing model for
//! costing BEER profiling campaigns.
//!
//! The BEER methodology (Patel et al., MICRO 2020) prices its experiments
//! in *DRAM time*: every retention trial pins the array for a full refresh
//! window — seconds to tens of minutes — while the host-side solve takes
//! milliseconds. This crate makes that cost a first-class, executed
//! quantity instead of a back-of-envelope estimate:
//!
//! - [`TimingParams`] holds one speed bin's constraint table
//!   (tRCD/tRP/tRAS/tRC, tCCD/tRRD, tWR/tRTP, CL/CWL, tRFC/tREFI) in
//!   integer clock cycles over an integer picosecond clock, so all
//!   simulated durations are exact and deterministic.
//! - [`MemController`] executes command streams ([`Command`]) against
//!   per-bank state machines ([`BankState`]) under *execute-and-stall*
//!   semantics: issuing a command advances simulated time to its
//!   earliest-legal cycle; there is no side-effect-free "what would this
//!   cost" query, so estimation and execution can never disagree.
//! - Refresh is part of the stream: the controller injects `REFab` every
//!   tREFI while enabled, and a retention trial's refresh window is the
//!   *emergent* time measured between [`MemController::pause_refresh`] and
//!   [`MemController::resume_refresh`] — the error profile and the
//!   simulated nanoseconds of a trial come from the same execution.
//! - [`campaign`] builds the §5.1 trial streams (program sweep →
//!   refresh-paused decay → readback sweep) and prices plans by executing
//!   them on scratch controllers ([`trial_cost`], [`plan_cost_ns`]).
//!
//! `beer_core` wraps this into `TimedChipBackend` (a `ProfileSource` that
//! meters simulated wall-clock per unit) and a cost-aware pattern
//! scheduler; this crate depends only on `beer_dram` for geometry.

pub mod bank;
pub mod campaign;
pub mod controller;
pub mod params;

pub use bank::{BankPhase, BankState};
pub use campaign::{
    execute_trial, plan_cost_ns, sweep_read, sweep_write, trial_cost, ArrayGeometry, TrialCost,
};
pub use controller::{
    Command, ControllerStats, IssueInfo, IssuedCommand, MemController, TimingError,
};
pub use params::TimingParams;
