//! The DRAM timing-parameter table: clock period, bank/column/refresh
//! constraints, and burst shape for one speed bin.
//!
//! All constraints are stored in whole controller clock cycles against an
//! integer clock period in picoseconds, so every simulated duration the
//! controller reports is exact integer arithmetic — two runs of the same
//! command stream produce the same cycle count, bit for bit.

/// Timing constraints of one DRAM speed bin, in controller clock cycles.
///
/// The table covers the constraints a BEER campaign actually exercises:
/// the bank-state constraints (`tRCD`/`tRP`/`tRAS`/`tRC`), the column and
/// activate pacing constraints (`tCCD`/`tRRD`), write recovery and
/// read-to-precharge (`tWR`/`tRTP`), CAS latencies (`CL`/`CWL`), and the
/// refresh constraints (`tRFC`/`tREFI`). Values are datasheet-shaped, not
/// vendor-exact — the model's purpose is faithful *relative* cost, and the
/// constants are labeled per speed bin so absolute numbers are auditable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimingParams {
    /// Clock period in picoseconds (integer, so cycle→time is exact).
    pub tck_ps: u64,
    /// ACT → column command (RAS-to-CAS delay).
    pub trcd: u64,
    /// PRE → ACT (row precharge).
    pub trp: u64,
    /// ACT → PRE (row active minimum).
    pub tras: u64,
    /// ACT → ACT, same bank (row cycle).
    pub trc: u64,
    /// Column command → column command (any bank).
    pub tccd: u64,
    /// ACT → ACT, different banks.
    pub trrd: u64,
    /// WR data end → PRE (write recovery).
    pub twr: u64,
    /// RD → PRE (read to precharge).
    pub trtp: u64,
    /// RD → first data beat (CAS latency).
    pub cl: u64,
    /// WR → first data beat (CAS write latency).
    pub cwl: u64,
    /// REFab busy time (refresh cycle).
    pub trfc: u64,
    /// Average periodic refresh interval.
    pub trefi: u64,
    /// Clock cycles one data burst occupies on the bus.
    pub burst_cycles: u64,
    /// Bytes transferred per burst (bus width × burst length).
    pub burst_bytes: usize,
}

impl TimingParams {
    /// DDR4-2400 (tCK = 833 ps), 8 Gb-class tRFC.
    pub fn ddr4_2400() -> Self {
        TimingParams {
            tck_ps: 833,
            trcd: 17, // 14.2 ns
            trp: 17,
            tras: 39, // 32.5 ns
            trc: 56,
            tccd: 6,
            trrd: 6,
            twr: 18, // 15 ns
            trtp: 9, // 7.5 ns
            cl: 17,
            cwl: 12,
            trfc: 420,   // 350 ns
            trefi: 9363, // 7.8 µs
            burst_cycles: 4,
            burst_bytes: 32,
        }
    }

    /// DDR4-3200 (tCK = 625 ps), 8 Gb-class tRFC. The default bin.
    pub fn ddr4_3200() -> Self {
        TimingParams {
            tck_ps: 625,
            trcd: 22, // 13.75 ns
            trp: 22,
            tras: 52, // 32.5 ns
            trc: 74,
            tccd: 8,
            trrd: 8,
            twr: 24,  // 15 ns
            trtp: 12, // 7.5 ns
            cl: 22,
            cwl: 16,
            trfc: 560,    // 350 ns
            trefi: 12480, // 7.8 µs
            burst_cycles: 4,
            burst_bytes: 32,
        }
    }

    /// LPDDR4-3200 (tCK = 625 ps), the mobile bin of the paper's §5.1
    /// test infrastructure: slower core timings, shorter per-command
    /// refresh (more frequent tREFI), BL16 bursts.
    pub fn lpddr4_3200() -> Self {
        TimingParams {
            tck_ps: 625,
            trcd: 29, // 18 ns
            trp: 34,  // 21 ns
            tras: 68, // 42.5 ns
            trc: 102,
            tccd: 8,
            trrd: 16, // 10 ns
            twr: 29,  // 18 ns
            trtp: 12,
            cl: 28,
            cwl: 14,
            trfc: 288,       // 180 ns
            trefi: 6240,     // 3.9 µs
            burst_cycles: 8, // BL16
            burst_bytes: 32,
        }
    }

    /// Validates the table's internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if any constraint is zero, `tRAS + tRP > tRC` (a row cycle
    /// must cover activation plus precharge), or `tREFI <= tRFC` (refresh
    /// would consume the whole schedule).
    pub fn validate(&self) {
        assert!(self.tck_ps > 0, "clock period must be positive");
        for (name, v) in [
            ("tRCD", self.trcd),
            ("tRP", self.trp),
            ("tRAS", self.tras),
            ("tRC", self.trc),
            ("tCCD", self.tccd),
            ("tRRD", self.trrd),
            ("tWR", self.twr),
            ("tRTP", self.trtp),
            ("CL", self.cl),
            ("CWL", self.cwl),
            ("tRFC", self.trfc),
            ("tREFI", self.trefi),
            ("burst", self.burst_cycles),
        ] {
            assert!(v > 0, "{name} must be positive");
        }
        assert!(self.burst_bytes > 0, "burst_bytes must be positive");
        assert!(
            self.tras + self.trp <= self.trc,
            "tRC must cover tRAS + tRP"
        );
        assert!(self.trefi > self.trfc, "tREFI must exceed tRFC");
    }

    /// Exact picoseconds of `cycles` clock cycles.
    pub fn cycles_to_ps(&self, cycles: u64) -> u128 {
        cycles as u128 * self.tck_ps as u128
    }

    /// Nanoseconds of `cycles` clock cycles (rounded down; exact when the
    /// product lands on a nanosecond boundary).
    pub fn cycles_to_ns(&self, cycles: u64) -> u64 {
        (self.cycles_to_ps(cycles) / 1000) as u64
    }

    /// Seconds of `cycles` clock cycles.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        self.cycles_to_ps(cycles) as f64 / 1e12
    }

    /// Smallest whole cycle count covering `seconds` (the quantization a
    /// real controller applies to any requested wait).
    ///
    /// # Panics
    ///
    /// Panics if `seconds` is negative or not finite.
    pub fn cycles_for_seconds(&self, seconds: f64) -> u64 {
        assert!(
            seconds.is_finite() && seconds >= 0.0,
            "wait must be a finite non-negative duration"
        );
        let ps = seconds * 1e12;
        let cycles = (ps / self.tck_ps as f64).ceil();
        cycles as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speed_bins_validate() {
        TimingParams::ddr4_2400().validate();
        TimingParams::ddr4_3200().validate();
        TimingParams::lpddr4_3200().validate();
    }

    #[test]
    fn cycle_time_roundtrip_is_exact_enough() {
        let p = TimingParams::ddr4_3200();
        // A requested window is covered by the quantized cycle count and
        // overshoots by less than one clock period.
        for &secs in &[1e-6, 0.5, 120.0, 1320.0] {
            let cycles = p.cycles_for_seconds(secs);
            let covered = p.cycles_to_seconds(cycles);
            assert!(covered >= secs - 1e-12 * secs, "{covered} < {secs}");
            assert!(covered - secs < 2.0 * p.tck_ps as f64 / 1e12);
        }
    }

    #[test]
    #[should_panic(expected = "tRC must cover")]
    fn inconsistent_row_cycle_is_rejected() {
        let mut p = TimingParams::ddr4_3200();
        p.trc = p.tras; // no room for tRP
        p.validate();
    }
}
