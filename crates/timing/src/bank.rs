//! Per-bank state machine: one DRAM bank's row state and its
//! earliest-legal-cycle gates.
//!
//! ```text
//!            ACT (>= earliest_act)
//!   ┌──────┐ ─────────────────────▶ ┌──────────────┐
//!   │ Idle │                        │ Active{row}  │──┐ RD/WR
//!   └──────┘ ◀───────────────────── └──────────────┘◀─┘ (>= earliest_col)
//!            PRE (>= earliest_pre)
//! ```
//!
//! The gates are *absolute cycle numbers*, updated when a command is
//! applied: an `ACT` at cycle `t` sets `earliest_col = t + tRCD`,
//! `earliest_pre = t + tRAS`, `earliest_act = t + tRC`; a `WR` pushes
//! `earliest_pre` out to cover write recovery; a `PRE` pushes
//! `earliest_act` to `t + tRP`. The controller stalls every command to the
//! maximum of its bank gates and the global pacing gates (`tCCD`/`tRRD`),
//! so by construction no command is ever applied before its
//! earliest-legal cycle — the property `timing_properties.rs` replays
//! command logs to verify.

use crate::params::TimingParams;

/// Row state of one bank.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BankPhase {
    /// No row open; only ACT (or REFab, across all banks) is legal.
    Idle,
    /// A row is open; RD/WR/PRE are legal.
    Active {
        /// The open row (within the bank).
        row: usize,
    },
}

/// One bank's state machine: its phase and earliest-legal-cycle gates.
#[derive(Clone, Copy, Debug)]
pub struct BankState {
    /// Current row state.
    pub phase: BankPhase,
    /// Earliest cycle an ACT to this bank may issue (tRC / tRP / tRFC).
    pub earliest_act: u64,
    /// Earliest cycle a RD/WR to this bank may issue (tRCD).
    pub earliest_col: u64,
    /// Earliest cycle a PRE of this bank may issue (tRAS / tWR / tRTP).
    pub earliest_pre: u64,
}

impl BankState {
    /// A bank at power-up: idle, every command legal immediately.
    pub fn new() -> Self {
        BankState {
            phase: BankPhase::Idle,
            earliest_act: 0,
            earliest_col: 0,
            earliest_pre: 0,
        }
    }

    /// The open row, if any.
    pub fn open_row(&self) -> Option<usize> {
        match self.phase {
            BankPhase::Active { row } => Some(row),
            BankPhase::Idle => None,
        }
    }

    /// Applies an ACT issued at cycle `t`.
    pub fn apply_act(&mut self, t: u64, row: usize, p: &TimingParams) {
        self.phase = BankPhase::Active { row };
        self.earliest_col = t + p.trcd;
        self.earliest_pre = self.earliest_pre.max(t + p.tras);
        self.earliest_act = self.earliest_act.max(t + p.trc);
    }

    /// Applies a RD issued at cycle `t`.
    pub fn apply_rd(&mut self, t: u64, p: &TimingParams) {
        self.earliest_pre = self.earliest_pre.max(t + p.trtp);
    }

    /// Applies a WR issued at cycle `t`: the row must stay open through
    /// the write burst plus write recovery.
    pub fn apply_wr(&mut self, t: u64, p: &TimingParams) {
        self.earliest_pre = self.earliest_pre.max(t + p.cwl + p.burst_cycles + p.twr);
    }

    /// Applies a PRE issued at cycle `t`.
    pub fn apply_pre(&mut self, t: u64, p: &TimingParams) {
        self.phase = BankPhase::Idle;
        self.earliest_act = self.earliest_act.max(t + p.trp);
    }
}

impl Default for BankState {
    fn default() -> Self {
        BankState::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn act_opens_and_gates() {
        let p = TimingParams::ddr4_3200();
        let mut b = BankState::new();
        b.apply_act(100, 7, &p);
        assert_eq!(b.open_row(), Some(7));
        assert_eq!(b.earliest_col, 100 + p.trcd);
        assert_eq!(b.earliest_pre, 100 + p.tras);
        assert_eq!(b.earliest_act, 100 + p.trc);
    }

    #[test]
    fn write_recovery_extends_precharge_gate() {
        let p = TimingParams::ddr4_3200();
        let mut b = BankState::new();
        b.apply_act(0, 0, &p);
        let wr_at = p.trcd;
        b.apply_wr(wr_at, &p);
        assert_eq!(
            b.earliest_pre,
            (p.tras).max(wr_at + p.cwl + p.burst_cycles + p.twr)
        );
        b.apply_pre(b.earliest_pre, &p);
        assert_eq!(b.open_row(), None);
    }
}
