//! BEER campaign command streams: what one §5.1 retention trial costs.
//!
//! One profiling trial on hardware is three phases of commands:
//!
//! 1. **Program** the full array — per row: `ACT`, one `WR` burst per
//!    column, `PRE` (bank-interleaved so tRRD, not tRC, paces the sweep),
//!    with refresh enabled (the controller pays tRFC every tREFI).
//! 2. **Decay** — pause refresh and idle for the plan's refresh window.
//!    The window that reaches the retention model is the *emergent* one:
//!    however long the stream actually spent paused, quantized to whole
//!    clock cycles ([`MemController::refresh_paused_wait`]).
//! 3. **Read back** the full array — the same sweep with `RD` bursts.
//!
//! Everything here *executes* streams on a controller — estimation runs
//! the same code on a scratch controller ([`trial_cost`], [`plan_cost_ns`])
//! instead of evaluating a latency formula, keeping the execute-and-stall
//! contract: there is exactly one cost model, the executed one.

use crate::controller::{Command, MemController, TimingError};
use crate::params::TimingParams;

/// The array shape a campaign sweeps, in controller terms.
///
/// Mirrors [`beer_dram::Geometry`] (see [`ArrayGeometry::of_chip`]); kept
/// structural so the crate can also model devices that exist only as a
/// timing table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ArrayGeometry {
    /// Banks in the device.
    pub banks: usize,
    /// Rows per bank.
    pub rows_per_bank: usize,
    /// Data bytes per row.
    pub bytes_per_row: usize,
}

impl ArrayGeometry {
    /// The controller-facing shape of a [`beer_dram`] chip.
    pub fn of_chip(geometry: &beer_dram::Geometry) -> Self {
        ArrayGeometry {
            banks: geometry.banks(),
            rows_per_bank: geometry.rows_per_bank(),
            bytes_per_row: geometry.bytes_per_row(),
        }
    }

    /// Bursts needed to cover one row under `params`.
    ///
    /// # Panics
    ///
    /// Panics if the row size is not a whole number of bursts.
    pub fn bursts_per_row(&self, params: &TimingParams) -> usize {
        assert!(
            self.bytes_per_row.is_multiple_of(params.burst_bytes),
            "row of {} bytes is not a whole number of {}-byte bursts",
            self.bytes_per_row,
            params.burst_bytes
        );
        self.bytes_per_row / params.burst_bytes
    }
}

/// Which column command a sweep issues.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SweepKind {
    Write,
    Read,
}

/// Sweeps the full array once, bank-interleaved: for each row index, every
/// bank is activated (paced by tRRD), its row's bursts issued (paced by
/// tCCD), and the row precharged.
fn sweep(
    ctrl: &mut MemController,
    geom: &ArrayGeometry,
    kind: SweepKind,
) -> Result<(), TimingError> {
    let bursts = geom.bursts_per_row(ctrl.params());
    for row in 0..geom.rows_per_bank {
        for bank in 0..geom.banks {
            ctrl.issue(Command::Act { bank, row })?;
        }
        for bank in 0..geom.banks {
            for _ in 0..bursts {
                ctrl.issue(match kind {
                    SweepKind::Write => Command::Wr { bank },
                    SweepKind::Read => Command::Rd { bank },
                })?;
            }
        }
        for bank in 0..geom.banks {
            ctrl.issue(Command::Pre { bank })?;
        }
    }
    ctrl.drain_data();
    Ok(())
}

/// Programs the full array (one WR burst per column of every row).
///
/// # Errors
///
/// Propagates controller protocol errors ([`TimingError`]); a sweep from
/// an all-precharged state cannot produce one.
pub fn sweep_write(ctrl: &mut MemController, geom: &ArrayGeometry) -> Result<(), TimingError> {
    sweep(ctrl, geom, SweepKind::Write)
}

/// Reads the full array back (one RD burst per column of every row).
///
/// # Errors
///
/// The conditions of [`sweep_write`].
pub fn sweep_read(ctrl: &mut MemController, geom: &ArrayGeometry) -> Result<(), TimingError> {
    sweep(ctrl, geom, SweepKind::Read)
}

/// Where one trial's simulated time went.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrialCost {
    /// Programming the array (phase 1), in simulated nanoseconds.
    pub write_ns: u64,
    /// The refresh-paused decay wait (phase 2), in simulated nanoseconds.
    pub wait_ns: u64,
    /// Reading the array back (phase 3), in simulated nanoseconds.
    pub read_ns: u64,
    /// The emergent refresh window the decay phase executed, in seconds —
    /// what the retention model is fed (requested window quantized up to
    /// whole cycles, plus any commands issued inside the pause).
    pub window_seconds: f64,
    /// Commands issued across the trial (including injected REFab).
    pub commands: u64,
}

impl TrialCost {
    /// The trial's total simulated nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.write_ns + self.wait_ns + self.read_ns
    }
}

/// Executes one full retention trial (program → refresh-paused decay of
/// `trefw_seconds` → read back) and reports where the simulated time went.
///
/// # Errors
///
/// The conditions of [`sweep_write`] and
/// [`MemController::refresh_paused_wait`].
pub fn execute_trial(
    ctrl: &mut MemController,
    geom: &ArrayGeometry,
    trefw_seconds: f64,
) -> Result<TrialCost, TimingError> {
    let commands_before = ctrl.stats().commands();
    let t0 = ctrl.elapsed_ns();
    sweep_write(ctrl, geom)?;
    let t1 = ctrl.elapsed_ns();
    let window_seconds = ctrl.refresh_paused_wait(trefw_seconds)?;
    let t2 = ctrl.elapsed_ns();
    sweep_read(ctrl, geom)?;
    let t3 = ctrl.elapsed_ns();
    Ok(TrialCost {
        write_ns: t1 - t0,
        wait_ns: t2 - t1,
        read_ns: t3 - t2,
        window_seconds,
        commands: ctrl.stats().commands() - commands_before,
    })
}

/// What one trial at `trefw_seconds` costs, obtained by executing the
/// stream on a scratch controller (never by a closed-form estimate).
pub fn trial_cost(params: &TimingParams, geom: &ArrayGeometry, trefw_seconds: f64) -> TrialCost {
    let mut ctrl = MemController::new(*params, geom.banks);
    execute_trial(&mut ctrl, geom, trefw_seconds)
        .expect("a trial stream from power-up state is protocol-correct")
}

/// Simulated nanoseconds one full collection round costs: every window of
/// `trefw_schedule`, `trials_per_step` trials each, executed back to back.
pub fn plan_cost_ns(
    params: &TimingParams,
    geom: &ArrayGeometry,
    trefw_schedule: &[f64],
    trials_per_step: usize,
) -> u64 {
    let mut total: u64 = 0;
    for &trefw in trefw_schedule {
        // Each trial re-programs from the same precharged state, so one
        // executed trial prices all of the window's repetitions.
        total += trial_cost(params, geom, trefw).total_ns() * trials_per_step as u64;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> ArrayGeometry {
        ArrayGeometry {
            banks: 2,
            rows_per_bank: 8,
            bytes_per_row: 128,
        }
    }

    #[test]
    fn trial_phases_account_for_all_elapsed_time() {
        let params = TimingParams::ddr4_3200();
        let mut ctrl = MemController::new(params, 2);
        let cost = execute_trial(&mut ctrl, &geom(), 0.001).unwrap();
        assert_eq!(cost.total_ns(), ctrl.elapsed_ns());
        assert!(cost.wait_ns > cost.write_ns, "the decay wait dominates");
        assert!(cost.window_seconds >= 0.001);
    }

    #[test]
    fn sweep_issues_expected_command_mix() {
        let params = TimingParams::ddr4_3200();
        let g = geom();
        let mut ctrl = MemController::new(params, g.banks);
        sweep_write(&mut ctrl, &g).unwrap();
        let s = ctrl.stats();
        let rows = (g.banks * g.rows_per_bank) as u64;
        assert_eq!(s.acts, rows);
        assert_eq!(s.precharges, rows);
        assert_eq!(s.writes, rows * g.bursts_per_row(&params) as u64);
    }

    #[test]
    fn longer_windows_cost_proportionally_more() {
        let params = TimingParams::ddr4_3200();
        let g = geom();
        let short = trial_cost(&params, &g, 1.0).total_ns();
        let long = trial_cost(&params, &g, 10.0).total_ns();
        assert!(long > short);
        // The wait dominates, so cost scales roughly with the window.
        let ratio = long as f64 / short as f64;
        assert!((9.0..11.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn plan_cost_sums_windows_and_trials() {
        let params = TimingParams::ddr4_2400();
        let g = geom();
        let one = plan_cost_ns(&params, &g, &[0.5], 1);
        let four = plan_cost_ns(&params, &g, &[0.5, 0.5], 2);
        assert_eq!(four, 4 * one);
    }
}
