//! The execute-and-stall memory controller.
//!
//! [`MemController::issue`] is the only way to learn what a command costs:
//! it stalls the stream to the command's earliest legal cycle, applies the
//! command to the bank state machines, and returns when it issued. There
//! is deliberately **no side-effect-free latency query** — the lesson from
//! the hwgc-soft/DRAMsim3 integration (ROADMAP item 2) is that "ask then
//! execute" APIs drift: the answer depends on bank state, refresh phase,
//! and pacing gates, all of which the question itself would have to
//! mutate. Estimation is done by *executing* the stream on a scratch
//! controller (see [`crate::campaign`]).
//!
//! Refresh is part of the executed stream, not bookkeeping: while refresh
//! is enabled the controller injects a REFab every `tREFI` (stalling the
//! stream for `tRFC`), and a retention experiment's refresh window is
//! whatever span of simulated time the stream actually spent between
//! [`MemController::pause_refresh`] and [`MemController::resume_refresh`]
//! — the emergent window `beer_core`'s timed backend feeds to
//! [`beer_dram::RetentionModel`]-backed chips.

use crate::bank::{BankPhase, BankState};
use crate::params::TimingParams;
use std::fmt;

/// A DDR4-style command addressed to the modeled device.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Command {
    /// Open `row` in `bank`.
    Act {
        /// Target bank.
        bank: usize,
        /// Row within the bank.
        row: usize,
    },
    /// Read one burst from the open row of `bank`.
    Rd {
        /// Target bank.
        bank: usize,
    },
    /// Write one burst to the open row of `bank`.
    Wr {
        /// Target bank.
        bank: usize,
    },
    /// Close the open row of `bank`.
    Pre {
        /// Target bank.
        bank: usize,
    },
    /// Close every open row.
    PreAll,
    /// Refresh one bank (LPDDR4-style per-bank refresh).
    Ref {
        /// Target bank.
        bank: usize,
    },
    /// Refresh all banks (requires every bank precharged).
    RefAb,
}

/// A typed protocol violation: the command is illegal in the current bank
/// state (timing is never an error — illegal *state* is).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TimingError {
    /// The command addressed a bank the device does not have.
    NoSuchBank {
        /// Requested bank.
        bank: usize,
        /// Banks the device has.
        banks: usize,
    },
    /// RD/WR/PRE addressed a bank with no open row.
    RowNotOpen {
        /// The idle bank.
        bank: usize,
    },
    /// ACT addressed a bank that already has a row open.
    RowAlreadyOpen {
        /// The busy bank.
        bank: usize,
        /// The row currently open.
        row: usize,
    },
    /// REF/REFab (or a refresh pause) with a row still open.
    RefreshWithOpenRow {
        /// The offending bank.
        bank: usize,
    },
    /// `resume_refresh` without a matching `pause_refresh`.
    RefreshNotPaused,
    /// `pause_refresh` while already paused.
    RefreshAlreadyPaused,
}

impl fmt::Display for TimingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimingError::NoSuchBank { bank, banks } => {
                write!(f, "bank {bank} out of range (device has {banks})")
            }
            TimingError::RowNotOpen { bank } => {
                write!(f, "bank {bank} has no open row")
            }
            TimingError::RowAlreadyOpen { bank, row } => {
                write!(f, "bank {bank} already has row {row} open")
            }
            TimingError::RefreshWithOpenRow { bank } => {
                write!(
                    f,
                    "refresh requires all banks precharged (bank {bank} open)"
                )
            }
            TimingError::RefreshNotPaused => write!(f, "refresh is not paused"),
            TimingError::RefreshAlreadyPaused => write!(f, "refresh is already paused"),
        }
    }
}

impl std::error::Error for TimingError {}

/// When a command actually issued.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IssueInfo {
    /// The cycle the command went out on the command bus.
    pub issued_at: u64,
    /// Cycles the stream stalled waiting for the earliest legal cycle
    /// (0 when the command was immediately legal).
    pub stalled: u64,
}

/// Command/stall accounting of one controller.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ControllerStats {
    /// ACT commands issued.
    pub acts: u64,
    /// RD commands issued.
    pub reads: u64,
    /// WR commands issued.
    pub writes: u64,
    /// PRE/PREab commands issued.
    pub precharges: u64,
    /// Explicit REF/REFab commands issued.
    pub refreshes: u64,
    /// REFab commands the controller injected to honor tREFI.
    pub auto_refreshes: u64,
    /// Total cycles spent stalled on timing constraints.
    pub stall_cycles: u64,
}

impl ControllerStats {
    /// Total commands issued (explicit + injected refresh).
    pub fn commands(&self) -> u64 {
        self.acts
            + self.reads
            + self.writes
            + self.precharges
            + self.refreshes
            + self.auto_refreshes
    }
}

/// One command as the log records it (see [`MemController::record_log`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IssuedCommand {
    /// The command.
    pub command: Command,
    /// The cycle it issued.
    pub issued_at: u64,
}

/// The execute-and-stall controller over one device's bank population
/// (see the module docs).
#[derive(Clone, Debug)]
pub struct MemController {
    params: TimingParams,
    banks: Vec<BankState>,
    /// Current cycle: the next command slot.
    now: u64,
    /// Global column-to-column pacing gate (tCCD).
    next_col_ok: u64,
    /// Global activate-to-activate pacing gate (tRRD).
    next_act_ok: u64,
    /// Cycle the last data burst finishes on the data bus.
    data_busy_until: u64,
    refresh_enabled: bool,
    next_ref_due: u64,
    /// Cycle the current refresh pause began (None when refresh runs).
    pause_started: Option<u64>,
    /// Total cycles spent with refresh paused (all pauses).
    refresh_paused_cycles: u64,
    stats: ControllerStats,
    log: Option<Vec<IssuedCommand>>,
}

impl MemController {
    /// A controller over `banks` banks at power-up (cycle 0, refresh
    /// enabled, first REFab due one tREFI out).
    ///
    /// # Panics
    ///
    /// Panics if `banks` is zero or the parameter table is inconsistent
    /// (see [`TimingParams::validate`]).
    pub fn new(params: TimingParams, banks: usize) -> Self {
        params.validate();
        assert!(banks > 0, "device must have at least one bank");
        MemController {
            next_ref_due: params.trefi,
            params,
            banks: vec![BankState::new(); banks],
            now: 0,
            next_col_ok: 0,
            next_act_ok: 0,
            data_busy_until: 0,
            refresh_enabled: true,
            pause_started: None,
            refresh_paused_cycles: 0,
            stats: ControllerStats::default(),
            log: None,
        }
    }

    /// The parameter table.
    pub fn params(&self) -> &TimingParams {
        &self.params
    }

    /// Number of banks.
    pub fn banks(&self) -> usize {
        self.banks.len()
    }

    /// One bank's state (for inspection; mutation goes through `issue`).
    ///
    /// # Panics
    ///
    /// Panics if the bank is out of range.
    pub fn bank(&self, bank: usize) -> &BankState {
        &self.banks[bank]
    }

    /// Current cycle.
    pub fn now_cycles(&self) -> u64 {
        self.now
    }

    /// Simulated time elapsed since power-up, in nanoseconds.
    pub fn elapsed_ns(&self) -> u64 {
        self.params.cycles_to_ns(self.now)
    }

    /// Simulated time elapsed since power-up, in seconds.
    pub fn elapsed_seconds(&self) -> f64 {
        self.params.cycles_to_seconds(self.now)
    }

    /// Total cycles spent with refresh paused so far.
    pub fn refresh_paused_cycles(&self) -> u64 {
        self.refresh_paused_cycles
    }

    /// Command/stall accounting.
    pub fn stats(&self) -> &ControllerStats {
        &self.stats
    }

    /// Turns command logging on or off (off by default; the property
    /// tests replay the log against an independent constraint checker).
    pub fn record_log(&mut self, on: bool) {
        self.log = if on { Some(Vec::new()) } else { None };
    }

    /// The recorded command log (empty unless `record_log(true)`).
    pub fn issue_log(&self) -> &[IssuedCommand] {
        self.log.as_deref().unwrap_or(&[])
    }

    fn check_bank(&self, bank: usize) -> Result<(), TimingError> {
        if bank >= self.banks.len() {
            return Err(TimingError::NoSuchBank {
                bank,
                banks: self.banks.len(),
            });
        }
        Ok(())
    }

    fn first_open_bank(&self) -> Option<usize> {
        self.banks.iter().position(|b| b.open_row().is_some())
    }

    /// Serves every REFab that came due at or before the current cycle,
    /// once all banks are precharged. Refresh due while a row is open is
    /// *postponed* (the JEDEC debt allowance) and caught up at the next
    /// all-banks-idle command slot, so an in-progress row sweep is never
    /// torn; the injected REFab then stalls the stream for tRFC like any
    /// other command — the tREFI/tRFC interplay the stream pays for while
    /// refresh is enabled.
    fn maintain_refresh(&mut self) {
        while self.refresh_enabled
            && self.next_ref_due <= self.now
            && self.first_open_bank().is_none()
        {
            let t = self
                .banks
                .iter()
                .map(|b| b.earliest_act)
                .max()
                .unwrap_or(0)
                .max(self.now);
            for b in &mut self.banks {
                b.earliest_act = t + self.params.trfc;
            }
            self.stats.auto_refreshes += 1;
            self.stats.stall_cycles += t - self.now;
            self.now = t + 1;
            self.next_ref_due += self.params.trefi;
        }
    }

    /// Executes one command: stalls to its earliest legal cycle, applies
    /// it, and reports when it issued. This is the only latency oracle
    /// the crate has — see the module docs for why.
    ///
    /// # Errors
    ///
    /// Returns a [`TimingError`] if the command is illegal in the current
    /// bank state (wrong bank, row not open / already open, refresh with
    /// an open row). Timing constraints never fail — they stall.
    pub fn issue(&mut self, command: Command) -> Result<IssueInfo, TimingError> {
        self.maintain_refresh();
        let p = self.params;
        let before = self.now;
        let issued_at = match command {
            Command::Act { bank, row } => {
                self.check_bank(bank)?;
                if let Some(open) = self.banks[bank].open_row() {
                    return Err(TimingError::RowAlreadyOpen { bank, row: open });
                }
                let t = self
                    .now
                    .max(self.banks[bank].earliest_act)
                    .max(self.next_act_ok);
                self.banks[bank].apply_act(t, row, &p);
                self.next_act_ok = t + p.trrd;
                self.stats.acts += 1;
                t
            }
            Command::Rd { bank } => {
                self.check_bank(bank)?;
                if self.banks[bank].open_row().is_none() {
                    return Err(TimingError::RowNotOpen { bank });
                }
                let t = self
                    .now
                    .max(self.banks[bank].earliest_col)
                    .max(self.next_col_ok);
                self.banks[bank].apply_rd(t, &p);
                self.next_col_ok = t + p.tccd;
                self.data_busy_until = self.data_busy_until.max(t + p.cl + p.burst_cycles);
                self.stats.reads += 1;
                t
            }
            Command::Wr { bank } => {
                self.check_bank(bank)?;
                if self.banks[bank].open_row().is_none() {
                    return Err(TimingError::RowNotOpen { bank });
                }
                let t = self
                    .now
                    .max(self.banks[bank].earliest_col)
                    .max(self.next_col_ok);
                self.banks[bank].apply_wr(t, &p);
                self.next_col_ok = t + p.tccd;
                self.data_busy_until = self.data_busy_until.max(t + p.cwl + p.burst_cycles);
                self.stats.writes += 1;
                t
            }
            Command::Pre { bank } => {
                self.check_bank(bank)?;
                if self.banks[bank].open_row().is_none() {
                    return Err(TimingError::RowNotOpen { bank });
                }
                let t = self.now.max(self.banks[bank].earliest_pre);
                self.banks[bank].apply_pre(t, &p);
                self.stats.precharges += 1;
                t
            }
            Command::PreAll => {
                let t = self
                    .banks
                    .iter()
                    .filter(|b| b.open_row().is_some())
                    .map(|b| b.earliest_pre)
                    .max()
                    .unwrap_or(self.now)
                    .max(self.now);
                for b in &mut self.banks {
                    if b.open_row().is_some() {
                        b.apply_pre(t, &p);
                    }
                }
                self.stats.precharges += 1;
                t
            }
            Command::Ref { bank } => {
                self.check_bank(bank)?;
                if self.banks[bank].open_row().is_some() {
                    return Err(TimingError::RefreshWithOpenRow { bank });
                }
                let t = self.now.max(self.banks[bank].earliest_act);
                self.banks[bank].earliest_act = t + p.trfc;
                self.stats.refreshes += 1;
                t
            }
            Command::RefAb => {
                if let Some(bank) = self.first_open_bank() {
                    return Err(TimingError::RefreshWithOpenRow { bank });
                }
                let t = self
                    .banks
                    .iter()
                    .map(|b| b.earliest_act)
                    .max()
                    .unwrap_or(0)
                    .max(self.now);
                for b in &mut self.banks {
                    b.earliest_act = t + p.trfc;
                }
                self.stats.refreshes += 1;
                t
            }
        };
        let stalled = issued_at - before;
        self.stats.stall_cycles += stalled;
        self.now = issued_at + 1;
        if let Some(log) = &mut self.log {
            log.push(IssuedCommand { command, issued_at });
        }
        Ok(IssueInfo { issued_at, stalled })
    }

    /// Advances the stream by `cycles` idle cycles (NOPs). With refresh
    /// enabled and all banks precharged, the REFab commands due inside
    /// the window are batch-accounted — they complete within the wait and
    /// only gate ACTs that follow too closely after it.
    pub fn wait_cycles(&mut self, cycles: u64) {
        let target = self.now + cycles;
        if self.refresh_enabled && self.first_open_bank().is_none() && self.next_ref_due < target {
            let missed = (target - 1 - self.next_ref_due) / self.params.trefi + 1;
            let last_start = self.next_ref_due + (missed - 1) * self.params.trefi;
            let busy_end = last_start + self.params.trfc;
            for b in &mut self.banks {
                b.earliest_act = b.earliest_act.max(busy_end);
            }
            self.stats.auto_refreshes += missed;
            self.next_ref_due += missed * self.params.trefi;
        }
        self.now = target;
    }

    /// Stops injecting refresh — the start of a retention window. The
    /// array must be fully precharged: retention decay is defined over
    /// idle cells.
    ///
    /// # Errors
    ///
    /// [`TimingError::RefreshWithOpenRow`] if a row is open,
    /// [`TimingError::RefreshAlreadyPaused`] if already paused.
    pub fn pause_refresh(&mut self) -> Result<(), TimingError> {
        if self.pause_started.is_some() {
            return Err(TimingError::RefreshAlreadyPaused);
        }
        if let Some(bank) = self.first_open_bank() {
            return Err(TimingError::RefreshWithOpenRow { bank });
        }
        self.refresh_enabled = false;
        self.pause_started = Some(self.now);
        Ok(())
    }

    /// Re-enables refresh and returns the **emergent refresh window** in
    /// seconds: the simulated time the stream actually spent since
    /// [`MemController::pause_refresh`] — commands executed inside the
    /// pause widen it, exactly as they would on hardware. The next
    /// injected REFab is due one tREFI from now.
    ///
    /// # Errors
    ///
    /// [`TimingError::RefreshNotPaused`] if refresh is running.
    pub fn resume_refresh(&mut self) -> Result<f64, TimingError> {
        let started = self
            .pause_started
            .take()
            .ok_or(TimingError::RefreshNotPaused)?;
        let cycles = self.now - started;
        self.refresh_paused_cycles += cycles;
        self.refresh_enabled = true;
        self.next_ref_due = self.now + self.params.trefi;
        Ok(self.params.cycles_to_seconds(cycles))
    }

    /// The refresh-disabled wait loop of a retention experiment: pauses
    /// refresh, idles for the smallest whole-cycle count covering
    /// `seconds`, resumes refresh, and returns the emergent window
    /// actually executed (`>= seconds`, within one clock period).
    ///
    /// # Errors
    ///
    /// The conditions of [`MemController::pause_refresh`].
    pub fn refresh_paused_wait(&mut self, seconds: f64) -> Result<f64, TimingError> {
        self.pause_refresh()?;
        self.wait_cycles(self.params.cycles_for_seconds(seconds));
        self.resume_refresh()
    }

    /// Stalls until the data bus drains (the last RD/WR burst lands).
    /// Call at the end of a sweep so elapsed time covers data return.
    pub fn drain_data(&mut self) {
        if self.data_busy_until > self.now {
            self.stats.stall_cycles += self.data_busy_until - self.now;
            self.now = self.data_busy_until;
        }
    }

    /// True while a refresh pause is in progress.
    pub fn refresh_paused(&self) -> bool {
        self.pause_started.is_some()
    }

    /// True if `bank` has an open row.
    pub fn is_open(&self, bank: usize) -> bool {
        self.banks
            .get(bank)
            .is_some_and(|b| matches!(b.phase, BankPhase::Active { .. }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctrl() -> MemController {
        MemController::new(TimingParams::ddr4_3200(), 2)
    }

    #[test]
    fn act_rd_pre_honors_trcd_and_tras() {
        let p = TimingParams::ddr4_3200();
        let mut c = ctrl();
        let act = c.issue(Command::Act { bank: 0, row: 3 }).unwrap();
        let rd = c.issue(Command::Rd { bank: 0 }).unwrap();
        assert!(rd.issued_at >= act.issued_at + p.trcd);
        let pre = c.issue(Command::Pre { bank: 0 }).unwrap();
        assert!(pre.issued_at >= act.issued_at + p.tras);
        let act2 = c.issue(Command::Act { bank: 0, row: 4 }).unwrap();
        assert!(act2.issued_at >= act.issued_at + p.trc);
        assert!(act2.issued_at >= pre.issued_at + p.trp);
    }

    #[test]
    fn column_commands_pace_at_tccd() {
        let p = TimingParams::ddr4_3200();
        let mut c = ctrl();
        c.issue(Command::Act { bank: 0, row: 0 }).unwrap();
        let w1 = c.issue(Command::Wr { bank: 0 }).unwrap();
        let w2 = c.issue(Command::Wr { bank: 0 }).unwrap();
        assert_eq!(w2.issued_at, w1.issued_at + p.tccd);
    }

    #[test]
    fn protocol_violations_are_typed_errors() {
        let mut c = ctrl();
        assert_eq!(
            c.issue(Command::Rd { bank: 0 }),
            Err(TimingError::RowNotOpen { bank: 0 })
        );
        c.issue(Command::Act { bank: 0, row: 1 }).unwrap();
        assert_eq!(
            c.issue(Command::Act { bank: 0, row: 2 }),
            Err(TimingError::RowAlreadyOpen { bank: 0, row: 1 })
        );
        assert_eq!(
            c.issue(Command::RefAb),
            Err(TimingError::RefreshWithOpenRow { bank: 0 })
        );
        assert_eq!(
            c.issue(Command::Wr { bank: 9 }),
            Err(TimingError::NoSuchBank { bank: 9, banks: 2 })
        );
    }

    #[test]
    fn auto_refresh_stalls_the_stream() {
        let p = TimingParams::ddr4_3200();
        let mut c = ctrl();
        // Jump past one tREFI; the next command pays for the missed REFab.
        c.wait_cycles(p.trefi + 1);
        assert_eq!(c.stats().auto_refreshes, 1);
        let act = c.issue(Command::Act { bank: 0, row: 0 }).unwrap();
        // The ACT cannot issue before the refresh completes.
        assert!(act.issued_at >= p.trefi + p.trfc);
    }

    #[test]
    fn emergent_window_covers_requested_wait() {
        let p = TimingParams::ddr4_3200();
        let mut c = ctrl();
        let requested = 0.064; // 64 ms
        let window = c.refresh_paused_wait(requested).unwrap();
        assert!(window >= requested);
        assert!(window - requested < 2.0 * p.tck_ps as f64 / 1e12);
        assert_eq!(c.stats().auto_refreshes, 0, "no refresh during the pause");
        assert!(c.refresh_paused_cycles() > 0);
    }

    #[test]
    fn commands_inside_pause_widen_the_window() {
        let mut c = ctrl();
        c.pause_refresh().unwrap();
        let wait = c.params().cycles_for_seconds(1e-6);
        c.wait_cycles(wait);
        c.issue(Command::Act { bank: 0, row: 0 }).unwrap();
        c.issue(Command::Rd { bank: 0 }).unwrap();
        c.issue(Command::Pre { bank: 0 }).unwrap();
        let window = c.resume_refresh().unwrap();
        assert!(window > c.params().cycles_to_seconds(wait));
    }

    #[test]
    fn refresh_pause_requires_precharged_array() {
        let mut c = ctrl();
        c.issue(Command::Act { bank: 1, row: 0 }).unwrap();
        assert_eq!(
            c.pause_refresh(),
            Err(TimingError::RefreshWithOpenRow { bank: 1 })
        );
        c.issue(Command::PreAll).unwrap();
        c.pause_refresh().unwrap();
        assert_eq!(c.pause_refresh(), Err(TimingError::RefreshAlreadyPaused));
    }
}
